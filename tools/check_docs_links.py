#!/usr/bin/env python
"""Verify that local markdown links in README.md and docs/ resolve.

The README links docs/architecture.md and docs/search-to-serve.md (and
the docs cross-link each other); this script fails CI when a rename or
deletion leaves a dangling reference. External (http/https/mailto)
links are out of scope — only repo-relative paths are checked, resolved
against the file that contains the link.

Also fails on *orphans*: every docs/*.md must be reachable — linked
from README.md or from another doc — so new documentation cannot land
invisible.

Usage: python tools/check_docs_links.py   (exit 1 on any broken link)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)\s]*)?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:")

REPO = Path(__file__).resolve().parent.parent


def iter_sources():
    yield REPO / "README.md"
    yield from sorted((REPO / "docs").glob("*.md"))


def main() -> int:
    broken = []
    checked = 0
    linked = set()
    for source in iter_sources():
        for match in LINK.finditer(source.read_text()):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            checked += 1
            resolved = (source.parent / target)
            if resolved.exists():
                linked.add(resolved.resolve())
            else:
                broken.append(f"{source.relative_to(REPO)}: "
                              f"broken link -> {target}")
    orphans = [doc for doc in sorted((REPO / "docs").glob("*.md"))
               if doc.resolve() not in linked]
    for doc in orphans:
        broken.append(f"{doc.relative_to(REPO)}: orphan — not linked "
                      f"from README.md or any other doc")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"{checked} local links checked, {len(broken)} problems "
          f"({len(orphans)} orphans)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
