"""Benchmark: serving throughput and tail latency under offered load.

The serving-runtime extension study: replay Poisson request traces against
an epitome ResNet-18 deployment on 1/2/4 simulated chips at offered loads
below, near, and above each fleet's capacity, and record achieved
throughput, p50/p99 latency, shed requests and chip utilization.  The
structural expectations:

- below saturation, achieved ~= offered and p99 stays near the pipeline
  fill latency + batching window;
- past saturation, achieved plateaus at the shard plan's pipelined
  throughput while p99 explodes against the bounded queue;
- chips scale capacity: the 4-chip fleet sustains offered loads that
  overload the 1-chip fleet.

Runs standalone too (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_serve.py --fast
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Sequence

from repro.analysis.tables import Table
from repro.serve import (
    SchedulerConfig,
    ServingConfig,
    ServingEngine,
    synthetic_trace,
)

CHIP_COUNTS = (1, 2, 4)
LOAD_FACTORS = (0.5, 0.9, 1.3)      # x single-replica capacity per chip


def build_engine(num_chips: int, queue_depth: int = 512) -> ServingEngine:
    return ServingEngine.from_spec(
        "resnet18",
        ServingConfig(num_chips=num_chips,
                      scheduler=SchedulerConfig(max_batch_size=8,
                                                window_ms=2.0,
                                                queue_depth=queue_depth)))


def run_sweep(num_requests: int = 500,
              chip_counts: Sequence[int] = CHIP_COUNTS,
              load_factors: Sequence[float] = LOAD_FACTORS) -> List[Dict]:
    rows: List[Dict] = []
    for chips in chip_counts:
        engine = build_engine(chips)
        capacity = engine.plan.throughput_fps
        for factor in load_factors:
            offered = factor * capacity
            trace = synthetic_trace(num_requests, rate_rps=offered,
                                    seed=17)
            telemetry = engine.serve(trace)
            utils = telemetry.chip_utilization()
            rows.append({
                "chips": chips,
                "offered_fps": offered,
                "achieved_fps": telemetry.throughput_fps(),
                "p50_ms": telemetry.latency_percentile(50.0),
                "p99_ms": telemetry.latency_percentile(99.0),
                "shed": telemetry.num_rejected,
                "mean_util": sum(utils.values()) / len(utils),
                "capacity_fps": capacity,
            })
    return rows


def render(rows: Sequence[Dict]) -> str:
    table = Table(["chips", "offered_fps", "achieved_fps", "p50_ms",
                   "p99_ms", "shed", "mean_util"],
                  title="serving: offered load vs achieved throughput "
                        "(epitome ResNet-18, W9)")
    for row in rows:
        table.add_dict_row(row)
    return table.render()


def check_structure(rows: Sequence[Dict]) -> None:
    """The structural claims the benchmark exists to demonstrate."""
    by = {(r["chips"], round(r["offered_fps"] / r["capacity_fps"], 1)): r
          for r in rows}
    factors = sorted({round(r["offered_fps"] / r["capacity_fps"], 1)
                      for r in rows})
    low, high = factors[0], factors[-1]
    chip_counts = sorted({r["chips"] for r in rows})
    for chips in chip_counts:
        under, over = by[(chips, low)], by[(chips, high)]
        # under light load the system keeps up...
        assert under["achieved_fps"] >= 0.8 * under["offered_fps"]
        # ...and saturation caps throughput at ~capacity with worse tails
        assert over["achieved_fps"] <= 1.1 * over["capacity_fps"]
        assert over["p99_ms"] > under["p99_ms"]
    if len(chip_counts) > 1:
        small, large = chip_counts[0], chip_counts[-1]
        assert by[(large, high)]["achieved_fps"] \
            > 1.5 * by[(small, high)]["achieved_fps"]


def test_offered_load_vs_achieved(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(render(rows))
    check_structure(rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smoke mode: short traces, 1/2 chips")
    parser.add_argument("--num-requests", type=int, default=None)
    args = parser.parse_args(argv)
    if args.fast:
        n = args.num_requests or 150
        rows = run_sweep(n, chip_counts=(1, 2), load_factors=(0.5, 1.3))
    else:
        n = args.num_requests or 500
        rows = run_sweep(n)
    print(render(rows))
    check_structure(rows)
    print("\nstructural checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
