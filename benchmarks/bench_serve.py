"""Benchmark: serving throughput and tail latency under offered load.

The sweep itself lives in :mod:`repro.bench.suites.serve` (registered on
the unified harness as ``serve.offered_load_sweep``); this file keeps the
standalone entry point and the pytest-benchmark hook.

Runs standalone too (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_serve.py --fast

Prefer the harness for trajectory-tracked numbers::

    python -m repro bench run --suite serve --fast
"""

from __future__ import annotations

import argparse

# Re-exported so existing imports of this module keep working.
from repro.bench.suites.serve import (  # noqa: F401
    CHIP_COUNTS,
    LOAD_FACTORS,
    build_engine,
    check_structure,
    render,
    run_sweep,
)


def test_offered_load_vs_achieved(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(render(rows))
    check_structure(rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="smoke mode: short traces, 1/2 chips")
    parser.add_argument("--num-requests", type=int, default=None)
    args = parser.parse_args(argv)
    if args.fast:
        n = args.num_requests or 150
        rows = run_sweep(n, chip_counts=(1, 2), load_factors=(0.5, 1.3))
    else:
        n = args.num_requests or 500
        rows = run_sweep(n)
    print(render(rows))
    check_structure(rows)
    print("\nstructural checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
