"""Benchmark: regenerate Figure 4 (design-optimization comparison).

Four methods at matched crossbar compression: Uniform epitomes,
EPIM-Channel-Wrapping, EPIM-Evo-Search, and EPIM-Opt (both).  Three panels:
(a) latency, (b) energy, (c) EDP.  Paper claims for EPIM-Opt vs Uniform at
similar compression: up to 3.07x speedup, 2.36x energy savings, 7.13x EDP
reduction.
"""


from repro.analysis.experiments import run_figure4
from repro.core.search import EvoSearchConfig


def test_figure4_latency_energy_edp(benchmark):
    result = benchmark.pedantic(
        lambda: run_figure4(
            search=EvoSearchConfig(population_size=48, iterations=40),
            verbose=False),
        rounds=1, iterations=1)
    print()
    print(result.rendered)

    for point in result.points:
        uniform = point.metrics["Uniform"]
        wrap = point.metrics["EPIM-CW"]
        opt = point.metrics["EPIM-Opt"]
        # wrapping never hurts latency or energy
        assert wrap[0] <= uniform[0] * 1.001
        assert wrap[1] <= uniform[1] * 1.001
        # the combined method dominates uniform on EDP
        assert opt[2] < uniform[2]

    # paper-scale gains at the higher-compression end of the sweep
    last = result.points[-1]
    speedup = last.metrics["Uniform"][0] / last.metrics["EPIM-Opt"][0]
    energy_gain = last.metrics["Uniform"][1] / last.metrics["EPIM-Opt"][1]
    edp_gain = last.metrics["Uniform"][2] / last.metrics["EPIM-Opt"][2]
    print(f"\n  EPIM-Opt vs Uniform at CR={last.compression:.1f}: "
          f"{speedup:.2f}x faster, {energy_gain:.2f}x less energy, "
          f"{edp_gain:.2f}x lower EDP "
          "(paper: up to 3.07x / 2.36x / 7.13x)")
    assert speedup > 2.0
    assert energy_gain > 1.8
    assert edp_gain > 5.0
