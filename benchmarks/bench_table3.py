"""Benchmark: regenerate Table 3 (epitome vs pruning).

Rows: Epitome alone, Epitome + 50% element pruning, PIM-Prune 50% / 75%.
Paper claims: epitome alone is the most accurate; epitome+pruning reaches
the highest parameter compression at a modest accuracy cost; PIM-Prune is
dominated at matched compression.
"""


from repro.analysis.experiments import run_table3
from repro.baselines.pim_prune import pim_prune_network
from repro.models.specs import resnet50_spec, resnet101_spec


def test_table3_accuracy_and_compression(benchmark, workbench, preset):
    result = benchmark.pedantic(
        lambda: run_table3(preset=preset, workbench=workbench, verbose=False),
        rounds=1, iterations=1)
    print()
    print(result.rendered)
    rows = {row["Method"]: row for row in result.rows}
    epitome = rows["Epitome"]
    combined = rows["Epitome + Pruning 50%"]
    # stacking pruning on epitomes strictly increases compression
    assert combined["Compress. Rate"] > epitome["Compress. Rate"]


def test_table3_param_cr_anchors(benchmark):
    """Parameter-compression accounting against the paper's exact numbers
    (no training involved, so these are tight)."""
    def compute():
        return {
            ("resnet50", 0.5): pim_prune_network(resnet50_spec(), 0.5),
            ("resnet50", 0.75): pim_prune_network(resnet50_spec(), 0.75),
            ("resnet101", 0.5): pim_prune_network(resnet101_spec(), 0.5),
            ("resnet101", 0.75): pim_prune_network(resnet101_spec(), 0.75),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    paper = {("resnet50", 0.5): 1.80, ("resnet50", 0.75): 3.38,
             ("resnet101", 0.5): 1.90, ("resnet101", 0.75): 3.24}
    print()
    for key, result in results.items():
        print(f"  PIM-Prune {key[0]} @{int(key[1]*100)}%: "
              f"param CR={result.param_compression:.2f} "
              f"(paper {paper[key]:.2f}), "
              f"xbar CR={result.crossbar_compression:.2f}")
        assert abs(result.param_compression - paper[key]) < 0.45
