"""Benchmark: regenerate Figure 3 (per-layer cost of epitomes).

Paper layers 9 / 41 / 67 of ResNet-50 (mapped to shape equivalents — see
``repro.analysis.hardware.FIGURE3_LAYERS``): parameter size, latency, and
energy with and without the epitome.  The claim: a late wide layer saves
~1 M parameters for a modest relative overhead, while an early narrow layer
saves almost nothing yet pays a large relative overhead — the motivation
for layer-wise design (section 5.2).
"""


from repro.analysis.experiments import run_figure3


def test_figure3_per_layer_costs(benchmark):
    result = benchmark.pedantic(lambda: run_figure3(verbose=False),
                                rounds=1, iterations=1)
    print()
    print(result.rendered)
    rows = {r.paper_index: r for r in result.rows}

    # late layer saves the most parameters
    assert rows[67].params_saved_k > rows[41].params_saved_k > rows[9].params_saved_k
    # every epitome layer pays some per-layer latency/energy overhead
    for row in result.rows:
        assert row.latency_increase_ms > 0
        assert row.energy_increase_01mj > 0
    # trade-off efficiency (params saved per ms) is far better late
    eff = {idx: r.params_saved_k / r.latency_increase_ms
           for idx, r in rows.items()}
    assert eff[67] > eff[41] > eff[9]


def test_figure3_paper_magnitude_anchors(benchmark):
    """Order-of-magnitude anchors from the paper's bar chart: L67 saves
    ~1 M params (we measure ~0.8 M), L9 saves only tens of k."""
    result = benchmark.pedantic(lambda: run_figure3(verbose=False),
                                rounds=1, iterations=1)
    rows = {r.paper_index: r for r in result.rows}
    assert rows[67].params_saved_k > 500      # paper: 983.6k
    assert rows[9].params_saved_k < 50        # paper: 20.5k
