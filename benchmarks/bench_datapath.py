"""Benchmark: functional datapath throughput and exactness.

Not a paper artefact, but the reproduction's core guarantee: the simulated
EPIM hardware path (bit-sliced crossbars + IFAT/IFRT/OFAT + joint module)
computes exactly what the software convolution computes, at a measurable
simulation cost.  Timed so performance regressions in the simulator show
up here.
"""

import numpy as np

from repro import nn
from repro.core.epitome import EpitomeShape, build_plan
from repro.nn import functional as F
from repro.pim.config import DEFAULT_CONFIG
from repro.pim.datapath import execute_epitome_conv


def _case(rng, ci=32, co=32, k=3, h=14):
    shape = EpitomeShape.from_rows_cols(160, 16, (k, k), ci)
    plan = build_plan((co, ci, k, k), shape)
    epitome = rng.integers(-16, 16, size=shape.as_tuple())
    x = rng.integers(0, 256, size=(4, ci, h, h))
    return plan, epitome, x


def test_datapath_execution_speed(benchmark):
    rng = np.random.default_rng(0)
    plan, epitome, x = _case(rng)
    out = benchmark(
        lambda: execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                     activation_bits=8, weight_bits=6))
    ref = F.conv2d(nn.Tensor(x.astype(np.float64)),
                   nn.Tensor(plan.reconstruct(epitome).astype(np.float64)),
                   None, 1, 1).data
    np.testing.assert_array_equal(out, np.rint(ref).astype(np.int64))


def test_datapath_wrapped_execution_speed(benchmark):
    """Channel wrapping executes fewer patches — visibly faster here too."""
    rng = np.random.default_rng(1)
    plan, epitome, x = _case(rng)
    out = benchmark(
        lambda: execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                     activation_bits=8, weight_bits=6,
                                     use_wrapping=True))
    plain = execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                 activation_bits=8, weight_bits=6)
    np.testing.assert_array_equal(out, plain)


def test_software_conv_reference_speed(benchmark):
    """Baseline for the two timings above."""
    rng = np.random.default_rng(2)
    plan, epitome, x = _case(rng)
    w = plan.reconstruct(epitome).astype(np.float64)
    benchmark(lambda: F.conv2d(nn.Tensor(x.astype(np.float64)),
                               nn.Tensor(w), None, 1, 1))
