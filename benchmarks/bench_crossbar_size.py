"""Ablation: crossbar array size sensitivity (hardware design choice).

The paper fixes 256x256 arrays with 2-bit cells.  A natural co-design
question is how the epitome advantage shifts with array size: smaller
arrays fragment less (higher utilization) but need more peripherals; larger
arrays amortise ADCs but waste cells on layers that do not fill them.  This
bench sweeps the array size for both the baseline and the uniform-epitome
ResNet-50 deployment at W9A9.
"""


from repro.core.designer import build_deployments, uniform_assignment
from repro.models.specs import resnet50_spec
from repro.pim.config import HardwareConfig
from repro.pim.simulator import baseline_deployment, simulate_network


def deploy(spec, config, epitome: bool):
    if epitome:
        deps = build_deployments(spec, uniform_assignment(spec),
                                 weight_bits=9, activation_bits=9,
                                 use_wrapping=True, config=config)
    else:
        deps = [baseline_deployment(l, 9, 9, config=config) for l in spec]
    return simulate_network(deps, config)


def test_crossbar_size_sweep(benchmark):
    spec = resnet50_spec()

    def sweep():
        rows = {}
        for size in (128, 256, 512):
            config = HardwareConfig(xbar_rows=size, xbar_cols=size)
            base = deploy(spec, config, epitome=False)
            epim = deploy(spec, config, epitome=True)
            rows[size] = (base, epim)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for size, (base, epim) in rows.items():
        print(f"  {size}x{size}: baseline XBs={base.num_crossbars:6d} "
              f"util={base.utilization*100:5.1f}% | "
              f"EPIM XBs={epim.num_crossbars:5d} "
              f"CR={base.num_crossbars / epim.num_crossbars:5.2f} "
              f"util={epim.utilization*100:5.1f}% "
              f"lat={epim.latency_ms:6.1f}ms")

    # epitome compresses crossbars at every array size
    for _size, (base, epim) in rows.items():
        assert epim.num_crossbars < base.num_crossbars
    # smaller arrays fragment less -> utilization no worse
    assert rows[128][0].utilization >= rows[512][0].utilization - 1e-9


def test_cell_bits_sweep(benchmark):
    """1-bit vs 2-bit vs 4-bit cells at W9A9 (paper uses 2-bit)."""
    spec = resnet50_spec()

    def sweep():
        out = {}
        for cell_bits in (1, 2, 4):
            config = HardwareConfig(cell_bits=cell_bits)
            out[cell_bits] = deploy(spec, config, epitome=True)
        return out

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for cell_bits, report in reports.items():
        print(f"  {cell_bits}-bit cells: XBs={report.num_crossbars:5d} "
              f"lat={report.latency_ms:6.1f}ms E={report.energy_mj:6.1f}mJ")
    # denser cells need fewer column slices -> fewer crossbars
    assert (reports[4].num_crossbars <= reports[2].num_crossbars
            <= reports[1].num_crossbars)
