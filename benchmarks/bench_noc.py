"""Benchmark: network-on-chip communication analysis (extension study).

The paper's evaluation prices the crossbar arithmetic; MNSIM-class
simulators also price moving feature maps between the tiles of consecutive
layers.  This bench quantifies a second-order benefit of epitomes the paper
leaves implicit: a compressed deployment occupies fewer tiles, shrinking
the mesh and the average hop distance — so communication energy falls even
though the feature-map volume is unchanged.
"""


from repro.core.designer import build_deployments, uniform_assignment
from repro.models.specs import resnet50_spec
from repro.pim.noc import analyze_noc
from repro.pim.simulator import baseline_deployment, simulate_network


def test_noc_traffic_baseline_vs_epim(benchmark):
    spec = resnet50_spec()

    def analyze_both():
        base = simulate_network([baseline_deployment(l, 9, 9) for l in spec])
        epim = simulate_network(build_deployments(
            spec, uniform_assignment(spec), weight_bits=9,
            activation_bits=9))
        return analyze_noc(base), analyze_noc(epim)

    base_noc, epim_noc = benchmark.pedantic(analyze_both, rounds=1,
                                            iterations=1)
    print()
    print("  baseline:", base_noc.summary().replace("\n", " | "))
    print("  EPIM:    ", epim_noc.summary().replace("\n", " | "))

    # identical feature-map volume, smaller mesh, cheaper movement
    assert epim_noc.total_values == base_noc.total_values
    assert epim_noc.total_tiles < base_noc.total_tiles
    assert epim_noc.energy_mj < base_noc.energy_mj


def test_noc_energy_secondary_to_compute(benchmark):
    """Sanity on magnitudes: NoC energy is a small fraction of the compute
    energy at this design point (as MNSIM reports for CNNs)."""
    spec = resnet50_spec()
    report = simulate_network([baseline_deployment(l, 9, 9) for l in spec])
    noc = benchmark.pedantic(lambda: analyze_noc(report), rounds=1,
                             iterations=1)
    ratio = noc.energy_mj / report.energy_mj
    print(f"\n  NoC / compute energy = {ratio * 100:.2f}%")
    assert ratio < 0.25
