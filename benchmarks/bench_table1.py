"""Benchmark: regenerate Table 1 (main results).

Hardware columns (crossbars, CR, latency, energy, utilization) are exact
reproductions on the full-size ResNet-50/101 shapes; the accuracy column is
measured on the synthetic substrate at the configured preset (see
conftest).  The printed tables parallel the paper's Table 1 row for row.
"""


from repro.analysis.experiments import run_table1
from repro.analysis.hardware import table1_hardware_rows
from repro.core.search import EvoSearchConfig


def test_table1_resnet50_hardware(benchmark):
    """Hardware columns for ResNet-50 (the paper's top block)."""
    rows = benchmark.pedantic(
        lambda: table1_hardware_rows(
            "resnet50",
            search=EvoSearchConfig(population_size=48, iterations=40)),
        rounds=1, iterations=1)
    base = rows[0]
    w3 = next(r for r in rows if r.bitwidth == "W3A9")
    print()
    for row in rows:
        print(f"  {row.model:<28s} {row.bitwidth:<7s} "
              f"XBs={row.xbars if row.xbars else '-':>6} "
              f"CR={row.cr:6.2f} "
              f"lat={row.latency_ms if row.latency_ms else float('nan'):7.1f}ms "
              f"E={row.energy_mj if row.energy_mj else float('nan'):7.1f}mJ")
    assert w3.cr > 15        # paper: 30.65x (shape: >15x)
    assert base.cr == 1.0


def test_table1_resnet101_hardware(benchmark):
    """Hardware columns for ResNet-101 (the paper's bottom block)."""
    rows = benchmark.pedantic(
        lambda: table1_hardware_rows(
            "resnet101", include_opt_rows=False,
            search=EvoSearchConfig(population_size=32, iterations=25)),
        rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  {row.model:<28s} {row.bitwidth:<7s} CR={row.cr:6.2f}")
    w3 = next(r for r in rows if r.bitwidth == "W3A9")
    assert w3.cr > 15        # paper: 31.22x


def test_table1_full_with_accuracy(benchmark, workbench, preset):
    """The complete Table 1 including the synthetic-substrate accuracy
    column (rankings, not absolute ImageNet numbers)."""
    result = benchmark.pedantic(
        lambda: run_table1("resnet50", preset=preset, workbench=workbench,
                           verbose=False),
        rounds=1, iterations=1)
    print()
    print(result.rendered)
    acc = result.accuracy
    # Ranking claims that must survive the substrate swap:
    assert acc["EPIM W9A9"] >= acc["EPIM W3A9"] - 0.05
    assert acc["EPIM FP32"] >= acc["EPIM W3A9"] - 0.10
