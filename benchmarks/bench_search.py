"""Benchmark: evolutionary search convergence (Algorithm 1 ablation).

DESIGN.md calls out the search as a design choice worth ablating: how much
does the evolutionary loop improve over (a) the best uniform design and
(b) a random-sampling baseline with the same evaluation budget?
"""

import numpy as np
import pytest

from repro.core.search import (
    EvoSearchConfig,
    build_candidate_grid,
    evaluate_assignment,
    evolution_search,
)
from repro.models.specs import resnet50_spec
from repro.pim.simulator import baseline_deployment, simulate_network


@pytest.fixture(scope="module")
def grid():
    return build_candidate_grid(resnet50_spec(), weight_bits=9,
                                activation_bits=9, use_wrapping=True)


def best_uniform(grid, budget):
    best = None
    for cand in [(2048, 512), (1024, 256), (512, 128), (256, 64)]:
        genome = [cand if cand in grid.candidates[l.name]
                  else min(grid.candidates[l.name],
                           key=lambda c: grid.cache[(l.name, c)][0])
                  for l in grid.spec]
        result = evaluate_assignment(grid, genome)
        if result.crossbars <= budget and (best is None
                                           or result.edp < best.edp):
            best = result
    return best


def random_baseline(grid, budget, evaluations, seed=0):
    rng = np.random.default_rng(seed)
    best = None
    options = [grid.candidates[l.name] for l in grid.spec]
    for _ in range(evaluations):
        genome = [opts[rng.integers(len(opts))] for opts in options]
        result = evaluate_assignment(grid, genome)
        if result.crossbars <= budget and (best is None
                                           or result.edp < best.edp):
            best = result
    return best


def test_search_beats_uniform_and_random(benchmark, grid):
    spec = resnet50_spec()
    base = simulate_network([baseline_deployment(l, 9, 9) for l in spec])
    budget = base.num_crossbars // 8

    config = EvoSearchConfig(population_size=48, iterations=40,
                             objective="edp", seed=0)
    result = benchmark.pedantic(
        lambda: evolution_search(grid, budget, config),
        rounds=1, iterations=1)
    uniform = best_uniform(grid, budget)
    random = random_baseline(grid, budget,
                             evaluations=config.population_size
                             * config.iterations)
    print(f"\n  budget {budget} XBs:")
    print(f"  evo-search EDP = {result.eval.edp:9.1f} "
          f"(XBs {result.eval.crossbars})")
    if uniform is not None:
        print(f"  best uniform EDP = {uniform.edp:9.1f}")
        assert result.eval.edp <= uniform.edp * 1.001
    if random is not None:
        print(f"  random-search EDP = {random.edp:9.1f}")
        assert result.eval.edp <= random.edp * 1.05


def test_search_convergence_profile(benchmark, grid):
    """Reward history is monotone and improves substantially."""
    spec = resnet50_spec()
    base = simulate_network([baseline_deployment(l, 9, 9) for l in spec])
    budget = base.num_crossbars // 8

    result = benchmark.pedantic(
        lambda: evolution_search(
            grid, budget,
            EvoSearchConfig(population_size=48, iterations=40,
                            objective="latency", seed=3)),
        rounds=1, iterations=1)
    history = result.history
    print(f"\n  reward: first={history[0]:.4f} last={history[-1]:.4f} "
          f"({history[-1] / max(history[0], 1e-12):.2f}x)")
    assert all(b >= a - 1e-12 for a, b in zip(history, history[1:]))
    assert history[-1] >= history[0]
