"""Shared fixtures for the benchmark harness.

Every paper table/figure has one ``bench_*.py`` here; run them all with::

    pytest benchmarks/ --benchmark-only

Heavy experiment benches use ``benchmark.pedantic(..., rounds=1)`` so the
experiment is executed once and its real wall time recorded (re-running a
multi-minute training sweep for statistics would be pointless).

The accuracy preset defaults to ``smoke`` so the whole harness finishes in
a few minutes; set ``REPRO_PRESET=default`` (or ``full``) to regenerate the
EXPERIMENTS.md-quality numbers.
"""

import os

import pytest

from repro.analysis.accuracy import PRESETS, AccuracyWorkbench


def current_preset():
    name = os.environ.get("REPRO_PRESET", "smoke")
    if name not in PRESETS:
        raise KeyError(f"REPRO_PRESET must be one of {sorted(PRESETS)}")
    return PRESETS[name]


@pytest.fixture(scope="session")
def workbench():
    """One shared accuracy workbench: trained checkpoints are cached, so
    Table 1, 2 and 3 benches reuse the same baseline/epitome runs."""
    return AccuracyWorkbench(current_preset())


@pytest.fixture(scope="session")
def preset():
    return current_preset()
