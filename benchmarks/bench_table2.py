"""Benchmark: regenerate Table 2 (epitome quantization ablation).

Columns: naive quant -> + per-crossbar scaling factors -> + overlap-weighted
ranges (Eqs. 4-5), at 3-bit and 3-5-bit mixed precision.  The paper's claim
is a monotone improvement along the columns (e.g. 69.95 -> 71.35 -> 71.59
for 3-bit ResNet-50).
"""


from repro.analysis.experiments import run_table2


def test_table2_quantization_ablation(benchmark, workbench, preset):
    result = benchmark.pedantic(
        lambda: run_table2(preset=preset, workbench=workbench, verbose=False),
        rounds=1, iterations=1)
    print()
    print(result.rendered)
    acc = result.accuracies
    # QAT rows: the two proposed adjustments should not hurt (paper:
    # strictly better; at substrate scale differences sit inside noise).
    slack = 0.05
    for scenario in ("3-bit", "3-5 bit"):
        naive = acc[(scenario, "naive")]
        crossbar = acc[(scenario, "crossbar")]
        full = acc[(scenario, "crossbar_overlap")]
        assert crossbar >= naive - slack
        assert full >= naive - slack
    # PTQ row: without QAT recovery, the paper's bottom line — the full
    # method does not lose to naive quantization, and at least one of the
    # two proposed adjustments strictly beats it.  Individual columns are
    # volatile at 3 bits on the small substrate (per-tile min/max ranges
    # swing with outliers; see EXPERIMENTS.md); the strictly monotone
    # mechanism-level ordering is asserted deterministically in
    # test_table2_static_quant_error_ordering below.
    ptq = result.ptq_accuracies
    assert ptq["crossbar_overlap"] >= ptq["naive"]
    assert max(ptq["crossbar"], ptq["crossbar_overlap"]) > ptq["naive"] - 0.10
    assert ptq["crossbar"] >= ptq["naive"] - 0.10


def test_table2_static_quant_error_ordering(benchmark):
    """No-training check of the same mechanism: weighted quantization error
    on a fixed epitome strictly improves naive -> crossbar -> overlap."""
    import numpy as np
    from repro.core.epitome import EpitomeShape
    from repro.core.equant import EpitomeQuantConfig, make_epitome_quant_hook
    from repro.core.layers import EpitomeConv2d

    def build_and_measure():
        shape = EpitomeShape.from_rows_cols(1024, 256, (3, 3), 512)
        layer = EpitomeConv2d(512, 512, 3, padding=1, epitome_shape=shape,
                              rng=np.random.default_rng(0))
        counts = layer.repetition_counts().astype(np.float64)
        errors = {}
        for mode in ("naive", "crossbar", "crossbar_overlap"):
            hook = make_epitome_quant_hook(
                layer, EpitomeQuantConfig(bits=3, mode=mode))
            out = hook(layer.epitome).data
            errors[mode] = float(
                (counts * (out - layer.epitome.data) ** 2).sum())
        return errors

    errors = benchmark.pedantic(build_and_measure, rounds=1, iterations=1)
    print()
    for mode, err in errors.items():
        print(f"  {mode:<18s} repetition-weighted MSE = {err:.5f}")
    assert errors["crossbar"] <= errors["naive"]
    assert errors["crossbar_overlap"] <= errors["crossbar"] * 1.02
