"""Benchmark: device non-ideality ablation (extension study).

The paper simulates ideal 2-bit cells; a natural robustness question for
any PIM deployment is conductance variation and ADC saturation.  This bench
sweeps device noise through the *functional* crossbar model and measures
output degradation of an epitome layer — the kind of extension study the
EPIM framework enables for free.
"""

import numpy as np

from repro.core.epitome import EpitomeShape, build_plan
from repro.pim.config import DEFAULT_CONFIG
from repro.pim.datapath import execute_epitome_conv


def relative_error(a, b):
    scale = np.abs(b).max() + 1e-9
    return float(np.abs(a - b).mean() / scale)


def test_noise_sweep_degrades_gracefully(benchmark):
    rng = np.random.default_rng(0)
    shape = EpitomeShape.from_rows_cols(160, 16, (3, 3), 32)
    plan = build_plan((32, 32, 3, 3), shape)
    epitome = rng.integers(-16, 16, size=shape.as_tuple())
    x = rng.integers(0, 256, size=(2, 32, 10, 10))
    exact = execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                 8, 6)

    def sweep():
        errors = {}
        for noise in (0.0, 0.01, 0.03, 0.1):
            out = execute_epitome_conv(
                x, epitome, plan, 1, 1, DEFAULT_CONFIG, 8, 6,
                noise_std=noise, rng=np.random.default_rng(1))
            errors[noise] = relative_error(out, exact)
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for noise, err in errors.items():
        print(f"  conductance noise {noise:5.2f} -> mean rel. error {err:.5f}")
    assert errors[0.0] == 0.0
    values = [errors[k] for k in sorted(errors)]
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert errors[0.1] < 0.2    # graceful, not catastrophic


def test_adc_saturation_effect(benchmark):
    """Non-ideal (clipping) ADC vs ideal: bounded one-sided error."""
    rng = np.random.default_rng(2)
    shape = EpitomeShape.from_rows_cols(160, 16, (3, 3), 32)
    plan = build_plan((32, 32, 3, 3), shape)
    epitome = rng.integers(-16, 16, size=shape.as_tuple())
    x = rng.integers(0, 256, size=(1, 32, 8, 8))

    exact = execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG, 8, 6)
    clipped = benchmark.pedantic(
        lambda: execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                     8, 6, ideal_adc=False),
        rounds=1, iterations=1)
    err = relative_error(clipped, exact)
    print(f"\n  8-bit saturating ADC mean rel. error: {err:.4f}")
    assert err < 0.5
