"""Ablation: IR-drop / sense saturation (extension study).

First-order wire-resistance model: large column currents read low
(``measured = ideal * (1 - beta * ideal / full_scale)``).  Because the
degradation grows with the column current, rounds that drive *fewer* word
lines are relatively more accurate — and EPIM's IFRT-gated patch rounds
drive exactly the patch's rows.  This bench measures that structural
robustness: the same layer mapped with a small epitome (few active rows per
round) versus a large one (many active rows per round) under increasing
IR drop.
"""

import numpy as np

from repro.core.epitome import EpitomeShape, build_plan
from repro.pim.config import DEFAULT_CONFIG
from repro.pim.datapath import execute_epitome_conv


def run_case(rows, cols, ci, co, beta, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    shape = EpitomeShape.from_rows_cols(rows, cols, (3, 3), ci)
    plan = build_plan((co, ci, 3, 3), shape)
    epitome = rng.integers(0, 8, size=shape.as_tuple())   # non-negative
    x = rng.integers(0, 64, size=(1, ci, 8, 8))
    exact = execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                 6, 4)
    dropped = execute_epitome_conv(x, epitome, plan, 1, 1, DEFAULT_CONFIG,
                                   6, 4, ir_drop_beta=beta)
    scale = np.abs(exact).max() + 1e-9
    rel = float(np.abs(dropped - exact).mean() / scale)
    avg_rows = int(np.mean([p.ci_size * 9 for p in plan.patches]))
    return rel, avg_rows


def test_ir_drop_sweep(benchmark):
    def sweep():
        out = {}
        for beta in (0.0, 0.1, 0.3, 0.6):
            out[beta] = run_case(rows=256, cols=16, ci=64, co=16, beta=beta)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for beta, (rel, rows) in results.items():
        print(f"  beta={beta:4.2f}: mean rel. error {rel:.5f} "
              f"(~{rows} active rows/round)")
    assert results[0.0][0] == 0.0
    errors = [results[k][0] for k in sorted(results)]
    assert all(b >= a for a, b in zip(errors, errors[1:]))


def test_fewer_active_rows_less_drop(benchmark):
    """Smaller patches drive fewer rows -> smaller column currents ->
    relatively less IR-drop error."""
    beta = 0.4

    def compare():
        small = run_case(rows=128, cols=16, ci=64, co=16, beta=beta)
        large = run_case(rows=512, cols=16, ci=64, co=16, beta=beta)
        return small, large

    (small_err, small_rows), (large_err, large_rows) = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    print(f"\n  small epitome: {small_rows} rows/round, err {small_err:.5f}")
    print(f"  large epitome: {large_rows} rows/round, err {large_err:.5f}")
    assert small_rows < large_rows
    assert small_err < large_err
