"""Ablation: the overlap blend weights w1/w2 of Eqs. 4-5.

The paper introduces ``w1``/``w2`` as hyperparameters weighting the
highly-repeated (overlap) region versus the rest when setting the
quantization range, and refers to an ablation validating the technique.
This bench sweeps ``w1`` and measures the repetition-weighted quantization
error — the quantity the weighted range is designed to minimise (errors on
an epitome element are multiplied by how often the sampler repeats it).

Expected shape: error at ``w1 = 0`` equals the plain per-crossbar range
(w2 = 1 recovers min/max over everything via the blend's other extreme is
not exactly min/max, so we compare against mode="crossbar" separately);
moderate ``w1`` minimises the weighted error; ``w1 = 1`` over-clips.
"""

import numpy as np

from repro.core.epitome import EpitomeShape
from repro.core.equant import EpitomeQuantConfig, make_epitome_quant_hook
from repro.core.layers import EpitomeConv2d


def weighted_error(layer, mode, w1, bits=3):
    hook = make_epitome_quant_hook(
        layer, EpitomeQuantConfig(bits=bits, mode=mode,
                                  w1=w1, w2=1.0 - w1))
    out = hook(layer.epitome).data
    counts = layer.repetition_counts().astype(np.float64)
    return float((counts * (out - layer.epitome.data) ** 2).sum())


def test_w1_sweep(benchmark):
    shape = EpitomeShape.from_rows_cols(1024, 256, (3, 3), 512)
    layer = EpitomeConv2d(512, 512, 3, padding=1, epitome_shape=shape,
                          rng=np.random.default_rng(0))

    def sweep():
        errors = {}
        errors["crossbar (no overlap)"] = weighted_error(layer, "crossbar", 0.7)
        for w1 in (0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0):
            errors[f"w1={w1}"] = weighted_error(layer, "crossbar_overlap", w1)
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for label, err in errors.items():
        print(f"  {label:<22s} weighted MSE = {err:10.4f}")

    reference = errors["crossbar (no overlap)"]
    best = min(v for k, v in errors.items() if k.startswith("w1"))
    # some blend beats the unweighted range on the weighted metric
    assert best < reference
    # the default (0.7) is within 10% of the swept optimum
    assert errors["w1=0.7"] <= best * 1.10


def test_overlap_quantile_sweep(benchmark):
    """Sensitivity to how the 'highly repeated' region is thresholded."""
    shape = EpitomeShape.from_rows_cols(1024, 256, (3, 3), 512)
    layer = EpitomeConv2d(512, 512, 3, padding=1, epitome_shape=shape,
                          rng=np.random.default_rng(1))

    def sweep():
        errors = {}
        for quantile in (0.25, 0.5, 0.75):
            hook = make_epitome_quant_hook(
                layer, EpitomeQuantConfig(bits=3, mode="crossbar_overlap",
                                          overlap_quantile=quantile))
            out = hook(layer.epitome).data
            counts = layer.repetition_counts().astype(np.float64)
            errors[quantile] = float(
                (counts * (out - layer.epitome.data) ** 2).sum())
        return errors

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for quantile, err in errors.items():
        print(f"  overlap quantile {quantile:4.2f}: weighted MSE = {err:.4f}")
    assert all(np.isfinite(v) for v in errors.values())
