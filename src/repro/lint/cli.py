"""``python -m repro lint``: the static-analysis gate.

Usage::

    python -m repro lint                     # lint src/ against the
                                             # manifest + baseline
    python -m repro lint --format=github     # CI annotations
    python -m repro lint --write-manifest    # regenerate the metric
                                             # manifest, then lint
    python -m repro lint --update-baseline   # re-record current findings
    python -m repro lint --list-rules        # rule catalog
    python -m repro lint path/to/file.py --no-baseline --select D,M

Exit codes: 0 clean, 1 unbaselined findings, 2 usage/config error.
The rule catalog and suppression policy live in docs/static-analysis.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline
from .config import LintConfig
from .engine import LintError, run_lint
from .report import FORMATS, render
from .rules import RULES, all_rule_ids

__all__ = ["add_lint_parser", "run_lint_cli"]


def add_lint_parser(subparsers) -> argparse.ArgumentParser:
    p = subparsers.add_parser(
        "lint",
        help="project-aware static analysis (determinism / metric "
             "namespace / hot-loop / contract rules)")
    p.add_argument("paths", nargs="*", default=None,
                   help="files or directories to lint (default: src)")
    p.add_argument("--root", default=".",
                   help="repository root (manifest/baseline/docs are "
                        "resolved against it)")
    p.add_argument("--format", default="human", choices=sorted(FORMATS),
                   help="finding output format")
    p.add_argument("--select", default="",
                   help="comma-separated rule-id prefixes to run "
                        "(e.g. 'D,M20')")
    p.add_argument("--ignore", default="",
                   help="comma-separated rule-id prefixes to skip")
    p.add_argument("--baseline", default="lint-baseline.json",
                   help="baseline file (repo-root relative)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore the baseline file entirely")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline from the current findings "
                        "and exit 0")
    p.add_argument("--manifest", default="docs/metrics-manifest.json",
                   help="metrics manifest file (repo-root relative)")
    p.add_argument("--write-manifest", action="store_true",
                   help="regenerate the metrics manifest before linting")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    return p


def run_lint_cli(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id in all_rule_ids():
            rule = RULES[rule_id]
            print(f"{rule_id}  {rule.name:<28} {rule.summary}")
        return 0
    config = LintConfig(
        root=Path(args.root).resolve(),
        paths=tuple(args.paths) if args.paths else ("src",),
        select=tuple(t.strip() for t in args.select.split(",")
                     if t.strip()),
        ignore=tuple(t.strip() for t in args.ignore.split(",")
                     if t.strip()),
        baseline_path=None if args.no_baseline else args.baseline,
        manifest_path=args.manifest,
        write_manifest=args.write_manifest,
    )
    try:
        result = run_lint(config)
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        baseline = Baseline.from_findings(result.findings
                                          + result.baselined)
        path = baseline.write(config.resolve(args.baseline))
        print(f"baseline updated: {len(baseline)} finding(s) "
              f"recorded in {path}")
        return 0
    render(result, args.format, sys.stdout)
    return result.exit_code
