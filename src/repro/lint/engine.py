"""The lint engine: walk, parse, run rules, apply suppressions/baseline.

One :func:`run_lint` call is one gate decision:

1. discover ``*.py`` files under ``config.paths``;
2. build a :class:`~repro.lint.context.FileContext` per file and
   collect the metric-namespace observations (always — project rules
   need the full picture even under ``--select``);
3. run the enabled per-file rules, dropping findings suppressed by an
   inline ``# reprolint: disable=`` pragma;
4. run the enabled project rules (manifest/doc cross-checks);
5. fingerprint everything and split into *new* vs *baselined*.

``LintResult.exit_code`` is the CLI contract: 0 clean, 1 findings,
2 configuration/usage error (raised as :class:`LintError`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import List

from .baseline import Baseline
from .config import LintConfig
from .context import FileContext, ProjectContext
from .findings import Finding, assign_fingerprints
from .manifest import MetricsManifest, generate_manifest
from .rules import file_rules, project_rules
from .rules.metrics import collect_observations

__all__ = ["LintError", "LintResult", "run_lint"]


class LintError(RuntimeError):
    """Configuration/usage failure (exit code 2), not a finding."""


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)       # new
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    manifest_written: bool = False

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _discover(config: LintConfig) -> List[Path]:
    files: List[Path] = []
    for rel in config.paths:
        target = config.resolve(rel)
        if target.is_file():
            files.append(target)
        elif target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        else:
            raise LintError(f"lint path does not exist: {target}")
    return files


def run_lint(config: LintConfig) -> LintResult:
    result = LintResult()
    project = ProjectContext(config=config)

    manifest_file = config.resolve(config.manifest_path)
    if manifest_file.exists():
        try:
            project.manifest = MetricsManifest.load(manifest_file)
        except (ValueError, OSError) as exc:
            raise LintError(f"cannot load metrics manifest: {exc}") from exc

    # ---- per-file pass ----------------------------------------------
    contexts: List[FileContext] = []
    for path in _discover(config):
        try:
            source = path.read_text()
            tree = ast.parse(source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        rel = path.resolve().relative_to(
            config.root.resolve()).as_posix() \
            if path.resolve().is_relative_to(config.root.resolve()) \
            else path.as_posix()
        ctx = FileContext(path=path, relpath=rel, source=source,
                          tree=tree, config=config, project=project)
        contexts.append(ctx)
        collect_observations(ctx)
    project.files = contexts
    result.files_checked = len(contexts)

    # ``--write-manifest`` regenerates the contract *before* the rules
    # compare against it, so the run that writes it also proves it.
    if config.write_manifest:
        fresh = generate_manifest(project.observed_metrics,
                                  project.observed_prefixes,
                                  project.observed_span_categories)
        fresh.write(manifest_file)
        project.manifest = fresh
        result.manifest_written = True

    raw: List[Finding] = []
    for ctx in contexts:
        for rule in file_rules():
            if not config.rule_enabled(rule.id):
                continue
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    result.suppressed += 1
                else:
                    raw.append(finding)

    # ---- project pass -----------------------------------------------
    for rule in project_rules():
        if not config.rule_enabled(rule.id):
            continue
        raw.extend(rule.check_project(project))

    # ---- baseline ---------------------------------------------------
    ordered = assign_fingerprints(raw)
    baseline = Baseline()
    if config.baseline_path:
        try:
            baseline = Baseline.load(config.resolve(config.baseline_path))
        except ValueError as exc:
            raise LintError(str(exc)) from exc
    for finding in ordered:
        if finding.fingerprint in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result
