"""The metrics manifest: the machine-checked metric-namespace contract.

``docs/metrics-manifest.json`` is *generated* from the AST scan
(``python -m repro lint --write-manifest``) and checked in.  Three
parties are held together by it:

- **Code**: every statically-resolvable ``counter()/gauge()/histogram()``
  name must appear in the manifest (rule M202), and every manifest entry
  must still be published somewhere (rule M205 flags stale entries).
- **Docs**: every manifest name must be documented in
  ``docs/observability.md`` and every metric name the doc's tables
  mention must exist in the manifest (rule M204, both directions).
- **Runtime**: ``tests/obs/test_manifest_roundtrip.py`` replays a
  serve+search smoke and asserts the names published at runtime equal
  the manifest.

Dynamic names with a constant dotted prefix (``f"pim.simulator.{name}"``)
are represented as wildcard entries (``pim.simulator.*``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Set, Tuple

from .config import METRIC_NAME_RE, METRIC_ROOTS

__all__ = ["MetricsManifest", "generate_manifest", "doc_metric_names"]

MANIFEST_VERSION = 1

# Backticked tokens in docs: full dotted names (optionally `prefix.*`)
# and relative continuations like `.stragglers` that extend the
# previous full name on the same line.
_DOC_FULL = re.compile(
    rf"`((?:{'|'.join(METRIC_ROOTS)})(?:\.[a-z][a-z0-9_]*)+(?:\.\*)?)`")
_DOC_RELATIVE = re.compile(r"`((?:\.[a-z][a-z0-9_]*)+)`")


@dataclass
class MetricsManifest:
    """Sorted metric names, wildcard families and span categories."""

    metrics: List[str] = field(default_factory=list)
    wildcards: List[str] = field(default_factory=list)     # "pim.simulator.*"
    span_categories: List[str] = field(default_factory=list)

    # ---- membership --------------------------------------------------
    def covers_metric(self, name: str) -> bool:
        return name in self._metric_set or self._wildcard_match(name)

    def covers_prefix(self, prefix: str) -> bool:
        """True when a wildcard family sanctions dynamic names starting
        with ``prefix`` (the prefix must reach into the family)."""
        return any(prefix.startswith(w[:-1]) for w in self.wildcards)

    def covers_span_category(self, category: str) -> bool:
        return category in set(self.span_categories)

    def _wildcard_match(self, name: str) -> bool:
        return any(name.startswith(w[:-1]) for w in self.wildcards)

    @property
    def _metric_set(self) -> Set[str]:
        return set(self.metrics)

    def all_names(self) -> List[str]:
        return sorted(set(self.metrics) | set(self.wildcards))

    # ---- io ----------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "metrics": sorted(set(self.metrics)),
            "wildcards": sorted(set(self.wildcards)),
            "span_categories": sorted(set(self.span_categories)),
        }

    def write(self, path: Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Path) -> "MetricsManifest":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest {path} has version {payload.get('version')!r}, "
                f"expected {MANIFEST_VERSION}")
        return cls(metrics=list(payload.get("metrics", ())),
                   wildcards=list(payload.get("wildcards", ())),
                   span_categories=list(payload.get("span_categories", ())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsManifest):
            return NotImplemented
        return self.as_dict() == other.as_dict()


def generate_manifest(metrics: Iterable[str], prefixes: Iterable[str],
                      span_categories: Iterable[str]) -> MetricsManifest:
    """Build a manifest from the scan's observations.

    ``prefixes`` are the constant leading runs of dynamic names; only
    prefixes that end at a dot boundary below a valid family root
    become wildcards (``"pim.simulator."`` -> ``"pim.simulator.*"``).
    """
    wildcards = sorted({
        f"{prefix.rstrip('.')}.*" for prefix in prefixes
        if prefix.endswith(".")
        and METRIC_NAME_RE.match(prefix.rstrip(".") + ".x")})
    return MetricsManifest(metrics=sorted(set(metrics)),
                           wildcards=wildcards,
                           span_categories=sorted(set(span_categories)))


def doc_metric_names(text: str) -> Tuple[Set[str], Set[str], Set[str]]:
    """Extract ``(names, wildcards, span_categories)`` from the doc.

    Backticked dotted tokens with >= 3 segments are metric names (the
    grammar requires subsystem.component.metric); 2-segment tokens are
    span categories (``serve.request``) or benchmark names
    (``obs.overhead``) and never metric names.  Handles the compact
    table idiom where ``.relative`` tokens extend the most recent full
    name on the same line: in a row naming ``serve.faults.chip_kills``
    / ``.stragglers``, the relative token replaces the final
    segment(s) of the previous full name.
    """
    names: Set[str] = set()
    wildcards: Set[str] = set()
    categories: Set[str] = set()
    for line in text.splitlines():
        last_full: Optional[str] = None
        for match in re.finditer(r"`([^`]+)`", line):
            token = match.group(1)
            full = _DOC_FULL.fullmatch(f"`{token}`")
            if full:
                value = full.group(1)
                if value.endswith(".*"):
                    wildcards.add(value)
                elif METRIC_NAME_RE.match(value):
                    names.add(value)
                    last_full = value
                else:
                    categories.add(value)
                continue
            relative = _DOC_RELATIVE.fullmatch(f"`{token}`")
            if relative and last_full is not None:
                rel_segments = relative.group(1).lstrip(".").split(".")
                base = last_full.split(".")
                if len(base) > len(rel_segments):
                    names.add(".".join(base[:-len(rel_segments)]
                                       + rel_segments))
    return names, wildcards, categories
