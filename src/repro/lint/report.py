"""Finding reporters: human, JSONL and GitHub-annotation formats.

``human`` groups by file for terminal reading; ``jsonl`` emits one
finding object per line for pipelines; ``github`` emits workflow
commands (``::error file=...``) so CI findings annotate the diff view.
"""

from __future__ import annotations

import json
from typing import IO, List

from .engine import LintResult
from .findings import Finding

__all__ = ["FORMATS", "render"]


def _human(result: LintResult, stream: IO[str]) -> None:
    current = None
    for finding in result.findings:
        if finding.path != current:
            current = finding.path
            stream.write(f"{finding.path}\n")
        where = f"{finding.line}:{finding.col + 1}"
        symbol = f"  [{finding.symbol}]" if finding.symbol else ""
        stream.write(f"  {where:>9}  {finding.rule}  "
                     f"{finding.message}{symbol}\n")
    stream.write(_summary(result) + "\n")


def _jsonl(result: LintResult, stream: IO[str]) -> None:
    for finding in result.findings:
        stream.write(json.dumps(finding.as_dict(), sort_keys=True) + "\n")
    stream.write(json.dumps({
        "summary": True,
        "findings": len(result.findings),
        "baselined": len(result.baselined),
        "suppressed": result.suppressed,
        "files_checked": result.files_checked,
    }, sort_keys=True) + "\n")


def _github(result: LintResult, stream: IO[str]) -> None:
    for finding in result.findings:
        message = finding.message.replace("%", "%25") \
            .replace("\r", "%0D").replace("\n", "%0A")
        stream.write(
            f"::error file={finding.path},line={finding.line},"
            f"col={finding.col + 1},title=reprolint {finding.rule}"
            f"::{message}\n")
    stream.write(_summary(result) + "\n")


def _summary(result: LintResult) -> str:
    bits = [f"{result.files_checked} files checked",
            f"{len(result.findings)} findings"]
    if result.baselined:
        bits.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed inline")
    if result.manifest_written:
        bits.append("manifest written")
    return ", ".join(bits)


FORMATS = {"human": _human, "jsonl": _jsonl, "github": _github}


def render(result: LintResult, fmt: str, stream: IO[str]) -> None:
    try:
        FORMATS[fmt](result, stream)
    except KeyError:
        raise ValueError(f"unknown format {fmt!r}; "
                         f"known: {sorted(FORMATS)}") from None


def render_findings(findings: List[Finding]) -> str:     # pragma: no cover
    """Convenience for interactive debugging."""
    return "\n".join(f"{f.location()} {f.rule} {f.message}"
                     for f in findings)
