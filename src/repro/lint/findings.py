"""The lint finding record and its baseline fingerprint.

A fingerprint identifies *what* is wrong, not *where on the page* it
currently sits: it hashes the rule, the file, the enclosing symbol and
the normalized source line — never the line number — so reformatting or
adding code above a baselined finding does not invalidate the baseline.
Identical findings on identical lines (e.g. a copy-pasted violation)
are disambiguated by an occurrence index assigned in file order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Finding", "assign_fingerprints"]


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str               # e.g. "D101"
    path: str               # repo-relative posix path
    line: int               # 1-based
    col: int                # 0-based (ast convention)
    message: str
    symbol: str = ""        # enclosing def/class qualname, "" at module level
    source_line: str = ""   # stripped text of the offending line
    fingerprint: str = field(default="", compare=False)

    def as_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "fingerprint": self.fingerprint,
        }

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


def _stable_key(finding: Finding) -> str:
    normalized = " ".join(finding.source_line.split())
    return "\x1f".join((finding.rule, finding.path, finding.symbol,
                        normalized))


def assign_fingerprints(findings: List[Finding]) -> List[Finding]:
    """Stamp every finding with a line-number-independent fingerprint.

    Findings sharing a stable key (same rule, file, symbol and source
    text) get an occurrence suffix in (path, line, col) order, so the
    n-th copy of a duplicated violation keeps the n-th fingerprint even
    as the block moves around the file.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    seen: Dict[str, int] = {}
    for finding in ordered:
        key = _stable_key(finding)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            f"{key}\x1f{index}".encode("utf-8")).hexdigest()[:16]
        finding.fingerprint = digest
    return ordered
