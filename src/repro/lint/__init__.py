"""Project-aware static analysis: ``python -m repro lint``.

``repro.lint`` machine-checks the contracts the rest of the repo only
promises at runtime:

- **D-rules (determinism)** — no module-global RNG, no unseeded
  ``default_rng()``, no wall-clock reads or unordered-``set`` iteration
  inside the deterministic subsystems (``pim``, ``serve``, ``search``).
- **M-rules (metrics/spans)** — every ``counter()/gauge()/histogram()``
  name and ``span()/record()`` category must parse against the
  namespace grammar and appear in the checked-in manifest
  (``docs/metrics-manifest.json``), which is itself cross-checked
  against ``docs/observability.md``.  A metric typo fails CI instead of
  silently vanishing from a dashboard.
- **H-rules (hot-loop hygiene)** — inside ``# reprolint: hot-loop``
  regions, no per-iteration allocations, no per-event tracer/metric
  calls, no f-string logging.
- **C-rules (contracts)** — ``@benchmark`` factories must declare work
  (``items=``/``counters=``); CLI flags referenced in docs must exist.

Findings can be suppressed inline (``# reprolint: disable=RULE``) or
carried in a reviewed baseline file (``lint-baseline.json``).  The rule
catalog and suppression policy live in ``docs/static-analysis.md``.
"""

from .baseline import Baseline
from .config import LintConfig
from .engine import LintResult, run_lint
from .findings import Finding
from .manifest import MetricsManifest, generate_manifest
from .rules import RULES, all_rule_ids

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "MetricsManifest",
    "RULES",
    "all_rule_ids",
    "generate_manifest",
    "run_lint",
]
