"""The reviewed-findings baseline.

A baseline entry grandfathers one existing finding (by its
line-number-independent fingerprint, see :mod:`repro.lint.findings`)
so the gate can be turned on hard without first fixing the world.  The
contract:

- a finding whose fingerprint is baselined is reported as *baselined*
  and does not fail the run;
- ``--update-baseline`` rewrites the file from the current findings —
  which also *prunes* entries whose violation has been fixed, so the
  baseline only ever shrinks unless someone deliberately re-runs the
  update after introducing a violation (visible in review: the file is
  checked in);
- an empty baseline file and a missing baseline file are equivalent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from .findings import Finding

__all__ = ["Baseline"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """fingerprint -> recorded entry (rule/path kept for human review)."""

    entries: Dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text())
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {payload.get('version')!r}, "
                f"expected {BASELINE_VERSION}")
        return cls(entries={e["fingerprint"]: e
                            for e in payload.get("findings", ())})

    def write(self, path: Path) -> Path:
        path = Path(path)
        ordered = sorted(self.entries.values(),
                         key=lambda e: (e["path"], e["rule"],
                                        e["fingerprint"]))
        payload = {"version": BASELINE_VERSION, "findings": ordered}
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(entries={
            f.fingerprint: {"fingerprint": f.fingerprint, "rule": f.rule,
                            "path": f.path, "message": f.message}
            for f in findings})

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)
