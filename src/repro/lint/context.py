"""Per-file and per-project analysis context shared by every rule.

One :class:`FileContext` is built per Python file: the parsed AST with
a parent map, an import-alias map (so ``np.random.default_rng`` and
``from numpy.random import default_rng`` resolve to the same dotted
name), the ``# reprolint:`` directives found by tokenizing comments
(inline suppressions, file suppressions, hot-loop region markers), and
a single-assignment string-constant resolver used to fold metric names
like ``f"{eng}.requests_completed"`` where ``eng`` is a local constant.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .config import LintConfig

__all__ = ["FileContext", "ProjectContext", "ImportMap", "HotRegion"]

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*(.+?)\s*$")
_HOT_NODE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.For,
                   ast.While)


class ImportMap:
    """Resolve local names to the dotted module paths they alias.

    ``import numpy as np``            -> ``np``  maps to ``numpy``
    ``from numpy.random import rand`` -> ``rand`` maps to ``numpy.random.rand``
    ``resolve(node)`` walks an ``ast.Attribute``/``ast.Name`` chain and
    returns the fully-qualified dotted name, or ``None`` when the base
    is not an import (a local variable, an attribute of ``self``, ...).
    """

    def __init__(self, tree: ast.AST):
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        return ".".join([base] + list(reversed(parts)))


@dataclass(frozen=True)
class HotRegion:
    """A ``# reprolint: hot-loop`` marked statement's line range."""

    start: int
    end: int

    def __contains__(self, line: int) -> bool:
        return self.start <= line <= self.end


def _scan_comments(source: str) -> List[Tuple[int, str]]:
    """``(line, directive)`` pairs for every ``# reprolint:`` comment."""
    out: List[Tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _DIRECTIVE.search(tok.string)
                if match:
                    out.append((tok.start[0], match.group(1)))
    except (tokenize.TokenError, IndentationError):
        pass
    return out


class FileContext:
    """Everything the per-file rules need about one source file."""

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module, config: LintConfig,
                 project: "ProjectContext"):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.project = project
        self.imports = ImportMap(tree)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        parts = Path(relpath).parts
        self.deterministic = any(p in config.deterministic_parts
                                 for p in parts)
        # ---- reprolint directives -----------------------------------
        self.suppressed_lines: Dict[int, Set[str]] = {}
        self.suppressed_file: Set[str] = set()
        self.hot_regions: List[HotRegion] = []
        self.dangling_markers: List[int] = []
        hot_candidates = {
            node.lineno: node for node in ast.walk(tree)
            if isinstance(node, _HOT_NODE_TYPES)}
        for line, raw in _scan_comments(source):
            # Trailing free text after the directive token is welcome
            # (e.g. "hot-loop -- scheduler drain path").
            directive = raw.split()[0] if raw.split() else ""
            if directive.startswith("disable-file="):
                self.suppressed_file |= _parse_rules(
                    directive[len("disable-file="):])
            elif directive.startswith("disable="):
                rules = _parse_rules(directive[len("disable="):])
                self.suppressed_lines.setdefault(line, set()).update(rules)
            elif directive == "hot-loop":
                # Marker on the statement's own line, or alone on the
                # line above it.
                node = hot_candidates.get(line) or hot_candidates.get(
                    line + 1)
                if node is None:
                    self.dangling_markers.append(line)
                else:
                    self.hot_regions.append(
                        HotRegion(node.lineno, node.end_lineno or
                                  node.lineno))
        # ---- single-assignment string constants ---------------------
        # name -> value for Names assigned exactly once to a str
        # literal within each scope (module or function).  Used to fold
        # f-string metric names; anything fancier stays unresolved.
        self._scope_constants: Dict[Optional[ast.AST], Dict[str, str]] = {}
        self._collect_constants(tree, None)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_constants(node, node)

    # ---- helpers ----------------------------------------------------
    def _collect_constants(self, scope_node: ast.AST,
                           key: Optional[ast.AST]) -> None:
        counts: Dict[str, int] = {}
        values: Dict[str, str] = {}

        def visit(node: ast.AST, top: bool = False) -> None:
            if not top and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef, ast.Lambda)):
                return      # nested scope: different namespace
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, str):
                name = node.targets[0].id
                counts[name] = counts.get(name, 0) + 1
                values[name] = node.value.value
                return      # target/value need no further scanning
            else:
                # Any other binding of a name disqualifies it.
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Store):
                    counts[node.id] = counts.get(node.id, 0) + 2
                for child in ast.iter_child_nodes(node):
                    visit(child)

        visit(scope_node, top=True)
        self._scope_constants[key] = {
            name: value for name, value in values.items()
            if counts.get(name) == 1}

    def enclosing_function(self, node: ast.AST) \
            -> Optional[ast.AST]:
        cursor = self.parents.get(node)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cursor
            cursor = self.parents.get(cursor)
        return None

    def qualname(self, node: ast.AST) -> str:
        """Dotted def/class chain enclosing ``node`` ("" at module level)."""
        names: List[str] = []
        cursor: Optional[ast.AST] = node
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                names.append(cursor.name)
            cursor = self.parents.get(cursor)
        return ".".join(reversed(names))

    def lookup_constant(self, node: ast.AST, name: str) -> Optional[str]:
        fn = self.enclosing_function(node)
        while True:
            value = self._scope_constants.get(fn, {}).get(name)
            if value is not None:
                return value
            if fn is None:
                return None
            fn = self.enclosing_function(fn)

    def fold_string(self, node: ast.AST, origin: ast.AST) \
            -> Tuple[Optional[str], Optional[str]]:
        """Try to resolve ``node`` to a compile-time string.

        Returns ``(value, prefix)``: ``value`` is the full string when
        every part folds; otherwise ``prefix`` is the longest constant
        *leading* run (used to match wildcard manifest entries such as
        ``pim.simulator.*``).  ``(None, None)`` means nothing folded.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, None
        if isinstance(node, ast.Name):
            value = self.lookup_constant(origin, node.id)
            return (value, None) if value is not None else (None, None)
        if isinstance(node, ast.JoinedStr):
            parts: List[Optional[str]] = []
            for piece in node.values:
                if isinstance(piece, ast.Constant) \
                        and isinstance(piece.value, str):
                    parts.append(piece.value)
                elif isinstance(piece, ast.FormattedValue) \
                        and piece.format_spec is None:
                    folded, _ = self.fold_string(piece.value, origin)
                    parts.append(folded)
                else:
                    parts.append(None)
            if all(p is not None for p in parts):
                return "".join(parts), None
            prefix = ""
            for p in parts:
                if p is None:
                    break
                prefix += p
            return None, (prefix or None)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, lpre = self.fold_string(node.left, origin)
            right, _ = self.fold_string(node.right, origin)
            if left is not None and right is not None:
                return left + right, None
            return None, (left or lpre)
        return None, None

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def in_hot_region(self, line: int) -> bool:
        return any(line in region for region in self.hot_regions)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.suppressed_file or "all" in self.suppressed_file:
            return True
        rules = self.suppressed_lines.get(line, ())
        return rule in rules or "all" in rules


def _parse_rules(spec: str) -> Set[str]:
    return {token.strip() for token in spec.split(",") if token.strip()}


@dataclass
class ProjectContext:
    """Cross-file state: the manifest contract plus what the per-file
    metric scan actually observed (consumed by the project rules)."""

    config: LintConfig
    manifest: Optional[object] = None          # MetricsManifest | None
    observed_metrics: Set[str] = field(default_factory=set)
    observed_prefixes: Set[str] = field(default_factory=set)
    observed_span_categories: Set[str] = field(default_factory=set)
    files: List[FileContext] = field(default_factory=list)
