"""D-rules: determinism contracts.

The serving/search/PIM stack promises same-seed byte-identical outputs
(the CI scenario matrix replays every cell twice and diffs the summary
JSON).  These rules reject the constructs that silently break that
promise: process-global RNG streams, unseeded generators, wall-clock
reads inside simulated-time subsystems, and iteration order borrowed
from hash-randomized ``set``s.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from . import FileRule, register
from ..context import FileContext
from ..findings import Finding

# numpy.random attributes that are *not* the legacy global stream.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "RandomState", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

# stdlib ``random`` attributes that are explicit-instance safe.
_STDLIB_RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}

_WALL_CLOCK = {
    "time.time": "time.time() reads the wall clock",
    "time.time_ns": "time.time_ns() reads the wall clock",
    "datetime.datetime.now": "datetime.now() reads the wall clock",
    "datetime.datetime.utcnow": "datetime.utcnow() reads the wall clock",
    "datetime.date.today": "date.today() reads the wall clock",
    "os.urandom": "os.urandom() is non-deterministic entropy",
    "uuid.uuid4": "uuid4() is non-deterministic entropy",
}


def _called_name(ctx: FileContext, node: ast.Call) -> Optional[str]:
    return ctx.imports.resolve(node.func)


@register
class GlobalRandomCall(FileRule):
    id = "D101"
    name = "global-rng-call"
    summary = ("module-global RNG free function (np.random.*, random.*) — "
               "thread an explicit numpy Generator instead")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _called_name(ctx, node)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                attr = dotted.split(".", 2)[2]
                if "." not in attr and attr not in _NP_RANDOM_OK:
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        f"call to module-global numpy RNG "
                        f"'np.random.{attr}'; thread an explicit "
                        f"np.random.Generator parameter", node)
            elif dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if "." not in attr and attr not in _STDLIB_RANDOM_OK:
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        f"call to module-global stdlib RNG "
                        f"'random.{attr}'; thread an explicit "
                        f"np.random.Generator parameter", node)


@register
class UnseededDefaultRng(FileRule):
    id = "D102"
    name = "unseeded-default-rng"
    summary = ("default_rng() without a seed draws OS entropy — pass a "
               "seed or an existing Generator")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _called_name(ctx, node)
            if dotted == "numpy.random.default_rng" \
                    and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    "unseeded np.random.default_rng(): every run gets a "
                    "different stream; pass a seed (or accept an rng "
                    "parameter)", node)


@register
class WallClockInDeterministic(FileRule):
    id = "D103"
    name = "wall-clock-in-deterministic"
    summary = ("wall-clock/entropy read inside a simulated-time subsystem "
               "(pim/serve/search); use simulated time or perf_counter "
               "for telemetry-only durations")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.deterministic:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _called_name(ctx, node)
            if dotted is None:
                continue
            # `from datetime import datetime` resolves to datetime.datetime,
            # so now/utcnow land on datetime.datetime.now either way.
            reason = _WALL_CLOCK.get(dotted) or _WALL_CLOCK.get(
                dotted.replace("datetime.now", "datetime.datetime.now"))
            if reason:
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"{reason}; deterministic subsystems must run on "
                    f"simulated time and seeded entropy", node)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "set":
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class UnorderedSetIteration(FileRule):
    id = "D104"
    name = "unordered-set-iteration"
    summary = ("iterating a set (hash order) in a deterministic subsystem "
               "— wrap in sorted() before the order can leak into output")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.deterministic:
            return
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Name) and node.func.id in (
                    "list", "tuple") and len(node.args) == 1:
                iters.append(node.args[0])
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        ctx, it.lineno, it.col_offset,
                        "set iteration order is hash-randomized across "
                        "processes; use sorted(...) so serialized output "
                        "stays byte-identical", node)
