"""Rule registry: per-file rules and project rules.

A *file rule* visits one :class:`~repro.lint.context.FileContext` and
yields findings; a *project rule* runs once per lint invocation over
the :class:`~repro.lint.context.ProjectContext` (manifest/doc
cross-checks, doc-flag existence).  Adding a rule = subclass, set the
class attributes, decorate with :func:`register` — the engine, the CLI
``--select/--ignore`` matching, ``--list-rules`` and the docs table in
``docs/static-analysis.md`` all key off the registry.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from ..context import FileContext, ProjectContext
from ..findings import Finding

__all__ = ["FileRule", "ProjectRule", "RULES", "register",
           "all_rule_ids", "file_rules", "project_rules"]


class FileRule:
    """Base: one rule checked independently against every file."""

    id: str = ""
    name: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, line: int, col: int,
                message: str, node=None) -> Finding:
        return Finding(rule=self.id, path=ctx.relpath, line=line, col=col,
                       message=message,
                       symbol=ctx.qualname(node) if node is not None else "",
                       source_line=ctx.source_line(line))


class ProjectRule(FileRule):
    """Base: one rule checked once against the whole project."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


RULES: Dict[str, FileRule] = {}


def register(cls: Type[FileRule]) -> Type[FileRule]:
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls()
    return cls


def all_rule_ids() -> List[str]:
    _load()
    return sorted(RULES)


def file_rules() -> List[FileRule]:
    _load()
    return [rule for rule in RULES.values()
            if not isinstance(rule, ProjectRule)]


def project_rules() -> List[ProjectRule]:
    _load()
    return [rule for rule in RULES.values()
            if isinstance(rule, ProjectRule)]


def _load() -> None:
    """Import the rule modules (idempotent; registration is on import)."""
    from . import contracts, determinism, hotloop, metrics  # noqa: F401
