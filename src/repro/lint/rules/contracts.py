"""C-rules: cross-artifact contracts.

- **C401** — every ``@benchmark`` factory must *declare work*: the
  :class:`~repro.bench.registry.Workload` it returns needs ``items=``
  (throughput denominator) or ``counters=`` (work-counter sampler), the
  evidence-of-work convention from PR 2.  A bare ``Workload(fn=...)``
  times seconds with nothing to normalize them by.
- **C402** — every ``--flag`` a doc mentions in backticks must be
  defined by some ``add_argument`` call in the code trees (or be on the
  configured external-tools allowlist).  Docs drift the moment a flag
  is renamed; this makes the rename fail CI.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from . import FileRule, ProjectRule, register
from ..context import FileContext, ProjectContext
from ..findings import Finding

_DOC_FLAG = re.compile(r"`(--[a-z][a-z0-9-]*)")


def _decorated_with_benchmark(node: ast.FunctionDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) \
            else getattr(target, "id", "")
        if name == "benchmark":
            return True
    return False


@register
class BenchmarkDeclaresWork(FileRule):
    id = "C401"
    name = "benchmark-declares-work"
    summary = ("@benchmark factory returns a Workload without items= or "
               "counters= — declare the work the timed region performs")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) \
                    or not _decorated_with_benchmark(node):
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Name) and sub.func.id == "Workload":
                    kwargs = {kw.arg for kw in sub.keywords}
                    if not {"items", "counters"} & kwargs \
                            and len(sub.args) < 2:
                        yield self.finding(
                            ctx, sub.lineno, sub.col_offset,
                            "Workload without items= or counters=: a "
                            "benchmark must declare its work, not just "
                            "its seconds", sub)


@register
class DocFlagExists(ProjectRule):
    id = "C402"
    name = "doc-flag-exists"
    summary = ("doc references a `--flag` no add_argument call defines")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        config = project.config
        defined: Set[str] = set(config.external_flags)
        for pattern in config.flag_source_globs:
            for path in sorted(config.root.glob(pattern)):
                try:
                    tree = ast.parse(path.read_text())
                except (SyntaxError, UnicodeDecodeError, OSError):
                    continue
                for node in ast.walk(tree):
                    if isinstance(node, ast.Call) and isinstance(
                            node.func, ast.Attribute) \
                            and node.func.attr == "add_argument":
                        for arg in node.args:
                            if isinstance(arg, ast.Constant) \
                                    and isinstance(arg.value, str) \
                                    and arg.value.startswith("--"):
                                defined.add(arg.value)
        for pattern in config.doc_globs:
            for path in sorted(config.root.glob(pattern)):
                rel = path.relative_to(config.root).as_posix()
                for lineno, line in enumerate(
                        path.read_text().splitlines(), 1):
                    for match in _DOC_FLAG.finditer(line):
                        flag = match.group(1)
                        if flag not in defined:
                            yield Finding(
                                rule=self.id, path=rel, line=lineno,
                                col=match.start(),
                                message=f"doc references {flag!r} but no "
                                        f"add_argument call defines it "
                                        f"(renamed? add it to "
                                        f"external_flags if it belongs "
                                        f"to another tool)",
                                source_line=line.strip())
