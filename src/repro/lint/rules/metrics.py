"""M-rules: the metric/span namespace contract.

``docs/observability.md`` documents a closed namespace; these rules
make a typo'd or undocumented name a CI failure instead of a silently
missing dashboard series.  Metric *publication sites* are calls of the
:class:`~repro.obs.metrics.MetricsRegistry` shape —
``<recv>.counter(name, ...)`` / ``.gauge(...)`` / ``.histogram(...)`` —
and span sites are ``<tracer>.span(name, category)`` /
``<tracer>.record(name, category, ...)`` where the receiver looks like
a tracer (named ``tracer``/``_tracer`` or ``get_tracer()``).

Name literals fold through single-assignment local constants
(``eng = "serve.engine"; registry.counter(f"{eng}.chips")`` resolves to
``serve.engine.chips``); genuinely dynamic names are only allowed when
a wildcard manifest family (``pim.simulator.*``) covers their constant
prefix.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from . import FileRule, ProjectRule, register
from ..config import METRIC_NAME_RE, SPAN_CATEGORY_RE
from ..context import FileContext, ProjectContext
from ..findings import Finding
from ..manifest import doc_metric_names

_METRIC_METHODS = ("counter", "gauge", "histogram")
_SPAN_METHODS = ("span", "record")


def _tracer_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id.lstrip("_") == "tracer"
    if isinstance(node, ast.Attribute):
        return node.attr.lstrip("_") == "tracer"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "get_tracer"
    return False


def _span_category_arg(node: ast.Call) -> Optional[ast.AST]:
    if len(node.args) >= 2:
        return node.args[1]
    for kw in node.keywords:
        if kw.arg == "category":
            return kw.value
    return None


def metric_call_sites(ctx: FileContext) \
        -> Iterator[Tuple[str, ast.Call, ast.AST]]:
    """Yield ``(kind, call, name_node)``: kind is "metric" or "span"."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method in _METRIC_METHODS and node.args:
            yield "metric", node, node.args[0]
        elif method in _SPAN_METHODS \
                and _tracer_receiver(node.func.value):
            category = _span_category_arg(node)
            if category is not None:
                yield "span", node, category


def collect_observations(ctx: FileContext) -> None:
    """Record the file's resolved names/prefixes/categories into the
    project context.  Run by the engine for every file regardless of
    rule selection, so M204/M205 always see the full picture."""
    for kind, call, name_node in metric_call_sites(ctx):
        value, prefix = ctx.fold_string(name_node, call)
        if kind == "span":
            if value is not None:
                ctx.project.observed_span_categories.add(value)
        elif value is not None:
            ctx.project.observed_metrics.add(value)
        elif prefix:
            ctx.project.observed_prefixes.add(prefix)


@register
class MetricNameGrammar(FileRule):
    id = "M201"
    name = "metric-name-grammar"
    summary = ("metric/span name must parse as subsystem.component.metric "
               "(snake_case, root in serve|search|pim|obs)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for kind, call, name_node in metric_call_sites(ctx):
            value, _ = ctx.fold_string(name_node, call)
            if value is None:
                continue        # dynamic names are M203's business
            pattern = METRIC_NAME_RE if kind == "metric" \
                else SPAN_CATEGORY_RE
            if not pattern.match(value):
                what = "metric name" if kind == "metric" \
                    else "span category"
                yield self.finding(
                    ctx, call.lineno, call.col_offset,
                    f"{what} {value!r} does not parse against the "
                    f"namespace grammar (docs/observability.md): "
                    f"dotted snake_case under serve|search|pim|obs",
                    call)


@register
class MetricNotInManifest(FileRule):
    id = "M202"
    name = "metric-not-in-manifest"
    summary = ("published name missing from docs/metrics-manifest.json — "
               "regenerate with --write-manifest and document it")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        manifest = ctx.project.manifest
        for kind, call, name_node in metric_call_sites(ctx):
            value, _ = ctx.fold_string(name_node, call)
            if value is None:
                continue
            if kind == "metric":
                known = manifest is not None \
                    and manifest.covers_metric(value)
            else:
                known = manifest is not None \
                    and manifest.covers_span_category(value)
            if manifest is not None and not known:
                what = "metric" if kind == "metric" else "span category"
                yield self.finding(
                    ctx, call.lineno, call.col_offset,
                    f"{what} {value!r} is not in the metrics manifest; "
                    f"run `python -m repro lint --write-manifest` and "
                    f"document it in docs/observability.md", call)


@register
class DynamicMetricName(FileRule):
    id = "M203"
    name = "dynamic-metric-name"
    summary = ("metric name is not statically resolvable and no wildcard "
               "manifest family covers its constant prefix")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        manifest = ctx.project.manifest
        for kind, call, name_node in metric_call_sites(ctx):
            if kind != "metric":
                continue
            value, prefix = ctx.fold_string(name_node, call)
            if value is not None:
                continue
            if manifest is not None and prefix \
                    and manifest.covers_prefix(prefix):
                continue
            shown = f" (constant prefix {prefix!r})" if prefix else ""
            yield self.finding(
                ctx, call.lineno, call.col_offset,
                f"metric name cannot be resolved statically{shown}; "
                f"use a literal, a single-assignment local constant, or "
                f"a wildcard manifest family covering the prefix", call)


@register
class ManifestDocsDrift(ProjectRule):
    id = "M204"
    name = "manifest-docs-drift"
    summary = ("docs/metrics-manifest.json and docs/observability.md "
               "disagree about the metric namespace")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        manifest = project.manifest
        if manifest is None:
            return
        doc_path = project.config.resolve(project.config.observability_doc)
        doc_rel = project.config.observability_doc
        if not doc_path.exists():
            yield Finding(rule=self.id, path=doc_rel, line=1, col=0,
                          message="observability doc is missing but the "
                                  "manifest exists")
            return
        names, wildcards, categories = doc_metric_names(
            doc_path.read_text())

        def documented(name: str) -> bool:
            return name in names or any(
                name.startswith(w[:-1]) for w in wildcards)

        for category in manifest.span_categories:
            if category not in categories:
                yield Finding(
                    rule=self.id, path=doc_rel, line=1, col=0,
                    message=f"manifest span category {category!r} is not "
                            f"documented in {doc_rel}")
        # The reverse span direction is deliberately lenient: serve-side
        # spans are synthesized lazily from telemetry tuples, not
        # tracer.span()/record() calls, so the doc legitimately knows
        # categories the call-site scan cannot see.
        for name in manifest.metrics:
            if not documented(name):
                yield Finding(
                    rule=self.id, path=doc_rel, line=1, col=0,
                    message=f"manifest metric {name!r} is not documented "
                            f"in {doc_rel}")
        for wildcard in manifest.wildcards:
            if wildcard not in wildcards and not documented(wildcard[:-2]):
                yield Finding(
                    rule=self.id, path=doc_rel, line=1, col=0,
                    message=f"manifest family {wildcard!r} is not "
                            f"documented in {doc_rel}")
        for name in sorted(names):
            if not manifest.covers_metric(name):
                yield Finding(
                    rule=self.id, path=doc_rel, line=1, col=0,
                    message=f"{doc_rel} documents {name!r} but no code "
                            f"publishes it (stale doc entry?)")


@register
class ManifestStale(ProjectRule):
    id = "M205"
    name = "manifest-stale"
    summary = ("checked-in manifest does not match what a fresh scan "
               "generates — run --write-manifest")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        from ..manifest import generate_manifest
        rel = project.config.manifest_path
        if project.manifest is None:
            yield Finding(rule=self.id, path=rel, line=1, col=0,
                          message=f"metrics manifest {rel} is missing; "
                                  f"generate it with `python -m repro "
                                  f"lint --write-manifest`")
            return
        fresh = generate_manifest(project.observed_metrics,
                                  project.observed_prefixes,
                                  project.observed_span_categories)
        current = project.manifest.as_dict()
        regenerated = fresh.as_dict()
        if current == regenerated:
            return
        for key in ("metrics", "wildcards", "span_categories"):
            missing = sorted(set(regenerated[key]) - set(current[key]))
            stale = sorted(set(current[key]) - set(regenerated[key]))
            if missing:
                yield Finding(
                    rule=self.id, path=rel, line=1, col=0,
                    message=f"manifest is missing {key}: {missing} — "
                            f"run --write-manifest")
            if stale:
                yield Finding(
                    rule=self.id, path=rel, line=1, col=0,
                    message=f"manifest lists {key} no scan observes: "
                            f"{stale} — run --write-manifest")
