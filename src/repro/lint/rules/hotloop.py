"""H-rules: hot-loop hygiene.

The design stance in docs/observability.md — zero tracing code in hot
loops, bulk post-run metric publication, the <5% ``obs.overhead``
gate — only holds as long as nobody *adds* per-event work to the
engine dispatch loop, the scheduler heaps or the vectorized evaluator.
Those regions are marked in source with ``# reprolint: hot-loop`` on
(or directly above) a ``def``/``for``/``while`` statement; inside a
marked region these rules flag:

- **H301** known-allocator calls *inside loop bodies* (numpy array
  constructors, ``list()/dict()/set()`` constructor calls, deepcopy) —
  per-iteration allocation is the classic silent 10x;
- **H302** per-event observability calls anywhere in the region
  (``tracer.record/span``, ``.counter/.gauge/.histogram``, scalar
  ``.observe``) — publication belongs after the loop, in bulk
  (``observe_many`` and ``Tracer.add_source`` stay legal);
- **H303** f-string/%-formatted ``print``/logger calls — the formatting
  runs even when the log level is off;
- **H304** a dangling marker that attached to no statement.
"""

from __future__ import annotations

import ast
from typing import Iterator

from . import FileRule, register
from ..context import FileContext
from ..findings import Finding

_NP_ALLOCATORS = {"zeros", "ones", "empty", "full", "array", "arange",
                  "zeros_like", "ones_like", "empty_like", "full_like",
                  "eye", "identity", "tile", "repeat", "meshgrid"}
_BUILTIN_ALLOCATORS = {"list", "dict", "set", "bytearray"}
_OBS_METHODS = {"counter", "gauge", "histogram", "observe"}
_LOG_LEVELS = {"debug", "info", "warning", "error", "critical",
               "exception", "log"}


def _allocator_call(ctx: FileContext, node: ast.Call) -> str:
    dotted = ctx.imports.resolve(node.func)
    if dotted:
        if dotted.startswith("numpy.") \
                and dotted.split(".")[-1] in _NP_ALLOCATORS:
            return dotted
        if dotted in ("copy.deepcopy", "copy.copy"):
            return dotted
    if isinstance(node.func, ast.Name) \
            and node.func.id in _BUILTIN_ALLOCATORS:
        return node.func.id
    return ""


def _in_loop_body(ctx: FileContext, node: ast.AST, region) -> bool:
    cursor = ctx.parents.get(node)
    while cursor is not None:
        if isinstance(cursor, (ast.For, ast.While)) \
                and cursor.lineno >= region.start:
            # Being in the loop's iter/test is not "per iteration body"
            # for For (the iterable is evaluated once) — but any call
            # in a While test *does* run per iteration, so only For
            # iters are excused.
            if isinstance(cursor, ast.For) and _within(node, cursor.iter):
                cursor = ctx.parents.get(cursor)
                continue
            return True
        cursor = ctx.parents.get(cursor)
    return False


def _within(node: ast.AST, container: ast.AST) -> bool:
    return node is container or any(node is sub
                                    for sub in ast.walk(container))


def _hot_nodes(ctx: FileContext):
    for node in ast.walk(ctx.tree):
        line = getattr(node, "lineno", None)
        if line is not None and ctx.in_hot_region(line):
            yield node


@register
class HotLoopAllocation(FileRule):
    id = "H301"
    name = "hot-loop-allocation"
    summary = ("allocator call inside a loop body of a hot-loop region — "
               "hoist it out or preallocate")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in _hot_nodes(ctx):
            if not isinstance(node, ast.Call):
                continue
            what = _allocator_call(ctx, node)
            if not what:
                continue
            region = next(r for r in ctx.hot_regions
                          if node.lineno in r)
            if _in_loop_body(ctx, node, region):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"per-iteration allocation '{what}(...)' inside a "
                    f"hot loop; hoist or preallocate", node)


@register
class HotLoopObservability(FileRule):
    id = "H302"
    name = "hot-loop-observability"
    summary = ("per-event tracer/metric call inside a hot-loop region — "
               "publish in bulk after the loop (observe_many/add_source)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in _hot_nodes(ctx):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            from .metrics import _tracer_receiver
            if method in _OBS_METHODS or (
                    method in ("record", "span")
                    and _tracer_receiver(node.func.value)):
                yield self.finding(
                    ctx, node.lineno, node.col_offset,
                    f"per-event observability call '.{method}(...)' in a "
                    f"hot-loop region; keep native records and publish "
                    f"in bulk after the loop (observe_many / "
                    f"Tracer.add_source)", node)


@register
class HotLoopFStringLogging(FileRule):
    id = "H303"
    name = "hot-loop-fstring-logging"
    summary = ("eagerly-formatted print/log call in a hot-loop region — "
               "formatting runs every iteration even when silenced")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in _hot_nodes(ctx):
            if not isinstance(node, ast.Call):
                continue
            is_print = isinstance(node.func, ast.Name) \
                and node.func.id == "print"
            is_log = isinstance(node.func, ast.Attribute) \
                and node.func.attr in _LOG_LEVELS \
                and isinstance(node.func.value, (ast.Name, ast.Attribute))
            if not (is_print or is_log):
                continue
            for arg in node.args:
                formatted = isinstance(arg, ast.JoinedStr) or (
                    isinstance(arg, ast.BinOp)
                    and isinstance(arg.op, (ast.Mod, ast.Add))
                    and isinstance(arg.left, (ast.Constant, ast.JoinedStr)))
                if formatted:
                    yield self.finding(
                        ctx, node.lineno, node.col_offset,
                        "eagerly-formatted logging in a hot-loop region; "
                        "move it out of the region or defer formatting",
                        node)
                    break


@register
class DanglingHotLoopMarker(FileRule):
    id = "H304"
    name = "dangling-hot-loop-marker"
    summary = ("# reprolint: hot-loop attached to no def/for/while "
               "statement")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for line in ctx.dangling_markers:
            yield Finding(
                rule=self.id, path=ctx.relpath, line=line, col=0,
                message="hot-loop marker must sit on (or directly above) "
                        "a def/for/while statement",
                source_line=ctx.source_line(line))
