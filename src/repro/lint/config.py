"""Lint configuration: what to scan, where the contracts live.

The defaults encode this repository's layout (``src/`` package root,
``docs/metrics-manifest.json``, ``lint-baseline.json``); tests point
the same knobs at fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Tuple

__all__ = ["LintConfig", "METRIC_ROOTS", "METRIC_NAME_RE"]

import re

# The metric-namespace grammar (docs/observability.md): a known
# subsystem root, then >= 2 further dot-separated snake_case segments
# for metrics (subsystem.component.metric) and >= 1 for span categories
# (subsystem.kind).
METRIC_ROOTS: Tuple[str, ...] = ("serve", "search", "pim", "obs")
_SEGMENT = r"[a-z][a-z0-9_]*"
METRIC_NAME_RE = re.compile(
    rf"^(?:{'|'.join(METRIC_ROOTS)})(?:\.{_SEGMENT}){{2,}}$")
SPAN_CATEGORY_RE = re.compile(
    rf"^(?:{'|'.join(METRIC_ROOTS)})(?:\.{_SEGMENT}){{1,}}$")


@dataclass
class LintConfig:
    """Everything :func:`repro.lint.engine.run_lint` needs to know."""

    root: Path = field(default_factory=Path.cwd)
    paths: Sequence[str] = ("src",)
    select: Sequence[str] = ()          # rule-id prefixes; empty = all
    ignore: Sequence[str] = ()          # rule-id prefixes to drop
    baseline_path: Optional[str] = "lint-baseline.json"
    manifest_path: str = "docs/metrics-manifest.json"
    observability_doc: str = "docs/observability.md"
    # Docs scanned by C402 (flags referenced there must exist in code)
    # and the code trees whose ``add_argument`` calls define the flags.
    doc_globs: Sequence[str] = ("README.md", "docs/*.md")
    flag_source_globs: Sequence[str] = (
        "src/**/*.py", "benchmarks/*.py", "tools/*.py", "examples/*.py")
    # Flags documented but owned by external tools (never defined here).
    external_flags: Sequence[str] = ("--cov",)
    # A file is "deterministic-subsystem" when any of these appear in
    # its repo-relative path parts (D103/D104 scope).
    deterministic_parts: Sequence[str] = ("pim", "serve", "search",
                                          "scenarios")
    write_manifest: bool = False

    def resolve(self, rel: str) -> Path:
        return self.root / rel

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and not any(rule_id.startswith(p)
                                   for p in self.select):
            return False
        return not any(rule_id.startswith(p) for p in self.ignore)
