"""Magnitude-based element pruning.

Used two ways in the paper's ablation (Table 3):

- on its own inside PIM-Prune's pipeline (see
  :mod:`repro.baselines.pim_prune`), and
- combined with epitomes ("Epitome + Pruning"): the *epitome tensors*
  themselves are element-pruned, stacking the two compression mechanisms.

Pruned-parameter accounting follows the sparse-storage convention the
paper's Table 3 numbers imply: the surviving weights plus a bitmap index
overhead of 1/16 parameter-equivalent per original weight — which is why
50% pruning yields a ~1.8x (not 2.0x) parameter compression rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .. import nn
from ..core.layers import EpitomeConv2d

__all__ = [
    "INDEX_OVERHEAD",
    "magnitude_mask",
    "sparse_param_cost",
    "pruned_compression",
    "Pruner",
]

# Parameter-equivalent bookkeeping cost per original weight (bitmap index).
INDEX_OVERHEAD = 1.0 / 16.0


def magnitude_mask(weights: np.ndarray, ratio: float) -> np.ndarray:
    """Boolean keep-mask removing the ``ratio`` smallest-magnitude weights."""
    if not 0.0 <= ratio < 1.0:
        raise ValueError("prune ratio must be in [0, 1)")
    if ratio == 0.0:
        return np.ones(weights.shape, dtype=bool)
    flat = np.abs(weights).ravel()
    k = int(round(ratio * flat.size))
    if k == 0:
        return np.ones(weights.shape, dtype=bool)
    threshold = np.partition(flat, k - 1)[k - 1]
    mask = (np.abs(weights) > threshold).ravel()
    # Break ties deterministically so exactly ``size - k`` survive.
    deficit = (flat.size - k) - int(mask.sum())
    if deficit > 0:
        ties = np.flatnonzero(np.abs(weights).ravel() == threshold)
        mask[ties[:deficit]] = True
    return mask.reshape(weights.shape)


def sparse_param_cost(num_weights: int, kept: int) -> float:
    """Parameter-equivalent cost of a pruned tensor (survivors + bitmap)."""
    return kept + num_weights * INDEX_OVERHEAD


def pruned_compression(num_weights: int, kept: int) -> float:
    """Parameter compression rate after pruning, Table 3's metric."""
    return num_weights / sparse_param_cost(num_weights, kept)


@dataclass
class _Entry:
    param: nn.Parameter
    mask: np.ndarray


class Pruner:
    """Holds keep-masks for a model's weights and re-applies them.

    Magnitude pruning + fine-tuning: build masks once, zero the pruned
    weights, and call :meth:`apply` after every optimizer step (or epoch)
    so fine-tuning cannot resurrect pruned weights.

    ``scope`` selects what gets pruned:

    - ``"conv"`` — Conv2d weight tensors (the PIM-Prune regime),
    - ``"epitome"`` — epitome tensors (the "Epitome + Pruning" regime).

    ``structured`` switches conv pruning to PIM-Prune's crossbar-structured
    row-segment masks (see :func:`repro.baselines.pim_prune
    .structured_row_mask`) so the accuracy experiments prune the same
    patterns the hardware compaction rewards; ``block_cols`` is the
    crossbar column-block width used for the segments.
    """

    def __init__(self, model: nn.Module, ratio: float, scope: str = "conv",
                 structured: bool = False, block_cols: int = 64):
        if scope not in ("conv", "epitome"):
            raise ValueError("scope must be 'conv' or 'epitome'")
        if structured and scope != "conv":
            raise ValueError("structured pruning applies to conv scope only")
        self.ratio = ratio
        self.scope = scope
        self.structured = structured
        self._entries: List[_Entry] = []
        self._totals: Tuple[int, int] = (0, 0)

        total = 0
        kept = 0
        for _, module in model.named_modules():
            if scope == "conv" and type(module) is nn.Conv2d:
                param = module.weight
            elif scope == "epitome" and isinstance(module, EpitomeConv2d):
                param = module.epitome
            else:
                continue
            if structured:
                mask = self._structured_conv_mask(param.data, ratio,
                                                  block_cols)
            else:
                mask = magnitude_mask(param.data, ratio)
            self._entries.append(_Entry(param=param, mask=mask))
            total += param.data.size
            kept += int(mask.sum())
        if not self._entries:
            raise ValueError(f"model has no {scope!r} tensors to prune")
        self._totals = (total, kept)
        self.apply()

    @staticmethod
    def _structured_conv_mask(weight: np.ndarray, ratio: float,
                              block_cols: int) -> np.ndarray:
        """Crossbar-structured mask on a conv weight (co, ci, kh, kw).

        The weight is viewed in its crossbar layout (rows = ci*kh*kw,
        cols = co) and whole row segments are pruned per column block —
        the pattern PIM-Prune's compaction exploits.
        """
        from .pim_prune import structured_row_mask
        from ..pim.config import DEFAULT_CONFIG
        co = weight.shape[0]
        matrix = weight.reshape(co, -1).T          # (ci*kh*kw, co)
        config = DEFAULT_CONFIG.with_(
            xbar_rows=min(DEFAULT_CONFIG.xbar_rows, block_cols * 4),
            xbar_cols=block_cols,
            adc_share=min(DEFAULT_CONFIG.adc_share, block_cols))
        mask = structured_row_mask(matrix, ratio, config)
        return mask.T.reshape(weight.shape)

    def apply(self) -> None:
        """Zero every pruned weight (idempotent)."""
        for entry in self._entries:
            entry.param.data = entry.param.data * entry.mask

    @property
    def num_weights(self) -> int:
        return self._totals[0]

    @property
    def num_kept(self) -> int:
        return self._totals[1]

    @property
    def sparsity(self) -> float:
        return 1.0 - self.num_kept / max(self.num_weights, 1)

    @property
    def compression(self) -> float:
        """Parameter compression of the pruned tensors (with index cost)."""
        return pruned_compression(self.num_weights, self.num_kept)

    def masks(self) -> List[np.ndarray]:
        return [entry.mask for entry in self._entries]
