"""repro.baselines — comparison methods reproduced from the literature.

- :mod:`repro.baselines.pim_prune` — PIM-Prune (Chu et al., DAC 2020),
  the crossbar-aware pruning framework the paper benchmarks against;
- :mod:`repro.baselines.element_prune` — magnitude element pruning, used
  standalone and stacked with epitomes (Table 3).
"""

from .element_prune import (
    INDEX_OVERHEAD,
    Pruner,
    magnitude_mask,
    pruned_compression,
    sparse_param_cost,
)
from .pim_prune import (
    PimPruneResult,
    PrunedLayerResult,
    compact_crossbar_count,
    pim_prune_network,
    structured_row_mask,
)

__all__ = [
    "INDEX_OVERHEAD",
    "magnitude_mask",
    "sparse_param_cost",
    "pruned_compression",
    "Pruner",
    "compact_crossbar_count",
    "structured_row_mask",
    "PrunedLayerResult",
    "PimPruneResult",
    "pim_prune_network",
]
