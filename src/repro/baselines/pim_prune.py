"""PIM-Prune reproduction (Chu et al., DAC 2020) — the paper's baseline.

PIM-Prune performs fine-grained magnitude pruning and then *compacts* the
sparse weight matrix onto crossbars: rows and columns are permuted so that
surviving weights cluster into dense regions, all-zero rows/columns inside
each crossbar block are squeezed out, and the resulting smaller crossbar
grid is the hardware win.  (``"Due to challenges in determining the
crossbar compression rate with pruning, we compare parameter compression
rates"`` — Table 3; Table 1 quotes its crossbar CR as reported.)

Our reproduction implements the whole flow on real matrices:

1. magnitude masks at a target ratio (:mod:`repro.baselines.element_prune`),
2. greedy row/column clustering: rows sorted by surviving-weight count are
   packed into crossbar row groups; within each group, columns with no
   survivors are dropped (the permutation freedom PIM-Prune's ADMM
   machinery buys, approximated greedily),
3. crossbar counting on the compacted layout.

Both the *parameter* CR (Table 3) and the *crossbar* CR (Table 1) come out
of this machinery, and the accuracy side reuses the shared
:class:`~repro.baselines.element_prune.Pruner` + fine-tuning recipe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..models.specs import NetworkSpec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from .element_prune import pruned_compression

__all__ = [
    "structured_row_mask",
    "compact_crossbar_count",
    "PrunedLayerResult",
    "PimPruneResult",
    "pim_prune_network",
]


def structured_row_mask(matrix: np.ndarray, ratio: float,
                        config: HardwareConfig = DEFAULT_CONFIG) -> np.ndarray:
    """PIM-Prune's crossbar-structured mask: prune whole row *segments*.

    The matrix is tiled into crossbar-column blocks (``xbar_cols`` logical
    columns wide).  Within each block every row forms a segment; segments
    are ranked globally by L1 norm and the lowest ``ratio`` fraction is
    removed entirely.  Zeroing whole segments (instead of scattered
    elements) is what makes the sparsity *compactable* onto fewer
    crossbars — the core idea of PIM-Prune's fine-grained-but-structured
    patterns (their ADMM-learned permutations approximated by magnitude
    ranking here).
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError("prune ratio must be in [0, 1)")
    rows, cols = matrix.shape
    block = config.xbar_cols
    n_blocks = math.ceil(cols / block)
    # Segment scores: (rows, n_blocks) L1 norms.
    scores = np.zeros((rows, n_blocks))
    for b in range(n_blocks):
        seg = matrix[:, b * block:(b + 1) * block]
        scores[:, b] = np.abs(seg).sum(axis=1)
    k = int(round(ratio * scores.size))
    mask = np.ones(matrix.shape, dtype=bool)
    if k == 0:
        return mask
    threshold = np.partition(scores.ravel(), k - 1)[k - 1]
    drop = scores <= threshold
    # Keep exactly the right count when ties straddle the threshold.
    excess = int(drop.sum()) - k
    if excess > 0:
        tie_positions = np.argwhere(scores == threshold)
        for r, b in tie_positions[:excess]:
            drop[r, b] = False
    for b in range(n_blocks):
        rows_dropped = drop[:, b]
        mask[rows_dropped, b * block:(b + 1) * block] = False
    return mask


def compact_crossbar_count(mask: np.ndarray, weight_bits: int,
                           config: HardwareConfig = DEFAULT_CONFIG) -> int:
    """Crossbars needed for a pruned matrix after per-block compaction.

    Each crossbar-column block packs its *surviving* row segments
    independently (PIM-Prune's permutation freedom): within a block, rows
    whose segment was pruned are squeezed out, and the remaining segments
    fill ``ceil(survivors / xbar_rows)`` arrays.  Column blocks wider than
    one array due to bit slicing are accounted per slice group.
    """
    slices = config.slices_for(weight_bits)
    rows, cols = mask.shape
    logical_block = max(1, config.xbar_cols // slices)
    crossbars = 0
    for start in range(0, cols, logical_block):
        seg = mask[:, start:start + logical_block]
        survivors = int(seg.any(axis=1).sum())
        if survivors == 0:
            continue
        crossbars += math.ceil(survivors / config.xbar_rows)
    return crossbars


@dataclass
class PrunedLayerResult:
    """Per-layer outcome of PIM-Prune."""

    name: str
    num_weights: int
    kept: int
    crossbars_before: int
    crossbars_after: int

    @property
    def param_compression(self) -> float:
        return pruned_compression(self.num_weights, self.kept)

    @property
    def crossbar_compression(self) -> float:
        if self.crossbars_after == 0:
            return float("inf")
        return self.crossbars_before / self.crossbars_after


@dataclass
class PimPruneResult:
    """Network-level outcome of PIM-Prune at one ratio."""

    ratio: float
    layers: List[PrunedLayerResult]

    @property
    def num_weights(self) -> int:
        return sum(layer.num_weights for layer in self.layers)

    @property
    def kept(self) -> int:
        return sum(layer.kept for layer in self.layers)

    @property
    def param_compression(self) -> float:
        return pruned_compression(self.num_weights, self.kept)

    @property
    def crossbars(self) -> int:
        return sum(layer.crossbars_after for layer in self.layers)

    @property
    def crossbar_compression(self) -> float:
        before = sum(layer.crossbars_before for layer in self.layers)
        after = self.crossbars
        return before / after if after else float("inf")


def pim_prune_network(spec: NetworkSpec, ratio: float,
                      weight_bits: Optional[int] = None,
                      config: HardwareConfig = DEFAULT_CONFIG,
                      seed: int = 0,
                      weights: Optional[Dict[str, np.ndarray]] = None
                      ) -> PimPruneResult:
    """Apply PIM-Prune to a shape-level network.

    When trained ``weights`` (name -> matrix) are not supplied, layer
    matrices are drawn from a seeded Gaussian — magnitude pruning of
    Gaussian weights produces the same *structural* sparsity patterns
    (uniformly scattered survivors), which is what the compaction results
    depend on.  Accuracy is *not* computed here (that is the runnable-model
    path in the Table 3 experiment).
    """
    rng = np.random.default_rng(seed)
    bits = weight_bits if weight_bits is not None else config.fp_equivalent_bits
    layers: List[PrunedLayerResult] = []
    for layer in spec:
        rows, cols = layer.weight_rows, layer.weight_cols
        if weights is not None and layer.name in weights:
            matrix = weights[layer.name]
            if matrix.shape != (rows, cols):
                raise ValueError(
                    f"weights for {layer.name!r} have shape {matrix.shape}, "
                    f"expected {(rows, cols)}")
        else:
            matrix = rng.standard_normal((rows, cols))
        mask = structured_row_mask(matrix, ratio, config)
        before = (math.ceil(rows / config.xbar_rows)
                  * math.ceil(cols * config.slices_for(bits) / config.xbar_cols))
        after = compact_crossbar_count(mask, bits, config)
        layers.append(PrunedLayerResult(
            name=layer.name, num_weights=rows * cols, kept=int(mask.sum()),
            crossbars_before=before, crossbars_after=after))
    return PimPruneResult(ratio=ratio, layers=layers)
