"""HAWQ-style Hessian-aware mixed-precision bit allocation.

The paper integrates HAWQ [Dong et al., ICCV 2019] to produce its
mixed-precision rows (Table 1, "W3mpA9": 3-5 bit weights).  HAWQ ranks
layers by their Hessian sensitivity and gives more bits to sensitive
layers under a global size budget.

HAWQ needs per-layer Hessian *trace* estimates.  The reference
implementation uses double-backward Hessian-vector products; our autograd
is single-backward, so we use the mathematically equivalent
finite-difference HVP (a standard substitution, see DESIGN.md):

    H v  ~=  (grad(w + eps*v) - grad(w - eps*v)) / (2*eps)

combined with Hutchinson's estimator ``trace(H) = E_v[v^T H v]`` over
Rademacher vectors ``v``.  Bit allocation is then the HAWQ-V2 greedy rule:
start everything at the highest candidate precision and repeatedly demote
the layer with the smallest *sensitivity increase per crossbar saved*
until the budget is met.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn

__all__ = [
    "LayerSensitivity",
    "hutchinson_trace",
    "layer_sensitivities",
    "allocate_bits",
]


@dataclass
class LayerSensitivity:
    """Hessian-trace sensitivity of one parameter tensor."""

    name: str
    trace: float
    num_params: int

    @property
    def normalized_trace(self) -> float:
        """Average trace per parameter (HAWQ-V2's ranking statistic)."""
        return self.trace / max(self.num_params, 1)


def _flat_grads(params: Sequence[nn.Parameter]) -> List[np.ndarray]:
    grads = []
    for param in params:
        if param.grad is None:
            grads.append(np.zeros_like(param.data))
        else:
            grads.append(param.grad.copy())
    return grads


def hutchinson_trace(loss_fn: Callable[[], nn.Tensor],
                     params: Sequence[nn.Parameter],
                     n_samples: int = 8,
                     eps: float = 1e-3,
                     rng: Optional[np.random.Generator] = None
                     ) -> List[float]:
    """Estimate ``trace(H)`` per parameter tensor via Hutchinson + FD-HVP.

    Parameters
    ----------
    loss_fn:
        Zero-argument callable that recomputes the training loss on a fixed
        batch (so finite differences see a deterministic function).
    params:
        The parameter tensors to estimate traces for.
    n_samples:
        Rademacher probe vectors per tensor.
    eps:
        Finite-difference step, scaled per-tensor by the parameter RMS.

    Returns
    -------
    list of float
        One trace estimate per input tensor.
    """
    generator = rng if rng is not None else np.random.default_rng(0)
    traces = [0.0 for _ in params]
    originals = [param.data.copy() for param in params]

    for _ in range(n_samples):
        probes = [generator.choice([-1.0, 1.0], size=param.data.shape
                                   ).astype(param.data.dtype)
                  for param in params]
        steps = [eps * max(float(np.sqrt((orig ** 2).mean())), 1e-8)
                 for orig in originals]

        for param, orig, probe, step in zip(params, originals, probes, steps):
            param.data = orig + step * probe
        for param in params:
            param.grad = None
        loss_fn().backward()
        grads_plus = _flat_grads(params)

        for param, orig, probe, step in zip(params, originals, probes, steps):
            param.data = orig - step * probe
        for param in params:
            param.grad = None
        loss_fn().backward()
        grads_minus = _flat_grads(params)

        for i, (probe, step) in enumerate(zip(probes, steps)):
            hv = (grads_plus[i] - grads_minus[i]) / (2.0 * step)
            traces[i] += float((probe * hv).sum())

    for param, orig in zip(params, originals):
        param.data = orig
        param.grad = None
    return [trace / n_samples for trace in traces]


def layer_sensitivities(model: nn.Module,
                        loss_fn: Callable[[], nn.Tensor],
                        param_filter: Optional[Callable[[str], bool]] = None,
                        n_samples: int = 8,
                        rng: Optional[np.random.Generator] = None
                        ) -> List[LayerSensitivity]:
    """Per-layer Hessian-trace sensitivities of a model's weight tensors."""
    named = [(name, param) for name, param in model.named_parameters()
             if param_filter is None or param_filter(name)]
    if not named:
        raise ValueError("param_filter excluded every parameter")
    names = [name for name, _ in named]
    params = [param for _, param in named]
    traces = hutchinson_trace(loss_fn, params, n_samples=n_samples, rng=rng)
    return [LayerSensitivity(name=name, trace=max(trace, 0.0),
                             num_params=param.data.size)
            for name, param, trace in zip(names, params, traces)]


def allocate_bits(sensitivities: Sequence[LayerSensitivity],
                  candidate_bits: Sequence[int],
                  cost_fn: Callable[[str, int], float],
                  budget: float) -> Dict[str, int]:
    """Assign per-layer bit widths under a hardware budget (HAWQ-V2 greedy).

    Every layer starts at ``max(candidate_bits)``.  While the total cost
    (e.g. crossbars, from ``cost_fn(layer, bits)``) exceeds ``budget``, the
    layer whose demotion to the next lower precision costs the least
    *sensitivity per unit of hardware saved* is demoted.

    The quantization perturbation model follows HAWQ-V2: demoting a layer
    from ``b1`` to ``b2`` bits increases expected loss by approximately
    ``trace * (delta(b2)^2 - delta(b1)^2)`` with ``delta(b) ~ 2^-b``.

    Returns
    -------
    dict name -> bits
        The chosen precision per layer.  Raises ``RuntimeError`` if even
        the lowest precision everywhere cannot meet the budget.
    """
    bits_sorted = sorted(set(candidate_bits), reverse=True)
    if not bits_sorted:
        raise ValueError("candidate_bits is empty")
    current: Dict[str, int] = {s.name: bits_sorted[0] for s in sensitivities}
    sens_map = {s.name: s for s in sensitivities}

    def total_cost() -> float:
        return sum(cost_fn(name, bits) for name, bits in current.items())

    def perturbation(name: str, bits: int) -> float:
        delta = 2.0 ** (-bits)
        return sens_map[name].trace * delta * delta

    while total_cost() > budget:
        best_choice: Optional[Tuple[str, int]] = None
        best_ratio = np.inf
        for name, bits in current.items():
            idx = bits_sorted.index(bits)
            if idx + 1 >= len(bits_sorted):
                continue
            lower = bits_sorted[idx + 1]
            saved = cost_fn(name, bits) - cost_fn(name, lower)
            if saved <= 0:
                continue
            harm = perturbation(name, lower) - perturbation(name, bits)
            ratio = harm / saved
            if ratio < best_ratio:
                best_ratio = ratio
                best_choice = (name, lower)
        if best_choice is None:
            raise RuntimeError(
                "cannot meet the budget even at the lowest candidate precision")
        current[best_choice[0]] = best_choice[1]
    return current
