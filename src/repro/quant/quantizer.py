"""Uniform affine quantization (paper section 2.3, Eqs. 2-3).

The quantizer maps a real value ``r`` to an integer with a scaling factor
``S`` and zero point ``Z``:

    Q(r) = Int(r / S) - Z,       S = (beta - alpha) / (2^k - 1)

where ``[alpha, beta]`` is the clipping range.  This module provides the
numpy-level quantize/dequantize kernels, the straight-through-estimator
(STE) fake-quant ops used during quantization-aware training, and the
per-group variant (one ``S``/``Z`` per group of elements) on which the
paper's per-crossbar scaling factors (section 4.2) are built.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.tensor import Tensor

__all__ = [
    "QuantParams",
    "compute_qparams",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "fake_quantize_per_group",
]


@dataclass(frozen=True)
class QuantParams:
    """Scale/zero-point pair for ``bits``-bit quantization.

    ``signed`` selects the integer grid: ``[-2^(b-1), 2^(b-1)-1]`` for
    weights, ``[0, 2^b - 1]`` for (post-ReLU) activations.
    """

    scale: float
    zero_point: int
    bits: int
    signed: bool = True

    @property
    def qmin(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1


def compute_qparams(range_min: float, range_max: float, bits: int,
                    signed: bool = True) -> QuantParams:
    """Derive scale and zero point from a clipping range (Eq. 3).

    For signed (weight) quantization the range is symmetrised around zero,
    the standard choice for crossbar mapping where positive/negative
    conductances are balanced; for unsigned (activation) quantization the
    affine form with a zero point is used.
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if range_max < range_min:
        raise ValueError("range_max must be >= range_min")
    if signed:
        bound = max(abs(range_min), abs(range_max), 1e-12)
        qmax = (1 << (bits - 1)) - 1
        scale = bound / qmax
        return QuantParams(scale=scale, zero_point=0, bits=bits, signed=True)
    span = max(range_max - range_min, 1e-12)
    qmax = (1 << bits) - 1
    scale = span / qmax
    zero_point = int(round(range_min / scale))
    return QuantParams(scale=scale, zero_point=zero_point, bits=bits,
                       signed=False)


def quantize_array(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Real -> integer grid (Eq. 2), clipped to the representable range."""
    q = np.rint(values / params.scale) - params.zero_point
    return np.clip(q, params.qmin, params.qmax).astype(np.int64)


def dequantize_array(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Integer grid -> real."""
    return ((q.astype(np.float64) + params.zero_point) * params.scale)


def fake_quantize(x: Tensor, params: QuantParams) -> Tensor:
    """Quantize-dequantize with a straight-through estimator.

    Forward: ``dequantize(quantize(x))``.  Backward: identity inside the
    clipping range, zero outside (the standard STE used for QAT).
    """
    scale = params.scale
    zp = params.zero_point
    q = np.rint(x.data / scale) - zp
    clipped = np.clip(q, params.qmin, params.qmax)
    out_data = ((clipped + zp) * scale).astype(x.data.dtype)
    pass_mask = (q >= params.qmin) & (q <= params.qmax)
    return Tensor._make(out_data, (x,), lambda g: (g * pass_mask,))


def fake_quantize_per_group(x: Tensor, scales: np.ndarray,
                            group_ids: np.ndarray, bits: int,
                            signed: bool = True) -> Tensor:
    """Fake-quantize with one scale per element group (STE backward).

    Parameters
    ----------
    x:
        Input tensor (e.g. an epitome).
    scales:
        1-D array of per-group scales, indexed by ``group_ids``.
    group_ids:
        Integer array of ``x``'s shape assigning every element to a group
        (e.g. its crossbar).
    bits / signed:
        Integer grid selection (zero point fixed at 0 — weights are
        symmetric on crossbars).
    """
    if group_ids.shape != x.data.shape:
        raise ValueError("group_ids must match the tensor shape")
    qmin = -(1 << (bits - 1)) if signed else 0
    qmax = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
    elem_scale = scales[group_ids]
    q = np.rint(x.data / elem_scale)
    clipped = np.clip(q, qmin, qmax)
    out_data = (clipped * elem_scale).astype(x.data.dtype)
    pass_mask = (q >= qmin) & (q <= qmax)
    return Tensor._make(out_data, (x,), lambda g: (g * pass_mask,))
