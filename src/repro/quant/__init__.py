"""repro.quant — quantization substrate (Eqs. 2-3) and HAWQ mixed precision.

The *epitome-aware* quantization of the paper (per-crossbar scaling factors
and overlap-weighted ranges, Eqs. 4-5) builds on these primitives and lives
in :mod:`repro.core.equant`.
"""

from .hawq import LayerSensitivity, allocate_bits, hutchinson_trace, layer_sensitivities
from .observer import MinMaxObserver, MovingAverageObserver, PercentileObserver
from .quantizer import (
    QuantParams,
    compute_qparams,
    dequantize_array,
    fake_quantize,
    fake_quantize_per_group,
    quantize_array,
)

__all__ = [
    "QuantParams",
    "compute_qparams",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "fake_quantize_per_group",
    "MinMaxObserver",
    "MovingAverageObserver",
    "PercentileObserver",
    "LayerSensitivity",
    "hutchinson_trace",
    "layer_sensitivities",
    "allocate_bits",
]
