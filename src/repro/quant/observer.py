"""Range observers for quantization.

Observers watch tensors flowing through the network and decide the clipping
range ``[alpha, beta]`` of Eq. 3.  Min/max is the paper's stated baseline
choice; the moving-average and percentile observers are the standard
alternatives used for activations during QAT.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["MinMaxObserver", "MovingAverageObserver", "PercentileObserver"]


class MinMaxObserver:
    """Tracks the running min/max over every observed batch."""

    def __init__(self):
        self.range_min: Optional[float] = None
        self.range_max: Optional[float] = None

    def observe(self, values: np.ndarray) -> None:
        lo = float(values.min())
        hi = float(values.max())
        self.range_min = lo if self.range_min is None else min(self.range_min, lo)
        self.range_max = hi if self.range_max is None else max(self.range_max, hi)

    @property
    def ready(self) -> bool:
        return self.range_min is not None

    def range(self) -> Tuple[float, float]:
        if not self.ready:
            raise RuntimeError("observer has seen no data")
        return self.range_min, self.range_max


class MovingAverageObserver:
    """Exponential moving average of per-batch min/max (smoother for QAT)."""

    def __init__(self, momentum: float = 0.9):
        self.momentum = momentum
        self.range_min: Optional[float] = None
        self.range_max: Optional[float] = None

    def observe(self, values: np.ndarray) -> None:
        lo = float(values.min())
        hi = float(values.max())
        if self.range_min is None:
            self.range_min, self.range_max = lo, hi
        else:
            m = self.momentum
            self.range_min = m * self.range_min + (1.0 - m) * lo
            self.range_max = m * self.range_max + (1.0 - m) * hi

    @property
    def ready(self) -> bool:
        return self.range_min is not None

    def range(self) -> Tuple[float, float]:
        if not self.ready:
            raise RuntimeError("observer has seen no data")
        return self.range_min, self.range_max


class PercentileObserver:
    """Clips outliers by tracking a percentile of the absolute values."""

    def __init__(self, percentile: float = 99.9):
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        self.percentile = percentile
        self.range_min: Optional[float] = None
        self.range_max: Optional[float] = None

    def observe(self, values: np.ndarray) -> None:
        hi = float(np.percentile(values, self.percentile))
        lo = float(np.percentile(values, 100.0 - self.percentile))
        self.range_min = lo if self.range_min is None else min(self.range_min, lo)
        self.range_max = hi if self.range_max is None else max(self.range_max, hi)

    @property
    def ready(self) -> bool:
        return self.range_min is not None

    def range(self) -> Tuple[float, float]:
        if not self.ready:
            raise RuntimeError("observer has seen no data")
        return self.range_min, self.range_max
