"""Top-level experiment runners — one function per paper table/figure.

Each runner returns structured data *and* prints a paper-style table via
:mod:`repro.analysis.tables`, so the benchmark harness
(``benchmarks/bench_table*.py`` / ``bench_figure*.py``) and EXPERIMENTS.md
share one source of truth.

Hardware columns are exact (full-size ResNet-50/101 shapes); accuracy
columns come from the synthetic-task workbench at a chosen preset (see
:mod:`repro.analysis.accuracy` and DESIGN.md section 2 on the ImageNet
substitution).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .accuracy import PRESETS, AccuracyPreset, AccuracyWorkbench
from .hardware import (
    Figure4Point,
    HardwareRow,
    figure3_rows,
    figure4_series,
    table1_hardware_rows,
)
from .tables import Table, series_block
from ..models.specs import get_network_spec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..search import (
    EvoSearchConfig,
    GridBuildStats,
    GridCache,
    ParetoPoint,
    SearchResult,
    build_candidate_grid,
    evaluate_assignment,
    evolution_search,
    uniform_budget,
)

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure3",
    "run_figure4",
    "run_search",
    "run_search_then_serve",
    "SearchRunResult",
    "SearchThenServeResult",
    "PRESETS",
]


@dataclass
class Table1Result:
    hardware_rows: List[HardwareRow]
    accuracy: Dict[str, float]
    rendered: str


def run_table1(model_name: str = "resnet50",
               preset: AccuracyPreset = PRESETS["default"],
               with_accuracy: bool = True,
               workbench: Optional[AccuracyWorkbench] = None,
               verbose: bool = True) -> Table1Result:
    """Regenerate Table 1 (hardware columns exact; accuracy from the
    synthetic workbench, reported as the accuracy *of this substrate*)."""
    rows = table1_hardware_rows(model_name)

    accuracy: Dict[str, float] = {}
    if with_accuracy:
        bench = workbench or AccuracyWorkbench(preset)
        _, accuracy["FP32 baseline"] = bench.baseline()
        _, accuracy["EPIM FP32"] = bench.epitome_fp()
        accuracy["EPIM W9A9"] = bench.quantized_accuracy(9)
        accuracy["EPIM W7A9"] = bench.quantized_accuracy(7)
        accuracy["EPIM W5A9"] = bench.quantized_accuracy(5)
        bit_map = bench.hawq_bit_map()
        accuracy["EPIM W3mpA9"] = bench.quantized_accuracy(
            3, bit_map=bit_map, cache_key="quant-3mp")
        accuracy["EPIM W3A9"] = bench.quantized_accuracy(3)
        acc_prune, _ = bench.pruned_baseline_accuracy(0.5)
        accuracy["PIM-Prune"] = acc_prune

    def acc_for(row: HardwareRow) -> Optional[float]:
        mapping = {
            ("FP32", False): "FP32 baseline",
            ("FP32", True): "EPIM FP32",
            ("W9A9", True): "EPIM W9A9",
            ("W7A9", True): "EPIM W7A9",
            ("W5A9", True): "EPIM W5A9",
            ("W3mpA9", True): "EPIM W3mpA9",
            ("W3A9", True): "EPIM W3A9",
        }
        if row.model.startswith("PIM-Prune"):
            return accuracy.get("PIM-Prune")
        if "Opt" in row.model:
            return accuracy.get("EPIM W9A9")
        key = (row.bitwidth, row.model.startswith("EPIM"))
        name = mapping.get(key)
        return accuracy.get(name) if name else None

    table = Table(
        ["Model", "Bitwidth", "Epitome", "Accuracy(%)", "#XBs", "CR of XBs",
         "Latency(ms)", "Energy(mJ)", "Utilization(%)"],
        title=f"Table 1 — {model_name} on PIM "
              f"(accuracy: synthetic substrate{'' if with_accuracy else ' skipped'})")
    for row in rows:
        record = row.as_dict()
        acc = acc_for(row)
        table.add_row(record["Model"], record["Bitwidth"], record["Epitome"],
                      acc * 100 if acc is not None else None,
                      record["#XBs"], record["CR of XBs"],
                      record["Latency(ms)"], record["Energy(mJ)"],
                      record["Utilization(%)"])
    rendered = table.render()
    if verbose:
        print(rendered)
    return Table1Result(hardware_rows=rows, accuracy=accuracy,
                        rendered=rendered)


@dataclass
class Table2Result:
    accuracies: Dict[Tuple[str, str], float]   # (scenario, mode) -> accuracy
    ptq_accuracies: Dict[str, float]           # mode -> PTQ accuracy
    rendered: str


def run_table2(preset: AccuracyPreset = PRESETS["default"],
               workbench: Optional[AccuracyWorkbench] = None,
               ptq_bits: int = 3,
               verbose: bool = True) -> Table2Result:
    """Regenerate Table 2: the quantization ablation.

    Columns: naive quant -> + per-crossbar scales -> + overlap weighting;
    rows: 3-bit uniform and 3-5-bit mixed precision (QAT fine-tuned, like
    the paper's retrained models), plus a post-training-quantization row at
    ``ptq_bits`` where the range-setting mechanism shows without QAT
    recovery masking it.
    """
    bench = workbench or AccuracyWorkbench(preset)
    modes = [("naive", "Naive Quant"),
             ("crossbar", "+ Adjust with Crossbars"),
             ("crossbar_overlap", "+ Adjusted with Overlap")]
    accuracies: Dict[Tuple[str, str], float] = {}
    ptq: Dict[str, float] = {}

    bit_map = bench.hawq_bit_map()
    for mode, _label in modes:
        accuracies[("3-bit", mode)] = bench.quantized_accuracy(
            3, mode=mode, cache_key=f"t2-3bit-{mode}")
        accuracies[("3-5 bit", mode)] = bench.quantized_accuracy(
            3, mode=mode, bit_map=bit_map, cache_key=f"t2-mp-{mode}")
        ptq[mode] = bench.ptq_accuracy(ptq_bits, mode=mode)

    table = Table(["Model", *[label for _, label in modes]],
                  title="Table 2 — epitome quantization ablation "
                        "(accuracy %, synthetic substrate)")
    for scenario in ("3-bit", "3-5 bit"):
        table.add_row(f"ResNet-20-epitome ({scenario}, QAT)",
                      *[accuracies[(scenario, mode)] * 100
                        for mode, _ in modes])
    table.add_row(f"ResNet-20-epitome ({ptq_bits}-bit, PTQ)",
                  *[ptq[mode] * 100 for mode, _ in modes])
    rendered = table.render()
    if verbose:
        print(rendered)
    return Table2Result(accuracies=accuracies, ptq_accuracies=ptq,
                        rendered=rendered)


@dataclass
class Table3Result:
    rows: List[Dict[str, float]]
    rendered: str


def run_table3(preset: AccuracyPreset = PRESETS["default"],
               workbench: Optional[AccuracyWorkbench] = None,
               prune_ratio: float = 0.5,
               gentle_epitome: Tuple[int, int] = (256, 64),
               verbose: bool = True) -> Table3Result:
    """Regenerate Table 3: epitome vs epitome+pruning vs PIM-Prune.

    The epitome here uses a *gentler* budget than Table 1's so its
    parameter compression (~1.7-2x) matches PIM-Prune 50%'s (~1.8x) — the
    paper's comparison is at matched compression (2.25x vs 1.80x).
    Parameter compression rates are computed the same way as the paper
    (epitome virtual/actual; pruning survivors + index overhead).
    """
    bench = workbench or AccuracyWorkbench(preset)
    rows: List[Dict[str, float]] = []

    _, ep_acc = bench.epitome_fp(rows_cols=gentle_epitome,
                                 cache_key=f"epitome_fp-{gentle_epitome}")
    rows.append({"Method": "Epitome",
                 "Accuracy(%)": ep_acc * 100,
                 "Compress. Rate":
                     bench.epitome_param_compression(gentle_epitome)})

    acc, cr = bench.epitome_pruned_accuracy(prune_ratio,
                                            rows_cols=gentle_epitome)
    rows.append({"Method": f"Epitome + Pruning {int(prune_ratio*100)}%",
                 "Accuracy(%)": acc * 100, "Compress. Rate": cr})

    acc50, cr50 = bench.pruned_baseline_accuracy(0.5)
    rows.append({"Method": "PIM-Prune 50%", "Accuracy(%)": acc50 * 100,
                 "Compress. Rate": cr50})
    acc75, cr75 = bench.pruned_baseline_accuracy(0.75)
    rows.append({"Method": "PIM-Prune 75%", "Accuracy(%)": acc75 * 100,
                 "Compress. Rate": cr75})

    table = Table(["Method", "Accuracy(%)", "Compress. Rate"],
                  title="Table 3 — epitome vs pruning "
                        "(accuracy %, synthetic substrate; param CR)")
    for row in rows:
        table.add_dict_row(row)
    rendered = table.render()
    if verbose:
        print(rendered)
    return Table3Result(rows=rows, rendered=rendered)


@dataclass
class Figure3Result:
    rows: list
    rendered: str


def run_figure3(model_name: str = "resnet50", verbose: bool = True
                ) -> Figure3Result:
    """Regenerate Figure 3: per-layer params/latency/energy, conv vs epitome."""
    rows = figure3_rows(model_name)
    table = Table(["Layer", "Params(k) conv", "Params(k) epitome",
                   "Latency(ms) conv", "Latency(ms) epitome",
                   "Energy(0.1mJ) conv", "Energy(0.1mJ) epitome"],
                  title=f"Figure 3 — per-layer cost, {model_name} "
                        "(paper layers 9/41/67 mapped to shape equivalents)")
    for row in rows:
        table.add_row(f"L{row.paper_index} ({row.layer_name})",
                      row.conv_params_k, row.epitome_params_k,
                      row.conv_latency_ms, row.epitome_latency_ms,
                      row.conv_energy_01mj, row.epitome_energy_01mj)
    rendered = table.render()
    if verbose:
        print(rendered)
    return Figure3Result(rows=rows, rendered=rendered)


@dataclass
class SearchRunResult:
    """Output of :func:`run_search` — one design-space search run."""

    model: str
    objective: str
    budget: int
    baseline_crossbars: int
    design_space_size: int
    result: SearchResult
    front: Optional[List[ParetoPoint]]
    rendered: str
    grid_stats: Optional[GridBuildStats] = None
    """Grid construction accounting (build seconds, dedup ratio, cache
    hit/miss counts) — surfaced by ``repro search --json``."""
    layers: Optional[List[str]] = None
    """Layer names in genome order — the key the serving deployment loader
    uses to rebuild per-layer assignments from serialized genomes."""
    weight_bits: Optional[int] = 9
    activation_bits: Optional[int] = 9
    use_wrapping: bool = True


def run_search(model_name: str = "resnet50",
               objective: str = "latency",
               budget: Optional[int] = None,
               budget_fraction: float = 0.78,
               search: EvoSearchConfig = EvoSearchConfig(),
               weight_bits: Optional[int] = 9,
               activation_bits: Optional[int] = 9,
               use_wrapping: bool = True,
               uniform_rows: int = 1024, uniform_cols: int = 256,
               config: HardwareConfig = DEFAULT_CONFIG,
               lut: ComponentLUT = DEFAULT_LUT,
               grid_workers: Optional[int] = None,
               grid_cache: Optional[GridCache] = None,
               verbose: bool = True) -> SearchRunResult:
    """Run the section 5.2 design-space search end to end and render it.

    The crossbar budget defaults to ``budget_fraction`` of the uniform
    ``uniform_rows x uniform_cols`` design's demand — the same convention
    as Table 1's "-Opt" rows.  ``objective="pareto"`` renders the whole
    latency x energy x crossbars front; scalar objectives render the
    single best design next to the no-epitome baseline.

    ``grid_workers`` (default: ``search.workers``) shards candidate-grid
    construction across processes; ``grid_cache`` serves and stores
    per-(signature, candidate) simulation results on disk so repeat
    sweeps — the "re-search after a hardware-config tweak" loop — skip
    grid construction almost entirely.
    """
    spec = get_network_spec(model_name)
    grid = build_candidate_grid(spec, weight_bits=weight_bits,
                                activation_bits=activation_bits,
                                use_wrapping=use_wrapping,
                                config=config, lut=lut,
                                workers=(grid_workers if grid_workers
                                         is not None else search.workers),
                                cache=grid_cache)
    baseline = evaluate_assignment(grid, [None] * len(spec), lut)
    if budget is None:
        budget = uniform_budget(grid, uniform_rows, uniform_cols,
                                budget_fraction, lut)

    result = evolution_search(grid, budget,
                              replace(search, objective=objective), lut)

    header = (f"Design-space search — {spec.name}, objective={objective}, "
              f"budget={budget} XBs "
              f"({grid.design_space_size:.2e} combinations)")
    columns = ["Design", "#XBs", "CR of XBs", "Latency(ms)", "Energy(mJ)",
               "EDP", "Feasible"]
    table = Table(columns, title=header)

    def add_row(label: str, ev, feasible: bool) -> None:
        table.add_row(label, ev.crossbars,
                      baseline.crossbars / max(ev.crossbars, 1),
                      ev.latency_ms, ev.energy_mj, ev.edp,
                      "yes" if feasible else "NO")

    add_row("baseline (no epitome)", baseline, True)
    if result.front is not None:
        for i, point in enumerate(result.front):
            knee = point.eval == result.eval
            add_row(f"front[{i}]{' *knee' if knee else ''}", point.eval,
                    point.eval.crossbars <= budget)
    else:
        add_row(f"{objective}-opt ({len(result.assignment)} layers "
                f"converted)", result.eval, result.feasible)
    rendered = table.render()
    if verbose:
        print(rendered)
    return SearchRunResult(model=model_name, objective=objective,
                           budget=budget,
                           baseline_crossbars=baseline.crossbars,
                           design_space_size=grid.design_space_size,
                           result=result, front=result.front,
                           rendered=rendered, grid_stats=grid.build_stats,
                           layers=[layer.name for layer in spec],
                           weight_bits=weight_bits,
                           activation_bits=activation_bits,
                           use_wrapping=use_wrapping)


@dataclass
class SearchThenServeResult:
    """Output of :func:`run_search_then_serve` — the closed loop."""

    search: SearchRunResult
    policies: Tuple[str, ...]
    points: Dict[str, object]           # policy -> serve.deploy.OperatingPoint
    rows: List[Dict]
    rendered: str


def run_search_then_serve(model_name: str = "resnet18",
                          policies: Tuple[str, ...] = ("latency-opt",
                                                       "energy-opt"),
                          budget: Optional[int] = None,
                          budget_fraction: float = 0.78,
                          search: EvoSearchConfig = EvoSearchConfig(),
                          num_chips: Optional[int] = None,
                          num_requests: int = 400,
                          load_factors: Tuple[float, ...] = (0.5, 0.8),
                          seed: int = 0,
                          config: HardwareConfig = DEFAULT_CONFIG,
                          lut: ComponentLUT = DEFAULT_LUT,
                          grid_workers: Optional[int] = None,
                          grid_cache: Optional[GridCache] = None,
                          verbose: bool = True) -> SearchThenServeResult:
    """Search a model's design space, then A/B the chosen operating points
    under serving load — the whole ``search -> serve`` loop in one call.

    Runs a Pareto search, serializes it through the *same* versioned
    payload the ``repro search --json`` CLI writes (so this experiment
    exercises the real hand-off contract, not a shortcut), picks one
    operating point per ``policies`` entry, deploys each as a serving
    fleet and replays identical Poisson traces against all of them at
    ``load_factors`` x the slowest fleet's capacity.  Returns per-policy
    p50/p99 latency, achieved throughput and energy per request.
    """
    # Imported here: serve.engine (via serve.deploy) pulls in
    # analysis.tables during repro.serve's own package import — a
    # module-level import would re-enter repro.serve half-initialized.
    from ..search.cli import search_result_payload
    from ..serve.deploy import (
        ab_offered_load_sweep,
        engine_from_search,
        load_search_result,
        render_ab,
    )

    outcome = run_search(model_name, objective="pareto", budget=budget,
                         budget_fraction=budget_fraction, search=search,
                         config=config, lut=lut, grid_workers=grid_workers,
                         grid_cache=grid_cache, verbose=False)
    loaded = load_search_result(search_result_payload(outcome))
    engines = {}
    points = {}
    for policy in policies:
        engines[policy] = engine_from_search(
            loaded, policy=policy, num_chips=num_chips,
            config=config, lut=lut)
        points[policy] = loaded.select(policy)
    rows = ab_offered_load_sweep(engines, num_requests=num_requests,
                                 load_factors=load_factors, seed=seed)
    rendered = render_ab(rows, title=f"search -> serve A/B — {model_name}, "
                                     f"budget={outcome.budget} XBs")
    if verbose:
        print(outcome.rendered)
        print()
        print(rendered)
    return SearchThenServeResult(search=outcome, policies=tuple(policies),
                                 points=points, rows=rows,
                                 rendered=rendered)


@dataclass
class Figure4Result:
    points: List[Figure4Point]
    rendered: str


def run_figure4(model_name: str = "resnet50", verbose: bool = True,
                **kwargs) -> Figure4Result:
    """Regenerate Figure 4: latency/energy/EDP vs compression for the four
    methods (Uniform, +Channel Wrapping, +Evo-Search, EPIM-Opt)."""
    points = figure4_series(model_name, **kwargs)
    methods = ["Uniform", "EPIM-CW", "EPIM-Evo", "EPIM-Opt"]
    blocks = []
    for metric_index, metric in enumerate(("Latency(ms)", "Energy(mJ)",
                                           "EDP(mJ*ms)")):
        series = {method: [p.metrics[method][metric_index] for p in points]
                  for method in methods}
        blocks.append(series_block(
            f"Figure 4{chr(ord('a') + metric_index)} — {metric} vs compression",
            "CR", [round(p.compression, 2) for p in points], series))
    rendered = "\n\n".join(blocks)
    if verbose:
        print(rendered)
    return Figure4Result(points=points, rendered=rendered)
