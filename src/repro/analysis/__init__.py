"""repro.analysis — experiment runners regenerating every table and figure.

- :mod:`repro.analysis.hardware` — exact shape-level hardware experiments;
- :mod:`repro.analysis.accuracy` — trainable-substrate accuracy workbench;
- :mod:`repro.analysis.experiments` — one runner per paper table/figure;
- :mod:`repro.analysis.tables` — paper-style text rendering.
"""

from .accuracy import PRESETS, AccuracyPreset, AccuracyWorkbench
from .experiments import run_figure3, run_figure4, run_table1, run_table2, run_table3
from .hardware import (
    FIGURE3_LAYERS,
    Figure4Point,
    HardwareRow,
    figure3_rows,
    figure4_series,
    mixed_precision_bit_map,
    table1_hardware_rows,
)
from .tables import Table, format_value, series_block

__all__ = [
    "AccuracyPreset",
    "AccuracyWorkbench",
    "PRESETS",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure3",
    "run_figure4",
    "HardwareRow",
    "Figure4Point",
    "table1_hardware_rows",
    "figure3_rows",
    "figure4_series",
    "mixed_precision_bit_map",
    "FIGURE3_LAYERS",
    "Table",
    "format_value",
    "series_block",
]
