"""Hardware-side experiment runners (exact, shape-level, no training).

Everything in this module operates on the full-size ResNet-50/101 layer
shapes at 224x224 — crossbar counts, compression rates, latency, energy and
utilization are functions of shapes and the mapping only, so these are the
*exact* reproductions of the paper's hardware columns:

- :func:`table1_hardware_rows` — Table 1 minus the accuracy column;
- :func:`figure3_rows` — Fig. 3's per-layer params/latency/energy bars;
- :func:`figure4_series` — Fig. 4's latency/energy/EDP sweep comparing
  Uniform / +Channel-Wrapping / +Evo-Search / EPIM-Opt.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple


from ..baselines.pim_prune import pim_prune_network
from ..core.designer import build_deployments, uniform_assignment
from ..search import (
    EvoSearchConfig,
    GridCache,
    build_candidate_grid,
    evolution_search,
    uniform_budget,
)
from ..models.specs import NetworkSpec, get_network_spec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import NetworkReport, simulate_network
from ..quant.hawq import LayerSensitivity, allocate_bits

__all__ = [
    "HardwareRow",
    "table1_hardware_rows",
    "figure3_rows",
    "Figure4Point",
    "figure4_series",
    "mixed_precision_bit_map",
    "FIGURE3_LAYERS",
]

# Paper Fig. 3 uses layers 9 / 41 / 67 of its (differently enumerated)
# ResNet-50.  We map them to shape-equivalent layers of our 54-layer
# enumeration, chosen to match the parameter savings the paper reports:
# L9  -> an early 3x3 64-ch conv   (epitome saves only ~20 k params),
# L41 -> a middle 3x3 256-ch conv,
# L67 -> a late 1x1 2048->512 conv (epitome saves ~1 M params).
FIGURE3_LAYERS = {
    9: "layer1.1.conv2",
    41: "layer3.2.conv2",
    67: "layer4.2.conv1",
}


@dataclass
class HardwareRow:
    """One Table 1 row (hardware columns)."""

    model: str
    bitwidth: str
    epitome: str
    xbars: Optional[int]
    cr: Optional[float]
    latency_ms: Optional[float]
    energy_mj: Optional[float]
    utilization: Optional[float]
    report: Optional[NetworkReport] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "Model": self.model,
            "Bitwidth": self.bitwidth,
            "Epitome": self.epitome,
            "#XBs": self.xbars,
            "CR of XBs": self.cr,
            "Latency(ms)": self.latency_ms,
            "Energy(mJ)": self.energy_mj,
            "Utilization(%)": (self.utilization * 100
                               if self.utilization is not None else None),
        }


def mixed_precision_bit_map(spec: NetworkSpec,
                            assignment: Dict[str, Tuple[int, int]],
                            bits_low: int = 3, bits_high: int = 5,
                            budget_fraction: float = 0.5,
                            sensitivities: Optional[Sequence[LayerSensitivity]] = None,
                            config: HardwareConfig = DEFAULT_CONFIG
                            ) -> Dict[str, int]:
    """HAWQ-style mixed-precision allocation for a shape-level network.

    When real Hessian traces are unavailable (the full-size nets are
    shape-only), the standard small-layers-are-sensitive proxy is used:
    ``trace ~ 1 / num_weights`` (early narrow layers get the high bits) —
    the accuracy-side experiments use genuine FD-HVP traces instead.

    The crossbar budget interpolates between the all-low and all-high
    deployments by ``budget_fraction``.  The candidate grid is ``{low,
    high}``: with 2-bit cells the intermediate 4-bit precision costs the
    same as 3-bit, so the paper's "3-5 bit" mix is literally 3s and 5s.
    """
    candidate_bits = [bits_low, bits_high]

    cost_cache: Dict[Tuple[str, int], float] = {}

    def cost_fn(name: str, bits: int) -> float:
        key = (name, bits)
        if key not in cost_cache:
            layer = spec.by_name(name)
            deps = build_deployments(
                NetworkSpec(name="one", input_size=spec.input_size,
                            layers=[layer]),
                assignment={name: assignment[name]} if name in assignment else None,
                weight_bits=bits, activation_bits=9, config=config)
            cost_cache[key] = float(simulate_network(deps, config).num_crossbars)
        return cost_cache[key]

    names = [layer.name for layer in spec if layer.kind == "conv"]
    if sensitivities is None:
        sensitivities = [
            LayerSensitivity(name=name,
                             trace=1.0 / spec.by_name(name).num_weights,
                             num_params=spec.by_name(name).num_weights)
            for name in names]

    low_total = sum(cost_fn(name, bits_low) for name in names)
    high_total = sum(cost_fn(name, bits_high) for name in names)
    budget = low_total + budget_fraction * (high_total - low_total)
    return allocate_bits(sensitivities, candidate_bits, cost_fn, budget)


def _simulate(spec: NetworkSpec, assignment=None, weight_bits=None,
              activation_bits=None, use_wrapping=False, bit_map=None,
              config=DEFAULT_CONFIG, lut=DEFAULT_LUT) -> NetworkReport:
    deps = build_deployments(spec, assignment=assignment,
                             weight_bits=weight_bits,
                             activation_bits=activation_bits,
                             use_wrapping=use_wrapping, bit_map=bit_map,
                             config=config)
    return simulate_network(deps, config, lut)


def table1_hardware_rows(model_name: str = "resnet50",
                         uniform_rows: int = 1024, uniform_cols: int = 256,
                         opt_budget_fraction: float = 0.78,
                         config: HardwareConfig = DEFAULT_CONFIG,
                         lut: ComponentLUT = DEFAULT_LUT,
                         search: EvoSearchConfig = EvoSearchConfig(),
                         include_opt_rows: bool = True,
                         grid_workers: int = 1,
                         grid_cache: Optional[GridCache] = None
                         ) -> List[HardwareRow]:
    """Regenerate the hardware columns of Table 1 for one model.

    Rows (matching the paper): FP32 baseline; EPIM FP32 uniform; PIM-Prune
    (CR only); EPIM W9A9 uniform; latency-/energy-optimized layer-wise
    designs at W9A9; EPIM W7/W5/W3mp/W3 at A9.  ``grid_workers`` /
    ``grid_cache`` shard and persist the "-Opt" rows' candidate-grid
    construction (see :func:`repro.search.build_candidate_grid`).
    """
    spec = get_network_spec(model_name)
    model = spec.name
    uniform = uniform_assignment(spec, uniform_rows, uniform_cols)
    epitome_label = f"{uniform_rows}x{uniform_cols}"
    rows: List[HardwareRow] = []

    base = _simulate(spec, config=config, lut=lut)
    rows.append(HardwareRow(model, "FP32", "-", base.num_crossbars, 1.0,
                            base.latency_ms, base.energy_mj,
                            base.utilization, base))

    def add(name_model: str, bitwidth: str, label: str,
            report: NetworkReport) -> None:
        rows.append(HardwareRow(
            name_model, bitwidth, label, report.num_crossbars,
            base.num_crossbars / report.num_crossbars,
            report.latency_ms, report.energy_mj, report.utilization, report))

    ep_fp = _simulate(spec, uniform, config=config, lut=lut)
    add(f"EPIM-{model}", "FP32", epitome_label, ep_fp)

    prune = pim_prune_network(spec, 0.5, config=config)
    rows.append(HardwareRow(f"PIM-Prune-{model}", "FP32", "-", None,
                            prune.crossbar_compression, None, None, None))

    ep_w9 = _simulate(spec, uniform, weight_bits=9, activation_bits=9,
                      config=config, lut=lut)
    add(f"EPIM-{model}", "W9A9", epitome_label, ep_w9)

    if include_opt_rows:
        grid = build_candidate_grid(spec, weight_bits=9, activation_bits=9,
                                    use_wrapping=True, config=config,
                                    lut=lut, workers=grid_workers,
                                    cache=grid_cache)
        budget = uniform_budget(grid, uniform_rows, uniform_cols,
                                opt_budget_fraction, lut)
        for objective, tag in (("latency", "Latency-Opt"),
                               ("energy", "Energy-Opt")):
            result = evolution_search(
                grid, budget, replace(search, objective=objective), lut=lut)
            report = _simulate(spec, result.assignment, weight_bits=9,
                               activation_bits=9, use_wrapping=True,
                               config=config, lut=lut)
            rows.append(HardwareRow(
                f"EPIM-{model}-{tag}", "W9A9", "layer-wise",
                report.num_crossbars,
                base.num_crossbars / report.num_crossbars,
                report.latency_ms, report.energy_mj, report.utilization,
                report))

    for bits, label in ((7, "W7A9"), (5, "W5A9")):
        report = _simulate(spec, uniform, weight_bits=bits, activation_bits=9,
                           config=config, lut=lut)
        add(f"EPIM-{model}", label, epitome_label, report)

    bit_map = mixed_precision_bit_map(spec, uniform, config=config)
    mp = _simulate(spec, uniform, weight_bits=3, activation_bits=9,
                   bit_map=bit_map, config=config, lut=lut)
    add(f"EPIM-{model}", "W3mpA9", epitome_label, mp)

    w3 = _simulate(spec, uniform, weight_bits=3, activation_bits=9,
                   config=config, lut=lut)
    add(f"EPIM-{model}", "W3A9", epitome_label, w3)
    return rows


@dataclass
class Figure3Row:
    """One bar group of Fig. 3: a layer, conv vs epitome."""

    paper_index: int
    layer_name: str
    conv_params_k: float
    epitome_params_k: float
    conv_latency_ms: float
    epitome_latency_ms: float
    conv_energy_01mj: float
    epitome_energy_01mj: float

    @property
    def params_saved_k(self) -> float:
        return self.conv_params_k - self.epitome_params_k

    @property
    def latency_increase_ms(self) -> float:
        return self.epitome_latency_ms - self.conv_latency_ms

    @property
    def energy_increase_01mj(self) -> float:
        return self.epitome_energy_01mj - self.conv_energy_01mj


def figure3_rows(model_name: str = "resnet50",
                 uniform_rows: int = 1024, uniform_cols: int = 256,
                 layers: Optional[Dict[int, str]] = None,
                 config: HardwareConfig = DEFAULT_CONFIG,
                 lut: ComponentLUT = DEFAULT_LUT) -> List[Figure3Row]:
    """Per-layer params/latency/energy with and without the epitome (Fig. 3).

    Energies are per-layer dynamic energies (the static leakage term is a
    network-level quantity), reported in the paper's 0.1 mJ units.
    """
    spec = get_network_spec(model_name)
    layer_map = layers if layers is not None else FIGURE3_LAYERS
    uniform = uniform_assignment(spec, uniform_rows, uniform_cols)

    base_report = _simulate(spec, config=config, lut=lut)
    ep_report = _simulate(spec, uniform, config=config, lut=lut)

    rows: List[Figure3Row] = []
    for paper_index, name in sorted(layer_map.items()):
        base_layer = base_report.layer_by_name(name)
        ep_layer = ep_report.layer_by_name(name)
        rows.append(Figure3Row(
            paper_index=paper_index,
            layer_name=name,
            conv_params_k=base_layer.stored_params / 1e3,
            epitome_params_k=ep_layer.stored_params / 1e3,
            conv_latency_ms=base_layer.latency_ns / 1e6,
            epitome_latency_ms=ep_layer.latency_ns / 1e6,
            conv_energy_01mj=base_layer.energy_pj / 1e8,
            epitome_energy_01mj=ep_layer.energy_pj / 1e8,
        ))
    return rows


@dataclass
class Figure4Point:
    """One compression level of Fig. 4, all four methods x three metrics."""

    target_crossbars: int
    uniform_shape: Tuple[int, int]
    compression: float
    # method -> (latency_ms, energy_mj, edp)
    metrics: Dict[str, Tuple[float, float, float]] = field(default_factory=dict)


# Uniform ladder swept by Fig. 4 (largest to smallest epitome).
FIGURE4_UNIFORM_LADDER: List[Tuple[int, int]] = [
    (2048, 512), (1024, 256), (512, 128), (256, 64), (128, 32),
]


def figure4_series(model_name: str = "resnet50",
                   ladder: Sequence[Tuple[int, int]] = tuple(FIGURE4_UNIFORM_LADDER),
                   weight_bits: int = 9, activation_bits: int = 9,
                   config: HardwareConfig = DEFAULT_CONFIG,
                   lut: ComponentLUT = DEFAULT_LUT,
                   search: EvoSearchConfig = EvoSearchConfig(),
                   grid_workers: int = 1,
                   grid_cache: Optional[GridCache] = None
                   ) -> List[Figure4Point]:
    """Regenerate Fig. 4: uniform vs wrapping vs evo-search vs EPIM-Opt.

    For every uniform design on the ladder, the three optimized methods are
    constrained to the same crossbar count, so every point compares equal
    compression — matching the paper's "similar compression with up to
    3.07x speedup / 2.36x energy / 7.13x EDP" claim structure.
    """
    spec = get_network_spec(model_name)
    base = _simulate(spec, weight_bits=weight_bits,
                     activation_bits=activation_bits, config=config, lut=lut)

    grid_plain = build_candidate_grid(spec, weight_bits=weight_bits,
                                      activation_bits=activation_bits,
                                      use_wrapping=False, config=config,
                                      lut=lut, workers=grid_workers,
                                      cache=grid_cache)
    grid_wrap = build_candidate_grid(spec, weight_bits=weight_bits,
                                     activation_bits=activation_bits,
                                     use_wrapping=True, config=config,
                                     lut=lut, workers=grid_workers,
                                     cache=grid_cache)

    points: List[Figure4Point] = []
    for rows, cols in ladder:
        assignment = uniform_assignment(spec, rows, cols)
        uniform = _simulate(spec, assignment, weight_bits=weight_bits,
                            activation_bits=activation_bits, config=config,
                            lut=lut)
        wrapped = _simulate(spec, assignment, weight_bits=weight_bits,
                            activation_bits=activation_bits,
                            use_wrapping=True, config=config, lut=lut)
        budget = uniform.num_crossbars
        point = Figure4Point(
            target_crossbars=budget, uniform_shape=(rows, cols),
            compression=base.num_crossbars / uniform.num_crossbars)
        point.metrics["Uniform"] = (uniform.latency_ms, uniform.energy_mj,
                                    uniform.edp)
        point.metrics["EPIM-CW"] = (wrapped.latency_ms, wrapped.energy_mj,
                                    wrapped.edp)
        for grid, tag in ((grid_plain, "EPIM-Evo"), (grid_wrap, "EPIM-Opt")):
            result = evolution_search(
                grid, budget, replace(search, objective="edp"), lut=lut)
            point.metrics[tag] = (result.eval.latency_ms,
                                  result.eval.energy_mj, result.eval.edp)
        points.append(point)
    return points
