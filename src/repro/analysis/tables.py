"""Plain-text table rendering for the experiment reports.

Every benchmark prints its table/figure data with these helpers so the
output visually parallels the paper's Tables 1-3 and the Figure 3/4 series,
making paper-vs-measured comparison (EXPERIMENTS.md) mechanical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

__all__ = ["Table", "format_value", "series_block"]

Cell = Union[str, int, float, None]


def format_value(value: Cell, precision: int = 2) -> str:
    """Render one cell: floats at fixed precision, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


class Table:
    """Column-aligned text table with an optional title."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None,
                 precision: int = 2):
        self.columns = list(columns)
        self.title = title
        self.precision = precision
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell, precision: Optional[int] = None) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns")
        p = precision if precision is not None else self.precision
        self.rows.append([format_value(cell, p) for cell in cells])

    def add_dict_row(self, record: Dict[str, Cell]) -> None:
        self.add_row(*[record.get(col) for col in self.columns])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(col.ljust(widths[i])
                           for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def series_block(title: str, x_label: str, x_values: Sequence[Cell],
                 series: Dict[str, Sequence[Cell]], precision: int = 2) -> str:
    """Render figure data: one x column plus one column per series."""
    table = Table([x_label, *series.keys()], title=title, precision=precision)
    for i, x in enumerate(x_values):
        table.add_row(x, *[values[i] for values in series.values()])
    return table.render()
