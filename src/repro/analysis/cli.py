"""Command-line interface: regenerate any paper artefact from the shell.

Usage::

    python -m repro table1 [--model resnet50|resnet101] [--preset smoke]
    python -m repro table2 [--preset default]
    python -m repro table3 [--preset default]
    python -m repro figure3 [--model resnet50]
    python -m repro figure4 [--model resnet50]
    python -m repro summary            # hardware-only overview, no training
    python -m repro search [...]       # design-space search (repro.search.cli)
    python -m repro serve [...]        # serving runtime (repro.serve.cli)
    python -m repro bench [...]        # benchmark harness (repro.bench.cli)
    python -m repro obs [...]          # trace/metrics artifacts (repro.obs.cli)
    python -m repro lint [...]         # static analysis (repro.lint.cli)

``--preset`` controls the accuracy-side cost (smoke | default | full); the
hardware columns are always exact.  ``--no-accuracy`` skips training
entirely for table1.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .accuracy import PRESETS
from .experiments import run_figure3, run_figure4, run_table1, run_table2, run_table3
from ..bench.cli import add_bench_parser, run_bench
from ..lint.cli import add_lint_parser, run_lint_cli
from ..obs.cli import add_obs_parser, run_obs
from ..search.cli import add_search_parser, run_search_cli
from ..serve.cli import add_serve_parser, run_serve

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the EPIM paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, model: bool = False, preset: bool = False):
        if model:
            p.add_argument("--model", default="resnet50",
                           choices=["resnet18", "resnet34", "resnet50",
                                    "resnet101"],
                           help="full-size network for the hardware columns")
        if preset:
            p.add_argument("--preset", default="smoke",
                           choices=sorted(PRESETS),
                           help="accuracy experiment scale")

    p1 = sub.add_parser("table1", help="main results (Table 1)")
    add_common(p1, model=True, preset=True)
    p1.add_argument("--no-accuracy", action="store_true",
                    help="hardware columns only (no training)")

    p2 = sub.add_parser("table2", help="quantization ablation (Table 2)")
    add_common(p2, preset=True)

    p3 = sub.add_parser("table3", help="epitome vs pruning (Table 3)")
    add_common(p3, preset=True)

    f3 = sub.add_parser("figure3", help="per-layer costs (Figure 3)")
    add_common(f3, model=True)

    f4 = sub.add_parser("figure4", help="design optimization sweep (Figure 4)")
    add_common(f4, model=True)

    s = sub.add_parser("summary",
                       help="hardware overview of every artefact (fast)")
    add_common(s, model=True)

    add_search_parser(sub)
    add_serve_parser(sub)
    add_bench_parser(sub)
    add_obs_parser(sub)
    add_lint_parser(sub)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "table1":
        run_table1(args.model, preset=PRESETS[args.preset],
                   with_accuracy=not args.no_accuracy)
    elif args.command == "table2":
        run_table2(preset=PRESETS[args.preset])
    elif args.command == "table3":
        run_table3(preset=PRESETS[args.preset])
    elif args.command == "figure3":
        run_figure3(args.model)
    elif args.command == "figure4":
        run_figure4(args.model)
    elif args.command == "summary":
        run_table1(args.model, with_accuracy=False)
        print()
        run_figure3(args.model)
        print()
        run_figure4(args.model)
    elif args.command == "search":
        return run_search_cli(args)
    elif args.command == "serve":
        return run_serve(args)
    elif args.command == "bench":
        return run_bench(args)
    elif args.command == "obs":
        return run_obs(args)
    elif args.command == "lint":
        return run_lint_cli(args)
    return 0


if __name__ == "__main__":      # pragma: no cover - exercised via __main__
    sys.exit(main())
