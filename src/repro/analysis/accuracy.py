"""Accuracy-side experiments on the trainable substrate.

The paper's accuracy columns come from ImageNet training; here they come
from the synthetic classification task (DESIGN.md section 2) on scaled
ResNets.  What must carry over is the *ranking* between configurations, not
the absolute top-1 — EXPERIMENTS.md records both sides.

:class:`AccuracyWorkbench` owns the datasets and caches trained
checkpoints, so Table 1/2/3 rows that share a training run (e.g. every
quantized row starts from the trained FP32 epitome model) reuse it instead
of retraining.

Presets control cost:

- ``smoke``   — seconds; used by the integration tests;
- ``default`` — a few minutes; used by the benchmark harness;
- ``full``    — tens of minutes; the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..baselines.element_prune import Pruner
from ..core.designer import (
    convert_model,
    model_compression_summary,
    spec_from_model,
)
from ..core.equant import EpitomeQuantConfig, apply_epitome_quantization
from ..search import (
    EvoSearchConfig,
    GridCache,
    build_candidate_grid,
    evaluate_assignment,
    evolution_search,
)
from ..data.synthetic import make_synthetic_classification
from ..models.resnet import resnet20
from ..nn.data import DataLoader
from ..nn.functional import cross_entropy
from ..nn.training import TrainConfig, evaluate_accuracy, train_classifier
from ..pim.simulator import baseline_deployment, simulate_network
from ..quant.hawq import allocate_bits, layer_sensitivities

__all__ = ["AccuracyPreset", "PRESETS", "AccuracyWorkbench"]


@dataclass(frozen=True)
class AccuracyPreset:
    """Size/budget of the accuracy experiments.

    ``noise`` sets task difficulty; it is tuned (1.2) so the trained models
    sit in the high-80s/low-90s — the regime where quantization-induced
    degradation is visible, mirroring the paper's ImageNet operating point.
    Presets that undertrain hide the rankings (a half-trained FP32 model
    can lose to a QAT run that simply trained longer).
    """

    name: str
    num_train: int
    num_val: int
    num_classes: int
    image_size: int
    epochs: int
    qat_epochs: int
    finetune_epochs: int
    lr: float = 0.05
    batch_size: int = 32
    noise: float = 1.2
    seed: int = 0
    epitome_rows: int = 128
    epitome_cols: int = 32
    # Crossbar size used for the *quantization grouping* on the scaled
    # substrate models.  The paper's 1024-row epitomes span 4+ arrays of
    # 256 rows; our 128-row epitomes span 2+ arrays of 64 rows — same
    # groups-per-epitome ratio, so the per-crossbar-scale mechanism
    # (section 4.2) is exercised rather than degenerate.
    quant_xbar: int = 64

    def train_config(self, epochs: Optional[int] = None,
                     lr: Optional[float] = None) -> TrainConfig:
        return TrainConfig(epochs=epochs if epochs is not None else self.epochs,
                           lr=lr if lr is not None else self.lr)


PRESETS: Dict[str, AccuracyPreset] = {
    "smoke": AccuracyPreset(
        name="smoke", num_train=512, num_val=192, num_classes=10,
        image_size=16, epochs=6, qat_epochs=2, finetune_epochs=2),
    "default": AccuracyPreset(
        name="default", num_train=1024, num_val=320, num_classes=10,
        image_size=16, epochs=8, qat_epochs=3, finetune_epochs=3),
    "full": AccuracyPreset(
        name="full", num_train=4096, num_val=1024, num_classes=10,
        image_size=32, epochs=15, qat_epochs=5, finetune_epochs=5),
}


class AccuracyWorkbench:
    """Shared datasets + cached checkpoints for all accuracy experiments."""

    def __init__(self, preset: AccuracyPreset = PRESETS["default"],
                 model_factory: Optional[Callable[[], nn.Module]] = None):
        self.preset = preset
        self._model_factory = model_factory or (
            lambda: resnet20(num_classes=preset.num_classes, seed=preset.seed))
        train_set, val_set = make_synthetic_classification(
            num_train=preset.num_train, num_val=preset.num_val,
            num_classes=preset.num_classes, image_size=preset.image_size,
            noise=preset.noise, seed=1234 + preset.seed)
        self.train_set = train_set
        self.val_set = val_set
        self._cache: Dict[str, Tuple[Dict[str, np.ndarray], float]] = {}

    # ------------------------------------------------------------------
    def loaders(self) -> Tuple[DataLoader, DataLoader]:
        rng = np.random.default_rng(self.preset.seed)
        train_loader = DataLoader(self.train_set,
                                  batch_size=self.preset.batch_size,
                                  shuffle=True, rng=rng)
        val_loader = DataLoader(self.val_set,
                                batch_size=2 * self.preset.batch_size)
        return train_loader, val_loader

    def _fresh_model(self) -> nn.Module:
        return self._model_factory()

    def _fresh_epitome_model(self, assignment=None,
                             rows_cols: Optional[Tuple[int, int]] = None
                             ) -> nn.Module:
        model = self._fresh_model()
        rows = rows_cols[0] if rows_cols else self.preset.epitome_rows
        cols = rows_cols[1] if rows_cols else self.preset.epitome_cols
        convert_model(model, rows=rows, cols=cols,
                      assignment=assignment, seed=self.preset.seed)
        return model

    def quant_hardware_config(self):
        """Hardware config used for quantization grouping on this substrate."""
        from ..pim.config import HardwareConfig
        xb = self.preset.quant_xbar
        return HardwareConfig(xbar_rows=xb, xbar_cols=xb,
                              adc_share=min(8, xb))

    # ------------------------------------------------------------------
    # Cached training runs
    # ------------------------------------------------------------------
    def baseline(self) -> Tuple[nn.Module, float]:
        """Trained FP32 convolutional baseline."""
        if "baseline" not in self._cache:
            model = self._fresh_model()
            train_loader, val_loader = self.loaders()
            train_classifier(model, train_loader, val_loader,
                             self.preset.train_config())
            acc = evaluate_accuracy(model, val_loader)
            self._cache["baseline"] = (model.state_dict(), acc)
        state, acc = self._cache["baseline"]
        model = self._fresh_model()
        model.load_state_dict(state)
        return model, acc

    def epitome_fp(self, assignment=None, cache_key: str = "epitome_fp",
                   rows_cols: Optional[Tuple[int, int]] = None
                   ) -> Tuple[nn.Module, float]:
        """Trained FP32 epitome model (uniform or custom assignment).

        ``rows_cols`` overrides the preset's uniform epitome budget — used
        by Table 3, which needs a *gentler* design (~2x parameter CR) so
        epitome and PIM-Prune are compared at matched compression, as in
        the paper.
        """
        if cache_key not in self._cache:
            model = self._fresh_epitome_model(assignment, rows_cols)
            train_loader, val_loader = self.loaders()
            train_classifier(model, train_loader, val_loader,
                             self.preset.train_config())
            acc = evaluate_accuracy(model, val_loader)
            self._cache[cache_key] = (model.state_dict(), acc)
        state, acc = self._cache[cache_key]
        model = self._fresh_epitome_model(assignment, rows_cols)
        model.load_state_dict(state)
        return model, acc

    # ------------------------------------------------------------------
    # Quantization experiments (Table 1 accuracy column + Table 2)
    # ------------------------------------------------------------------
    def quantized_accuracy(self, bits: int, mode: str = "crossbar_overlap",
                           bit_map: Optional[Dict[str, int]] = None,
                           assignment=None,
                           base_key: str = "epitome_fp",
                           cache_key: Optional[str] = None) -> float:
        """QAT fine-tune the trained epitome model at a precision; top-1.

        ``base_key`` selects which trained FP checkpoint to start from —
        pass a distinct key together with a custom ``assignment`` so
        layer-wise designs do not silently reuse the uniform checkpoint.
        """
        key = cache_key or f"quant-{bits}-{mode}-{bool(bit_map)}"
        if key in self._cache:
            return self._cache[key][1]
        model, _ = self.epitome_fp(assignment, cache_key=base_key)
        quant = EpitomeQuantConfig(bits=bits, mode=mode)
        config = self.quant_hardware_config()
        apply_epitome_quantization(model, quant, bit_map=bit_map,
                                   config=config)
        train_loader, val_loader = self.loaders()

        def refresh(_epoch, _result):
            apply_epitome_quantization(model, quant, bit_map=bit_map,
                                       config=config)

        train_classifier(
            model, train_loader, val_loader,
            self.preset.train_config(epochs=self.preset.qat_epochs,
                                     lr=self.preset.lr * 0.1),
            epoch_callback=refresh)
        acc = evaluate_accuracy(model, val_loader)
        self._cache[key] = (model.state_dict(), acc)
        return acc

    def ptq_accuracy(self, bits: int, mode: str = "crossbar_overlap",
                     w1: float = 0.7) -> float:
        """Post-training quantization accuracy (no QAT recovery).

        Isolates the range-setting mechanism of section 4.2: the three
        modes differ most visibly here, before fine-tuning can compensate.
        """
        model, _ = self.epitome_fp()
        quant = EpitomeQuantConfig(bits=bits, mode=mode, w1=w1, w2=1.0 - w1)
        apply_epitome_quantization(model, quant,
                                   config=self.quant_hardware_config())
        _, val_loader = self.loaders()
        return evaluate_accuracy(model, val_loader)

    def hawq_bit_map(self, bits_low: int = 3, bits_high: int = 5,
                     budget_fraction: float = 0.5,
                     n_samples: int = 2) -> Dict[str, int]:
        """Genuine HAWQ allocation: FD-HVP Hessian traces on the trained
        epitome model + greedy demotion under a crossbar budget."""
        model, _ = self.epitome_fp()
        train_loader, _ = self.loaders()
        images, labels = next(iter(train_loader))
        x = nn.Tensor(images)

        def loss_fn():
            return cross_entropy(model(x), labels)

        sens = layer_sensitivities(
            model, loss_fn,
            param_filter=lambda name: name.endswith("epitome"),
            n_samples=n_samples,
            rng=np.random.default_rng(self.preset.seed))
        # Map parameter names ("...convX.epitome") to module paths.
        sens_by_module = []
        for s in sens:
            module_path = s.name.rsplit(".", 1)[0]
            sens_by_module.append(replace_name(s, module_path))

        # With 2-bit cells, 4-bit weights cost the same cells as 3-bit, so
        # the meaningful mixed grid is {3, 5} — matching the paper's
        # "3-5 bit" description of W3mp.
        candidate_bits = [bits_low, bits_high]
        epitome_modules = {name: module for name, module in model.named_modules()
                           if hasattr(module, "plan")}
        cell_bits = _default_config().cell_bits

        def cost_fn(name: str, bits: int) -> float:
            # Cell count (rows x cols x slices): the scale-free version of
            # the crossbar cost, meaningful even when every layer fits in a
            # fraction of one array (the scaled accuracy models).
            shape = epitome_modules[name].epitome_shape
            slices = -(-bits // cell_bits)
            return float(shape.rows * shape.cols * slices)

        names = [s.name for s in sens_by_module]
        low_total = sum(cost_fn(n, bits_low) for n in names)
        high_total = sum(cost_fn(n, bits_high) for n in names)
        budget = low_total + budget_fraction * (high_total - low_total)
        return allocate_bits(sens_by_module, candidate_bits, cost_fn, budget)

    # ------------------------------------------------------------------
    # Layer-wise designed models (Table 1's -Opt rows)
    # ------------------------------------------------------------------
    def layerwise_opt_accuracy(self, objective: str = "latency",
                               budget_fraction: float = 0.8,
                               weight_bits: int = 9,
                               grid_workers: int = 1,
                               grid_cache: Optional[GridCache] = None
                               ) -> Tuple[float, float]:
        """Search a layer-wise design on this model's own spec, train, QAT.

        Mirrors Table 1's "-Opt" rows on the trainable substrate: run
        Algorithm 1 on the traced layer shapes (own candidate ladder scaled
        from the preset's uniform budget), train an epitome model with the
        found assignment from scratch, then QAT it at ``weight_bits``.
        ``grid_workers`` / ``grid_cache`` shard and persist the candidate
        grid's simulations (the traced spec's shapes dedup and cache just
        like the full-size ones).

        Returns ``(accuracy, crossbar_compression)``.
        """
        key = f"opt-{objective}"
        if key in self._cache:
            return self._cache[key][1], self._cache[key + "-cr"][1]
        probe = self._fresh_epitome_model()
        spec = spec_from_model(probe, (self.preset.image_size,) * 2)
        rows, cols = self.preset.epitome_rows, self.preset.epitome_cols
        candidates = [None, (rows * 2, cols * 2), (rows, cols),
                      (max(rows // 2, 16), max(cols // 2, 4)),
                      (max(rows // 2, 16), cols)]
        grid = build_candidate_grid(spec, candidates, weight_bits=weight_bits,
                                    activation_bits=9, use_wrapping=True,
                                    workers=grid_workers, cache=grid_cache)
        base = simulate_network([baseline_deployment(l, weight_bits=None)
                                 for l in spec])
        # Budget: a fraction of the uniform design's crossbar demand.
        uniform_genome = [(rows, cols) if (rows, cols) in grid.candidates[l.name]
                          else None for l in spec]
        uniform_eval = evaluate_assignment(grid, uniform_genome)
        budget = max(1, int(uniform_eval.crossbars * budget_fraction))
        result = evolution_search(
            grid, budget,
            EvoSearchConfig(objective=objective, seed=self.preset.seed))
        acc = self.quantized_accuracy(
            weight_bits, mode="crossbar_overlap",
            assignment=dict(result.assignment),
            base_key=f"epitome_fp-{key}", cache_key=key)
        cr = base.num_crossbars / max(result.eval.crossbars, 1)
        self._cache[key + "-cr"] = ({}, cr)
        return acc, cr

    # ------------------------------------------------------------------
    # Pruning experiments (Table 3)
    # ------------------------------------------------------------------
    def pruned_baseline_accuracy(self, ratio: float,
                                 structured: bool = True
                                 ) -> Tuple[float, float]:
        """PIM-Prune regime: prune the conv baseline + fine-tune.

        ``structured=True`` (default) uses PIM-Prune's crossbar-structured
        row-segment masks — the patterns whose compaction actually frees
        crossbars; set False for plain element pruning.

        Returns ``(accuracy, parameter_compression)`` over the whole model.
        """
        key = f"prune-{ratio}-{structured}"
        if key in self._cache:
            return self._cache[key][1], self._cache[key + "-cr"][1]
        model, _ = self.baseline()
        pruner = Pruner(model, ratio, scope="conv", structured=structured,
                        block_cols=self.preset.quant_xbar)
        train_loader, val_loader = self.loaders()

        def reapply(_epoch, _result):
            pruner.apply()

        train_classifier(
            model, train_loader, val_loader,
            self.preset.train_config(epochs=self.preset.finetune_epochs,
                                     lr=self.preset.lr * 0.1),
            epoch_callback=reapply)
        pruner.apply()
        acc = evaluate_accuracy(model, val_loader)
        total = model.num_parameters()
        pruned_cost = (total - pruner.num_weights
                       + pruner.num_weights / max(pruner.compression, 1e-9))
        cr = total / pruned_cost
        self._cache[key] = ({}, acc)
        self._cache[key + "-cr"] = ({}, cr)
        return acc, cr

    def epitome_pruned_accuracy(self, ratio: float,
                                rows_cols: Optional[Tuple[int, int]] = None
                                ) -> Tuple[float, float]:
        """Epitome + element pruning (Table 3's combined row).

        Returns ``(accuracy, parameter_compression)`` where compression
        counts the epitome compression *times* the pruning of the epitomes.
        """
        key = f"ep-prune-{ratio}-{rows_cols}"
        if key in self._cache:
            return self._cache[key][1], self._cache[key + "-cr"][1]
        model, _ = self.epitome_fp(rows_cols=rows_cols,
                                   cache_key=f"epitome_fp-{rows_cols}"
                                   if rows_cols else "epitome_fp")
        pruner = Pruner(model, ratio, scope="epitome")
        train_loader, val_loader = self.loaders()

        def reapply(_epoch, _result):
            pruner.apply()

        train_classifier(
            model, train_loader, val_loader,
            self.preset.train_config(epochs=self.preset.finetune_epochs,
                                     lr=self.preset.lr * 0.1),
            epoch_callback=reapply)
        pruner.apply()
        acc = evaluate_accuracy(model, val_loader)
        summary = model_compression_summary(model)
        actual = summary["params"]
        virtual = summary["virtual_params"]
        pruned_cost = (actual - pruner.num_weights
                       + pruner.num_weights / max(pruner.compression, 1e-9))
        cr = virtual / pruned_cost
        self._cache[key] = ({}, acc)
        self._cache[key + "-cr"] = ({}, cr)
        return acc, cr

    def epitome_param_compression(self,
                                  rows_cols: Optional[Tuple[int, int]] = None
                                  ) -> float:
        """Whole-model parameter compression of the uniform epitome design."""
        model, _ = self.epitome_fp(rows_cols=rows_cols,
                                   cache_key=f"epitome_fp-{rows_cols}"
                                   if rows_cols else "epitome_fp")
        return model_compression_summary(model)["compression"]


def replace_name(sens, new_name: str):
    """Return a LayerSensitivity with a rewritten name."""
    from ..quant.hawq import LayerSensitivity
    return LayerSensitivity(name=new_name, trace=sens.trace,
                            num_params=sens.num_params)


def _default_config():
    from ..pim.config import DEFAULT_CONFIG
    return DEFAULT_CONFIG
