"""Machine-readable benchmark results: schema, serialization, trajectory files.

Every harness run serialises to ``BENCH_<timestamp>.json`` so the repo
accumulates a *perf trajectory* — a versioned, diffable record of how fast
the system is at each commit (the software analogue of the real-PIM
benchmarking methodology: numbers only count when they are reproducible
and comparable over time).

Schema (version 1)::

    {
      "schema_version": 1,
      "created_at":  "2026-07-29T12:00:00",
      "git_sha":     "abc123..." | null,
      "python":      "3.11.7",
      "platform":    "Linux-...",
      "fast":        true,
      "warmup":      1,
      "repeats":     5,
      "rounds":      3,
      "calibration_ms": 0.42,   # fixed reference workload; lets compare()
                                # divide out machine-speed drift
      "peak_rss_kb": 123456,
      "results": [
        {
          "name": "serve.offered_load_sweep",
          "suite": "serve",
          "wall_time_ms": 812.4,          # best (min) per-call time
          "wall_times_ms": [..],          # every timed repeat (per call)
          "calls_per_repeat": 1,          # autorange inner-loop size
          "items": 600.0,
          "unit": "requests",
          "throughput": 738.5,            # items per second (at the min)
          "counters": {"requests": 600},  # work done, not just seconds
          "peak_rss_kb": 123000
        }, ...
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "SCHEMA_VERSION",
    "BENCH_FILE_PREFIX",
    "BenchResult",
    "BenchRun",
    "validate_run_dict",
    "write_run",
    "load_run",
    "latest_run_path",
]

SCHEMA_VERSION = 1
BENCH_FILE_PREFIX = "BENCH_"


@dataclass
class BenchResult:
    """One benchmark's measurements within a run."""

    name: str
    suite: str
    wall_time_ms: float
    wall_times_ms: List[float]
    items: float = 1.0
    unit: str = "iters"
    throughput: Optional[float] = None
    counters: Dict[str, float] = field(default_factory=dict)
    peak_rss_kb: Optional[int] = None
    calls_per_repeat: int = 1

    @classmethod
    def from_times(cls, name: str, suite: str, times_ms: List[float],
                   items: float = 1.0, unit: str = "iters",
                   counters: Optional[Dict[str, float]] = None,
                   peak_rss_kb: Optional[int] = None,
                   calls_per_repeat: int = 1) -> "BenchResult":
        # The min is the headline: system noise only ever adds time, so
        # best-of-repeats is the most reproducible gate statistic.
        best = min(times_ms)
        throughput = items / (best / 1000.0) if best > 0 else None
        return cls(name=name, suite=suite, wall_time_ms=best,
                   wall_times_ms=list(times_ms), items=items, unit=unit,
                   throughput=throughput, counters=dict(counters or {}),
                   peak_rss_kb=peak_rss_kb, calls_per_repeat=calls_per_repeat)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "suite": self.suite,
            "wall_time_ms": self.wall_time_ms,
            "wall_times_ms": self.wall_times_ms,
            "items": self.items,
            "unit": self.unit,
            "throughput": self.throughput,
            "counters": self.counters,
            "peak_rss_kb": self.peak_rss_kb,
            "calls_per_repeat": self.calls_per_repeat,
        }

    @classmethod
    def from_dict(cls, entry: Dict) -> "BenchResult":
        return cls(
            name=entry["name"],
            suite=entry["suite"],
            wall_time_ms=float(entry["wall_time_ms"]),
            wall_times_ms=[float(t) for t in entry["wall_times_ms"]],
            items=float(entry.get("items", 1.0)),
            unit=entry.get("unit", "iters"),
            throughput=entry.get("throughput"),
            counters=dict(entry.get("counters", {})),
            peak_rss_kb=entry.get("peak_rss_kb"),
            calls_per_repeat=int(entry.get("calls_per_repeat", 1)),
        )


@dataclass
class BenchRun:
    """A full harness invocation: environment provenance + every result."""

    results: List[BenchResult]
    created_at: str
    git_sha: Optional[str]
    python: str
    platform: str
    fast: bool
    warmup: int
    repeats: int
    rounds: int = 1
    calibration_ms: Optional[float] = None
    peak_rss_kb: Optional[int] = None
    schema_version: int = SCHEMA_VERSION

    def result_by_name(self, name: str) -> BenchResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"run has no result named {name!r}")

    def names(self) -> List[str]:
        return [result.name for result in self.results]

    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "python": self.python,
            "platform": self.platform,
            "fast": self.fast,
            "warmup": self.warmup,
            "repeats": self.repeats,
            "rounds": self.rounds,
            "calibration_ms": self.calibration_ms,
            "peak_rss_kb": self.peak_rss_kb,
            "results": [result.to_dict() for result in self.results],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "BenchRun":
        validate_run_dict(data)
        return cls(
            results=[BenchResult.from_dict(e) for e in data["results"]],
            created_at=data["created_at"],
            git_sha=data.get("git_sha"),
            python=data["python"],
            platform=data["platform"],
            fast=bool(data["fast"]),
            warmup=int(data["warmup"]),
            repeats=int(data["repeats"]),
            rounds=int(data.get("rounds", 1)),
            calibration_ms=data.get("calibration_ms"),
            peak_rss_kb=data.get("peak_rss_kb"),
            schema_version=int(data["schema_version"]),
        )


_RUN_REQUIRED = ("schema_version", "created_at", "python", "platform",
                 "fast", "warmup", "repeats", "results")
_RESULT_REQUIRED = ("name", "suite", "wall_time_ms", "wall_times_ms")


def validate_run_dict(data: Dict) -> None:
    """Raise ``ValueError`` unless ``data`` is a schema-valid run dict."""
    if not isinstance(data, dict):
        raise ValueError(f"run must be a dict, got {type(data).__name__}")
    missing = [key for key in _RUN_REQUIRED if key not in data]
    if missing:
        raise ValueError(f"run dict missing keys: {missing}")
    if data["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {data['schema_version']!r} "
            f"(this harness writes {SCHEMA_VERSION})")
    if not isinstance(data["results"], list):
        raise ValueError("'results' must be a list")
    seen = set()
    for index, entry in enumerate(data["results"]):
        if not isinstance(entry, dict):
            raise ValueError(f"results[{index}] must be a dict")
        missing = [key for key in _RESULT_REQUIRED if key not in entry]
        if missing:
            raise ValueError(f"results[{index}] missing keys: {missing}")
        if not isinstance(entry["wall_times_ms"], list) or not entry["wall_times_ms"]:
            raise ValueError(
                f"results[{index}].wall_times_ms must be a non-empty list")
        if entry["wall_time_ms"] < 0 or any(t < 0 for t in entry["wall_times_ms"]):
            raise ValueError(f"results[{index}] has negative wall time")
        if entry["name"] in seen:
            raise ValueError(f"duplicate result name {entry['name']!r}")
        seen.add(entry["name"])


def write_run(run: BenchRun, directory: Union[str, Path] = ".") -> Path:
    """Serialise ``run`` to ``<directory>/BENCH_<timestamp>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = datetime.now().strftime("%Y%m%d_%H%M%S_%f")
    path = directory / f"{BENCH_FILE_PREFIX}{stamp}.json"
    data = run.to_dict()
    validate_run_dict(data)
    path.write_text(json.dumps(data, indent=2, sort_keys=False) + "\n")
    return path


def load_run(path: Union[str, Path]) -> BenchRun:
    """Load and validate a run file (``BENCH_*.json`` or baseline.json)."""
    with open(path) as handle:
        data = json.load(handle)
    return BenchRun.from_dict(data)


def latest_run_path(directory: Union[str, Path]) -> Path:
    """Newest ``BENCH_*.json`` under ``directory`` (by file name, which
    sorts chronologically thanks to the timestamp)."""
    directory = Path(directory)
    candidates = sorted(directory.glob(f"{BENCH_FILE_PREFIX}*.json"))
    if not candidates:
        raise FileNotFoundError(
            f"no {BENCH_FILE_PREFIX}*.json files in {directory}")
    return candidates[-1]
