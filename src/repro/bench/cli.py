"""``python -m repro bench`` — run, compare and list benchmarks.

Examples::

    python -m repro bench list
    python -m repro bench run --fast                   # writes BENCH_*.json
    python -m repro bench run --suite nn --suite pim
    python -m repro bench compare                      # fresh run vs baseline
    python -m repro bench compare --run BENCH_x.json --tolerance 25
    python -m repro bench compare --run bench-results  # latest run in a dir

``compare`` exits non-zero when any benchmark regresses beyond the
tolerance — that exit code is the CI regression gate.  With no ``--run``
it executes a fresh run first (matching the baseline's fast/full mode so
the comparison is like-for-like).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .compare import compare_runs
from .registry import load_suites
from .results import BenchRun, latest_run_path, load_run, write_run
from .runner import (
    DEFAULT_REPEATS,
    DEFAULT_ROUNDS,
    DEFAULT_WARMUP,
    RunnerConfig,
    run_suites,
)

__all__ = ["add_bench_parser", "run_bench", "main"]

DEFAULT_BASELINE = Path("benchmarks") / "baseline.json"


class _InputError(Exception):
    """A problem with what the user supplied (paths, files, selections) —
    reported as ``error: ...`` with exit 2, never as a traceback."""


def _load_run_file(path) -> BenchRun:
    try:
        return load_run(path)
    except (FileNotFoundError, json.JSONDecodeError, ValueError) as exc:
        raise _InputError(f"cannot load run {path}: {exc}") from exc


def _validate_selection(args) -> None:
    try:
        load_suites().select(suites=args.suite, names=args.name)
    except KeyError as exc:
        raise _InputError(exc.args[0]) from exc


def add_bench_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``bench`` subcommand on an existing subparser set."""
    p = subparsers.add_parser(
        "bench", help="benchmark harness: run / compare / list")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    run_p = bench_sub.add_parser(
        "run", help="execute benchmark suites and write BENCH_*.json")
    _add_selection_args(run_p)
    run_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                       help="untimed calls before measurement")
    run_p.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                       help="timed samples per benchmark per round "
                            "(best pooled sample reported)")
    run_p.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                       help="interleaved whole-suite passes (samples are "
                            "pooled, defeating machine-state drift)")
    run_p.add_argument("--output-dir", default=".", metavar="DIR",
                       help="where BENCH_<timestamp>.json is written")
    run_p.add_argument("--no-write", action="store_true",
                       help="print the report without writing a run file")

    cmp_p = bench_sub.add_parser(
        "compare", help="diff a run against the committed baseline")
    cmp_p.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                       metavar="PATH", help="baseline run JSON")
    cmp_p.add_argument("--run", default=None, metavar="PATH",
                       help="run file (or directory holding BENCH_*.json) "
                            "to compare; default: execute a fresh run")
    cmp_p.add_argument("--tolerance", type=float, default=25.0,
                       metavar="PCT", help="symmetric noise band percent")
    _add_selection_args(cmp_p)

    bench_sub.add_parser("list", help="list registered benchmarks")
    return p


def _add_selection_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fast", action="store_true",
                        help="smoke mode: small shapes, short traces")
    parser.add_argument("--suite", action="append", default=None,
                        metavar="NAME", help="restrict to a suite "
                        "(repeatable; default: all)")
    parser.add_argument("--name", action="append", default=None,
                        metavar="NAME",
                        help="restrict to a benchmark (repeatable)")


def _render_run(run: BenchRun) -> str:
    from ..analysis.tables import Table
    table = Table(["benchmark", "wall_ms", "throughput", "unit", "samples"],
                  title=f"bench run ({'fast' if run.fast else 'full'} mode, "
                        f"best of {run.repeats} x {run.rounds} rounds)")
    for result in run.results:
        table.add_dict_row({
            "benchmark": result.name,
            "wall_ms": f"{result.wall_time_ms:.3f}",
            "throughput": "-" if result.throughput is None
                          else f"{result.throughput:,.0f}",
            "unit": f"{result.unit}/s",
            "samples": len(result.wall_times_ms),
        })
    return table.render()


def _pick(args, attr: str, override: Optional[int], default: int) -> int:
    value = getattr(args, attr, None)
    if value is not None:
        return value
    return override if override is not None else default


def _execute_run(args, fast: Optional[bool] = None,
                 warmup: Optional[int] = None,
                 repeats: Optional[int] = None,
                 rounds: Optional[int] = None) -> BenchRun:
    config = RunnerConfig(
        fast=args.fast if fast is None else fast,
        warmup=_pick(args, "warmup", warmup, DEFAULT_WARMUP),
        repeats=_pick(args, "repeats", repeats, DEFAULT_REPEATS),
        rounds=_pick(args, "rounds", rounds, DEFAULT_ROUNDS),
    )
    return run_suites(suites=args.suite, names=args.name, config=config,
                      progress=lambda line: print(line, file=sys.stderr))


def _cmd_run(args) -> int:
    _validate_selection(args)
    run = _execute_run(args)
    print(_render_run(run))
    if not args.no_write:
        path = write_run(run, args.output_dir)
        print(f"\nwrote {path}")
    return 0


def _cmd_compare(args) -> int:
    if args.tolerance < 0:
        raise _InputError("--tolerance must be >= 0")
    baseline = _load_run_file(args.baseline)
    if args.run is not None:
        run_path = Path(args.run)
        if run_path.is_dir():
            try:
                run_path = latest_run_path(run_path)
            except FileNotFoundError as exc:
                raise _InputError(str(exc)) from exc
        current = _load_run_file(run_path)
        if current.fast != baseline.fast:
            print(f"warning: comparing a {_mode(current)} run against a "
                  f"{_mode(baseline)} baseline — workload sizes differ, "
                  "deltas are not like-for-like", file=sys.stderr)
        print(f"comparing {run_path} against {args.baseline}")
    else:
        _validate_selection(args)
        # Like-for-like: mirror the baseline's mode unless --fast given.
        current = _execute_run(args, fast=args.fast or baseline.fast,
                               warmup=baseline.warmup,
                               repeats=baseline.repeats,
                               rounds=baseline.rounds)
        print(f"comparing fresh run against {args.baseline}")
    report = compare_runs(baseline, current,
                          tolerance_pct=args.tolerance)
    print(report.render())
    return 0 if report.ok else 1


def _mode(run: BenchRun) -> str:
    return "fast-mode" if run.fast else "full-mode"


def _cmd_list(_args) -> int:
    registry = load_suites()
    from ..analysis.tables import Table
    table = Table(["benchmark", "suite", "description"],
                  title=f"{len(registry)} registered benchmarks")
    for bench in registry.select():
        table.add_dict_row({"benchmark": bench.name, "suite": bench.suite,
                            "description": bench.description})
    print(table.render())
    return 0


def run_bench(args) -> int:
    """Dispatch a parsed ``bench`` namespace (wired from repro.analysis.cli)."""
    try:
        if args.bench_command == "run":
            return _cmd_run(args)
        if args.bench_command == "compare":
            return _cmd_compare(args)
        if args.bench_command == "list":
            return _cmd_list(args)
    except _InputError as exc:
        # User-input problems (bad paths, malformed run files, unknown
        # suites/benchmarks) print `error: ...` and exit 2; tracebacks
        # are reserved for real harness bugs, which propagate.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise ValueError(f"unknown bench command {args.bench_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.bench.cli``)."""
    parser = argparse.ArgumentParser(prog="python -m repro.bench.cli")
    sub = parser.add_subparsers(dest="command", required=True)
    add_bench_parser(sub)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
