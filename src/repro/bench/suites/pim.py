"""Benchmarks for the behaviour-level PIM simulator (``repro.pim``).

``pim.simulate_network`` times the full per-layer performance model over an
epitome ResNet-18 deployment and reports the simulator's own work counters
(activation rounds, analog MAC ops, crossbar tiles) so a faster number that
silently models less work is visible.  ``pim.multi_chip_plan`` times shard
planning across chip counts — the fleet-sizing path the serving runtime
calls on every deployment compile.
"""

from __future__ import annotations

from ...core.designer import build_deployments, uniform_assignment
from ...models.specs import get_network_spec
from ...pim.simulator import (
    reset_sim_counters,
    sim_counters,
    simulate_network,
)
from ...serve.sharding import plan_sharding
from ..registry import Workload, benchmark

__all__ = ["simulate_network_factory", "multi_chip_plan_factory"]


def _deployments(model: str):
    spec = get_network_spec(model)
    return build_deployments(spec, uniform_assignment(spec),
                             weight_bits=9, activation_bits=9,
                             use_wrapping=True)


@benchmark("pim.simulate_network", suite="pim",
           description="per-layer performance model, epitome ResNet")
def simulate_network_factory(fast: bool) -> Workload:
    deployments = _deployments("resnet18" if fast else "resnet50")

    def fn():
        # Reset per call so the sampled counters report one call's work
        # regardless of warmup/repeat/autorange discipline.
        reset_sim_counters()
        return simulate_network(deployments)

    return Workload(fn=fn, items=float(len(deployments)), unit="layers",
                    counters=lambda: dict(sim_counters().as_dict()))


@benchmark("pim.multi_chip_plan", suite="pim",
           description="shard planning across chip counts")
def multi_chip_plan_factory(fast: bool) -> Workload:
    chip_counts = (1, 2) if fast else (1, 2, 4, 8)
    report = simulate_network(_deployments("resnet18"))

    def fn():
        return [plan_sharding(report, chips) for chips in chip_counts]

    return Workload(fn=fn, items=float(len(chip_counts)), unit="plans")
