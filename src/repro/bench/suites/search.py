"""Benchmarks for the design-space search engine (repro.search).

Four registered benchmarks:

- ``search.population_eval`` — the vectorized population evaluator on a
  batch of random genomes (the per-generation hot path);
- ``search.population_eval_scalar`` — the same genomes through the
  scalar per-genome loop, kept as a permanent in-harness reference so
  the vectorization win stays measured, not asserted;
- ``search.evolution`` — Algorithm 1 end to end at the default
  configuration (population 64 x 60 iterations x 3 restarts), the
  headline number for "how fast can we sweep the design space".
- ``search.pareto_front`` — the multi-objective mode; its structural
  check (front is mutually non-dominated and in budget) doubles as a
  correctness smoke.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...models.specs import get_network_spec
from ...search import (
    EvoSearchConfig,
    build_candidate_grid,
    evaluate_assignment,
    evaluate_population,
    evolution_search,
    non_dominated_mask,
    pareto_search,
    uniform_budget,
)
from ..registry import Workload, benchmark

__all__ = [
    "build_search_grid",
    "population_eval_factory",
    "population_eval_scalar_factory",
    "evolution_factory",
    "pareto_factory",
]

_GRIDS: Dict[str, object] = {}


def build_search_grid(model_name: str):
    """Grid construction is setup, not the timed region — cache it."""
    if model_name not in _GRIDS:
        _GRIDS[model_name] = build_candidate_grid(
            get_network_spec(model_name), weight_bits=9, activation_bits=9,
            use_wrapping=True)
    return _GRIDS[model_name]


def _random_population(grid, size: int, seed: int = 0) -> np.ndarray:
    matrices = grid.matrices()
    rng = np.random.default_rng(seed)
    return rng.integers(0, matrices.num_options,
                        size=(size, matrices.num_layers), dtype=np.int64)


# 11520 genomes = the default search's evaluation budget (64 x 60 x 3).
_EVAL_BATCH = 11520


@benchmark("search.population_eval", suite="search",
           description="vectorized genome scoring (matrix gather + sums)")
def population_eval_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    matrices = grid.matrices()
    population = _random_population(grid, _EVAL_BATCH)

    def fn():
        return evaluate_population(matrices, population)

    return Workload(fn=fn, items=float(len(population)), unit="genomes",
                    counters=lambda: {
                        "genomes": float(len(population)),
                        "layers_scored": float(len(population)
                                               * matrices.num_layers)})


@benchmark("search.population_eval_scalar", suite="search",
           description="same genomes through the scalar per-genome loop "
                       "(vectorization reference)")
def population_eval_scalar_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    matrices = grid.matrices()
    # Scalar loop is ~14x slower; a slice keeps the harness snappy while
    # per-genome throughput stays directly comparable.
    population = _random_population(grid, _EVAL_BATCH // 8)
    genomes = [[matrices.options[li][ki] for li, ki in enumerate(row)]
               for row in population]

    def fn():
        return [evaluate_assignment(grid, genome) for genome in genomes]

    return Workload(fn=fn, items=float(len(genomes)), unit="genomes")


@benchmark("search.evolution", suite="search",
           description="Alg. 1 end-to-end: population 64 x 60 iterations "
                       "x 3 restarts",
           warmup=0, repeats=3, min_sample_ms=0.0)
def evolution_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    budget = uniform_budget(grid)
    config = EvoSearchConfig(population_size=64, iterations=60, restarts=3,
                             objective="edp", seed=0)
    evaluations = (config.population_size * config.iterations
                   * config.restarts)
    outcome: Dict[str, float] = {}

    def fn():
        result = evolution_search(grid, budget, config)
        assert result.feasible, "search must satisfy the derived budget"
        outcome["best_edp"] = result.eval.edp
        outcome["best_crossbars"] = float(result.eval.crossbars)
        return result

    return Workload(fn=fn, items=float(evaluations), unit="genomes",
                    counters=lambda: dict(outcome))


@benchmark("search.pareto_front", suite="search",
           description="multi-objective front: latency x energy x crossbars",
           warmup=0, repeats=3, min_sample_ms=0.0)
def pareto_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    budget = uniform_budget(grid)
    config = EvoSearchConfig(population_size=64, iterations=30, restarts=2,
                             seed=0)
    evaluations = (config.population_size * config.iterations
                   * config.restarts)
    outcome: Dict[str, float] = {}

    def fn():
        front = pareto_search(grid, budget, config)
        objectives = np.array([p.objectives for p in front.points])
        assert non_dominated_mask(objectives).all(), "dominated point on front"
        assert (objectives[:, 2] <= budget).all(), "front exceeds budget"
        outcome["front_size"] = float(len(front))
        return front

    return Workload(fn=fn, items=float(evaluations), unit="genomes",
                    counters=lambda: dict(outcome))
