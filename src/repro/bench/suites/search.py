"""Benchmarks for the design-space search engine (repro.search).

Registered benchmarks:

- ``search.population_eval`` — the vectorized population evaluator on a
  batch of random genomes (the per-generation hot path);
- ``search.population_eval_scalar`` — the same genomes through the
  scalar per-genome loop, kept as a permanent in-harness reference so
  the vectorization win stays measured, not asserted;
- ``search.evolution`` — Algorithm 1 end to end at the default
  configuration (population 64 x 60 iterations x 3 restarts), the
  headline number for "how fast can we sweep the design space".
- ``search.pareto_front`` — the multi-objective mode; its structural
  check (front is mutually non-dominated and in budget) doubles as a
  correctness smoke.
- ``search.grid_build`` — cold candidate-grid construction through the
  retained serial reference (every (layer, candidate) pair simulated
  from scratch), the baseline the fast paths are measured against;
- ``search.grid_build_dedup`` — the shape-signature-deduped +
  process-sharded pipeline at ``workers=4`` (no disk cache), i.e. what
  ``build_candidate_grid`` actually does on a cold start;
- ``search.grid_build_warm`` — a rebuild against a fully warm
  persistent grid cache (zero simulations), the "re-search after a
  hardware-config tweak" path.

All three grid benchmarks count the same ``cells`` (grid cache entries
produced), so their throughputs are directly comparable.
"""

from __future__ import annotations

import tempfile
from typing import Dict

import numpy as np

from ...models.specs import get_network_spec
from ...pim.simulator import reset_sim_counters, sim_counters
from ...search import (
    EvoSearchConfig,
    GridCache,
    build_candidate_grid,
    build_candidate_grid_serial,
    evaluate_assignment,
    evaluate_population,
    evolution_search,
    non_dominated_mask,
    pareto_search,
    uniform_budget,
)
from ..registry import Workload, benchmark

__all__ = [
    "build_search_grid",
    "population_eval_factory",
    "population_eval_scalar_factory",
    "evolution_factory",
    "pareto_factory",
    "grid_build_cold_factory",
    "grid_build_dedup_factory",
    "grid_build_warm_factory",
]

GRID_KWARGS = dict(weight_bits=9, activation_bits=9, use_wrapping=True)

_GRIDS: Dict[str, object] = {}


def build_search_grid(model_name: str):
    """Grid construction is setup, not the timed region — cache it."""
    if model_name not in _GRIDS:
        _GRIDS[model_name] = build_candidate_grid(
            get_network_spec(model_name), **GRID_KWARGS)
    return _GRIDS[model_name]


def _grid_workload(build, model_name: str) -> Workload:
    """Shared shape of the three grid-build benchmarks: ``build(spec)``
    must produce a grid; throughput counts grid cells so cold/dedup/warm
    numbers are directly comparable."""
    spec = get_network_spec(model_name)
    outcome: Dict[str, float] = {}

    def fn():
        # Reset per call so the sampled counters report one call's work
        # (the warm path's near-zero layer count is the point).
        reset_sim_counters()
        grid = build(spec)
        outcome["cells"] = float(len(grid.cache))
        stats = grid.build_stats
        if stats is not None:
            outcome["unique_signatures"] = float(stats.unique_signatures)
            outcome["sim_tasks_unique"] = float(stats.sim_tasks_unique)
            outcome["simulated"] = float(stats.simulated)
            outcome["cache_hits"] = float(stats.cache_hits)
        return grid

    probe = build(spec)
    return Workload(fn=fn, items=float(len(probe.cache)), unit="cells",
                    counters=lambda: {**outcome,
                                      **{k: float(v) for k, v in
                                         sim_counters().as_dict().items()}})


@benchmark("search.grid_build", suite="search",
           description="cold candidate-grid build, retained serial "
                       "reference (every pair simulated)",
           warmup=0, repeats=3, min_sample_ms=0.0)
def grid_build_cold_factory(fast: bool) -> Workload:
    model = "resnet18" if fast else "resnet50"
    return _grid_workload(
        lambda spec: build_candidate_grid_serial(spec, **GRID_KWARGS), model)


@benchmark("search.grid_build_dedup", suite="search",
           description="shape-signature dedup + process sharding "
                       "(workers=4, no disk cache)",
           warmup=0, repeats=3, min_sample_ms=0.0)
def grid_build_dedup_factory(fast: bool) -> Workload:
    model = "resnet18" if fast else "resnet50"
    return _grid_workload(
        lambda spec: build_candidate_grid(spec, workers=4, **GRID_KWARGS),
        model)


@benchmark("search.grid_build_warm", suite="search",
           description="rebuild against a fully warm persistent grid "
                       "cache (zero simulations)",
           warmup=0, repeats=3, min_sample_ms=0.0)
def grid_build_warm_factory(fast: bool) -> Workload:
    model = "resnet18" if fast else "resnet50"
    tmp = tempfile.TemporaryDirectory(prefix="repro-grid-bench-")
    cache = GridCache(tmp.name)
    warm = get_network_spec(model)
    build_candidate_grid(warm, cache=cache, **GRID_KWARGS)   # pre-warm

    def build(spec):
        grid = build_candidate_grid(spec, cache=cache, **GRID_KWARGS)
        assert grid.build_stats.simulated == 0, "warm rebuild simulated"
        return grid

    workload = _grid_workload(build, model)
    workload.fn.__dict__["_tmpdir"] = tmp    # keep the dir alive
    return workload


def _random_population(grid, size: int, seed: int = 0) -> np.ndarray:
    matrices = grid.matrices()
    rng = np.random.default_rng(seed)
    return rng.integers(0, matrices.num_options,
                        size=(size, matrices.num_layers), dtype=np.int64)


# 11520 genomes = the default search's evaluation budget (64 x 60 x 3).
_EVAL_BATCH = 11520


@benchmark("search.population_eval", suite="search",
           description="vectorized genome scoring (matrix gather + sums)")
def population_eval_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    matrices = grid.matrices()
    population = _random_population(grid, _EVAL_BATCH)

    def fn():
        return evaluate_population(matrices, population)

    return Workload(fn=fn, items=float(len(population)), unit="genomes",
                    counters=lambda: {
                        "genomes": float(len(population)),
                        "layers_scored": float(len(population)
                                               * matrices.num_layers)})


@benchmark("search.population_eval_scalar", suite="search",
           description="same genomes through the scalar per-genome loop "
                       "(vectorization reference)")
def population_eval_scalar_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    matrices = grid.matrices()
    # Scalar loop is ~14x slower; a slice keeps the harness snappy while
    # per-genome throughput stays directly comparable.
    population = _random_population(grid, _EVAL_BATCH // 8)
    genomes = [[matrices.options[li][ki] for li, ki in enumerate(row)]
               for row in population]

    def fn():
        return [evaluate_assignment(grid, genome) for genome in genomes]

    return Workload(fn=fn, items=float(len(genomes)), unit="genomes")


@benchmark("search.evolution", suite="search",
           description="Alg. 1 end-to-end: population 64 x 60 iterations "
                       "x 3 restarts",
           warmup=0, repeats=3, min_sample_ms=0.0)
def evolution_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    budget = uniform_budget(grid)
    config = EvoSearchConfig(population_size=64, iterations=60, restarts=3,
                             objective="edp", seed=0)
    evaluations = (config.population_size * config.iterations
                   * config.restarts)
    outcome: Dict[str, float] = {}

    def fn():
        result = evolution_search(grid, budget, config)
        assert result.feasible, "search must satisfy the derived budget"
        outcome["best_edp"] = result.eval.edp
        outcome["best_crossbars"] = float(result.eval.crossbars)
        return result

    return Workload(fn=fn, items=float(evaluations), unit="genomes",
                    counters=lambda: dict(outcome))


@benchmark("search.pareto_front", suite="search",
           description="multi-objective front: latency x energy x crossbars",
           warmup=0, repeats=3, min_sample_ms=0.0)
def pareto_factory(fast: bool) -> Workload:
    grid = build_search_grid("resnet18" if fast else "resnet50")
    budget = uniform_budget(grid)
    config = EvoSearchConfig(population_size=64, iterations=30, restarts=2,
                             seed=0)
    evaluations = (config.population_size * config.iterations
                   * config.restarts)
    outcome: Dict[str, float] = {}

    def fn():
        front = pareto_search(grid, budget, config)
        objectives = np.array([p.objectives for p in front.points])
        assert non_dominated_mask(objectives).all(), "dominated point on front"
        assert (objectives[:, 2] <= budget).all(), "front exceeds budget"
        outcome["front_size"] = float(len(front))
        return front

    return Workload(fn=fn, items=float(evaluations), unit="genomes",
                    counters=lambda: dict(outcome))
