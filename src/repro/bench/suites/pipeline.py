"""Benchmarks for the compile/export path (``repro.core``).

``pipeline.compile`` times epitome deployment compilation — network spec in,
per-layer :class:`~repro.pim.simulator.LayerDeployment` list out (the
epitome designer's sampling of execution patches dominates).
``pipeline.export_roundtrip`` times the servable format-2 manifest path:
export -> JSON text -> parse -> rebuild deployments, i.e. exactly what
``python -m repro serve --manifest`` pays per deployment load.
"""

from __future__ import annotations

import json

from ...core.designer import build_deployments, uniform_assignment
from ...core.export import deployments_from_manifest, export_deployments
from ...models.specs import get_network_spec
from ...pim.config import DEFAULT_CONFIG
from ..registry import Workload, benchmark

__all__ = ["compile_factory", "export_roundtrip_factory"]


@benchmark("pipeline.compile", suite="pipeline",
           description="spec -> epitome deployments compilation")
def compile_factory(fast: bool) -> Workload:
    spec = get_network_spec("resnet18" if fast else "resnet50")
    assignment = uniform_assignment(spec)

    def fn():
        return build_deployments(spec, assignment, weight_bits=9,
                                 activation_bits=9, use_wrapping=True)

    return Workload(fn=fn, items=float(len(spec)), unit="layers")


@benchmark("pipeline.export_roundtrip", suite="pipeline",
           description="manifest export -> JSON -> rebuilt deployments")
def export_roundtrip_factory(fast: bool) -> Workload:
    spec = get_network_spec("resnet18" if fast else "resnet50")
    deployments = build_deployments(spec, uniform_assignment(spec),
                                    weight_bits=9, activation_bits=9,
                                    use_wrapping=True)

    def fn():
        manifest = export_deployments(deployments, DEFAULT_CONFIG,
                                      name="bench")
        rebuilt, _config = deployments_from_manifest(
            json.loads(json.dumps(manifest)))
        if len(rebuilt) != len(deployments):
            raise AssertionError("manifest round-trip lost layers")
        return rebuilt

    return Workload(fn=fn, items=float(len(deployments)), unit="layers")
