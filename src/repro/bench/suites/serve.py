"""Benchmark for the serving runtime: offered load vs achieved throughput.

The sweep (formerly ``benchmarks/bench_serve.py``, which now shims onto
this module) replays Poisson request traces against an epitome ResNet-18
deployment on 1/2/4 simulated chips at offered loads below, near and above
each fleet's capacity, recording achieved throughput, p50/p99 latency,
shed requests and chip utilization.  Structural expectations:

- below saturation, achieved ~= offered and p99 stays near the pipeline
  fill latency + batching window;
- past saturation, achieved plateaus at the shard plan's pipelined
  throughput while p99 explodes against the bounded queue;
- chips scale capacity: the 4-chip fleet sustains offered loads that
  overload the 1-chip fleet.

``check_structure`` asserts those claims, so the benchmark doubles as a
correctness smoke while its wall time feeds the perf trajectory.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Sequence

from ...analysis.tables import Table
from ...obs.metrics import MetricsRegistry
from ...obs.runtime import use_metrics
from ...serve import (
    FaultPlan,
    MicroBatchScheduler,
    ResilienceConfig,
    SchedulerConfig,
    ServingConfig,
    ServingEngine,
    ab_offered_load_sweep,
    engine_from_search,
    get_scenario,
    synthetic_trace,
)
from ..registry import Workload, benchmark

__all__ = [
    "CHIP_COUNTS",
    "LOAD_FACTORS",
    "RESILIENCE_OVERHEAD_BUDGET_PCT",
    "SCENARIO_OVERHEAD_BUDGET_PCT",
    "build_engine",
    "run_sweep",
    "render",
    "check_structure",
    "offered_load_factory",
    "scheduler_deep_queue_factory",
    "ab_operating_points_factory",
    "scenario_replay_factory",
    "overload_resilience_factory",
    "measure_scenario_overhead",
    "measure_resilience_overhead",
    "measure_engine_speedup",
    "trace_replay_100k_factory",
    "trace_replay_1m_factory",
    "VECTORIZED_SPEEDUP_FLOOR",
    "TRACE_REPLAY_1M_BUDGET_S",
    "synthetic_search_payload",
    "check_ab_structure",
]

CHIP_COUNTS = (1, 2, 4)
LOAD_FACTORS = (0.5, 0.9, 1.3)      # x single-replica capacity per chip


def build_engine(num_chips: int, queue_depth: int = 512) -> ServingEngine:
    return ServingEngine.from_spec(
        "resnet18",
        ServingConfig(num_chips=num_chips,
                      scheduler=SchedulerConfig(max_batch_size=8,
                                                window_ms=2.0,
                                                queue_depth=queue_depth)))


def run_sweep(num_requests: int = 500,
              chip_counts: Sequence[int] = CHIP_COUNTS,
              load_factors: Sequence[float] = LOAD_FACTORS) -> List[Dict]:
    rows: List[Dict] = []
    for chips in chip_counts:
        engine = build_engine(chips)
        capacity = engine.plan.throughput_fps
        for factor in load_factors:
            offered = factor * capacity
            trace = synthetic_trace(num_requests, rate_rps=offered,
                                    seed=17)
            telemetry = engine.serve(trace)
            utils = telemetry.chip_utilization()
            rows.append({
                "chips": chips,
                "offered_fps": offered,
                "achieved_fps": telemetry.throughput_fps(),
                "p50_ms": telemetry.latency_percentile(50.0),
                "p99_ms": telemetry.latency_percentile(99.0),
                "shed": telemetry.num_rejected,
                "mean_util": sum(utils.values()) / len(utils),
                "capacity_fps": capacity,
            })
    return rows


def render(rows: Sequence[Dict]) -> str:
    table = Table(["chips", "offered_fps", "achieved_fps", "p50_ms",
                   "p99_ms", "shed", "mean_util"],
                  title="serving: offered load vs achieved throughput "
                        "(epitome ResNet-18, W9)")
    for row in rows:
        table.add_dict_row(row)
    return table.render()


def check_structure(rows: Sequence[Dict]) -> None:
    """The structural claims the benchmark exists to demonstrate."""
    by = {(r["chips"], round(r["offered_fps"] / r["capacity_fps"], 1)): r
          for r in rows}
    factors = sorted({round(r["offered_fps"] / r["capacity_fps"], 1)
                      for r in rows})
    low, high = factors[0], factors[-1]
    chip_counts = sorted({r["chips"] for r in rows})
    for chips in chip_counts:
        under, over = by[(chips, low)], by[(chips, high)]
        # under light load the system keeps up...
        assert under["achieved_fps"] >= 0.8 * under["offered_fps"]
        # ...and saturation caps throughput at ~capacity with worse tails
        assert over["achieved_fps"] <= 1.1 * over["capacity_fps"]
        assert over["p99_ms"] > under["p99_ms"]
    if len(chip_counts) > 1:
        small, large = chip_counts[0], chip_counts[-1]
        assert (by[(large, high)]["achieved_fps"]
                > 1.5 * by[(small, high)]["achieved_fps"])


# A sweep simulates minutes of traffic, so: no warmup, no autorange
# batching (min_sample_ms=0 pins one sweep per timed sample), and two
# samples per round — with the runner's interleaved rounds that pools
# enough structural-checked passes for a stable min without pedantic-
# style single-shot noise.
@benchmark("serve.offered_load_sweep", suite="serve",
           description="trace replay across fleets and load factors",
           warmup=0, repeats=2, min_sample_ms=0.0)
def offered_load_factory(fast: bool) -> Workload:
    if fast:
        num_requests, chip_counts, load_factors = 150, (1, 2), (0.5, 1.3)
    else:
        num_requests, chip_counts, load_factors = 500, CHIP_COUNTS, LOAD_FACTORS
    cells = len(chip_counts) * len(load_factors)
    served: Dict[str, float] = {}

    def fn():
        rows = run_sweep(num_requests, chip_counts=chip_counts,
                         load_factors=load_factors)
        check_structure(rows)
        served["requests_offered"] = float(num_requests * cells)
        served["requests_shed"] = float(sum(r["shed"] for r in rows))
        served["sweep_cells"] = float(cells)
        return rows

    return Workload(fn=fn, items=float(num_requests * cells),
                    unit="requests", counters=lambda: dict(served))


def synthetic_search_payload(model: str = "resnet18") -> Dict:
    """A two-point ``repro-search-result`` payload with honest metrics.

    The front holds two uniform designs measured by the simulator in the
    factory (untimed): large epitomes (more crossbars, lower latency,
    higher energy) and small ones (the reverse) — so ``latency-opt`` and
    ``energy-opt`` select distinct points without paying for a search
    inside a benchmark.
    """
    from ...core.designer import build_deployments, uniform_assignment
    from ...models.specs import get_network_spec
    from ...pim.simulator import simulate_network

    spec = get_network_spec(model)
    front = []
    for rows, cols in ((2048, 512), (256, 64)):
        assignment = uniform_assignment(spec, rows, cols)
        report = simulate_network(build_deployments(
            spec, assignment, weight_bits=9, activation_bits=9,
            use_wrapping=True))
        front.append({
            "genome": [list(assignment[layer.name])
                       if layer.name in assignment else None
                       for layer in spec],
            "crossbars": report.num_crossbars,
            "latency_ms": report.latency_ms,
            "energy_mj": report.energy_mj,
            "edp": report.latency_ms * report.energy_mj,
        })
    return {
        "schema": "repro-search-result",
        "schema_version": 1,
        "model": model,
        "objective": "pareto",
        "budget": None,
        "feasible": True,
        "precision": {"weight_bits": 9, "activation_bits": 9,
                      "use_wrapping": True},
        "layers": [layer.name for layer in spec],
        "best": front[0],
        "front": front,
    }


def check_ab_structure(rows: Sequence[Dict]) -> None:
    """What the A/B exists to show: under identical offered load the
    latency-opt fleet wins the tail, the energy-opt fleet wins the bill."""
    by_rate: Dict[float, Dict[str, Dict]] = {}
    for row in rows:
        by_rate.setdefault(row["offered_fps"], {})[row["point"]] = row
    for cell in by_rate.values():
        lat, en = cell["latency-opt"], cell["energy-opt"]
        assert lat["p99_ms"] < en["p99_ms"]
        assert lat["energy_per_request_mj"] > en["energy_per_request_mj"]


@benchmark("serve.ab_operating_points", suite="serve",
           description="A/B two search operating points under "
                       "identical load",
           warmup=0, repeats=2, min_sample_ms=0.0)
def ab_operating_points_factory(fast: bool) -> Workload:
    num_requests = 150 if fast else 400
    payload = synthetic_search_payload()
    engines = {policy: engine_from_search(payload, policy=policy)
               for policy in ("latency-opt", "energy-opt")}
    served: Dict[str, float] = {}
    cells = 2 * len(engines)            # load factors x fleets

    def fn():
        rows = ab_offered_load_sweep(engines, num_requests=num_requests,
                                     seed=29)
        check_ab_structure(rows)
        served["requests_offered"] = float(num_requests * cells)
        served["requests_shed"] = float(sum(r["shed"] for r in rows))
        return rows

    return Workload(fn=fn, items=float(num_requests * cells),
                    unit="requests", counters=lambda: dict(served))


# The engine's fault-aware path must be free when nothing fails: a run
# with an (empty) fault plan over a scenario-generated trace may cost at
# most this much more than the plain-Poisson fast path.
SCENARIO_OVERHEAD_BUDGET_PCT = 5.0

_SCENARIO_CHIP_COUNTS = (1, 2)
_SCENARIO_LOAD_FACTORS = (0.5, 1.3)


def measure_scenario_overhead(num_requests: int,
                              passes: int) -> Dict[str, float]:
    """Min-of-``passes`` serve time: plain Poisson trace on the fast path
    vs a steady-poisson scenario trace through the fault-aware path
    (empty :class:`~repro.serve.FaultPlan`, so no event ever fires).

    Both traces are pregenerated outside the timed region — the claim
    under test is the replay loop's fault bookkeeping, not trace
    synthesis — and the steady scenario matches the plain trace's
    arrival statistics, so the ratio isolates the fault machinery.
    Same timing discipline as ``obs.overhead``: one timed region per
    (pass, mode) across all cells, modes interleaved, min per mode,
    GC out of the timed region.

    Both modes pin ``engine="scalar"``: the claim is about the *scalar
    loop's* fault bookkeeping, and under ``auto`` the plain side would
    run the vectorized engine while the fault-armed side fell back to
    scalar — a cross-engine ratio, not an overhead measurement.
    """
    steady = get_scenario("steady-poisson")
    jobs = []
    for chips in _SCENARIO_CHIP_COUNTS:
        engine = build_engine(chips)
        for factor in _SCENARIO_LOAD_FACTORS:
            offered = factor * engine.plan.throughput_fps
            jobs.append((engine,
                         synthetic_trace(num_requests, rate_rps=offered,
                                         seed=17),
                         steady.to_trace(num_requests, rate_rps=offered,
                                         seed=17)))
    empty_plan = FaultPlan([])

    def sweep_plain() -> float:
        t0 = time.perf_counter()
        for engine, plain, _ in jobs:
            with use_metrics(MetricsRegistry()):
                engine.serve(plain, engine="scalar")
        return time.perf_counter() - t0

    def sweep_scenario() -> float:
        t0 = time.perf_counter()
        for engine, _, scenario_trace in jobs:
            with use_metrics(MetricsRegistry()):
                engine.serve(scenario_trace, faults=empty_plan,
                             engine="scalar")
        return time.perf_counter() - t0

    sweep_plain()
    sweep_scenario()
    plain_s = scenario_s = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(passes):
            plain_s = min(plain_s, sweep_plain())
            scenario_s = min(scenario_s, sweep_scenario())
    finally:
        gc.enable()
    overhead_pct = (scenario_s / plain_s - 1.0) * 100.0
    return {"plain_s": plain_s, "scenario_s": scenario_s,
            "overhead_pct": overhead_pct}


@benchmark("serve.scenario_replay", suite="serve",
           description="scenario-trace replay through the fault-aware "
                       "path vs plain Poisson",
           warmup=0, repeats=2, min_sample_ms=0.0)
def scenario_replay_factory(fast: bool) -> Workload:
    num_requests = 150 if fast else 400
    passes = 25 if fast else 15
    cells = len(_SCENARIO_CHIP_COUNTS) * len(_SCENARIO_LOAD_FACTORS)
    measured: Dict[str, float] = {}

    def fn():
        # Retry discipline as in serve.overload_resilience: a noise
        # epoch can inflate one whole measurement past the budget, so
        # gate on the best of up to three attempts — a real regression
        # inflates all of them alike.
        result = measure_scenario_overhead(num_requests, passes)
        for _attempt in range(2):
            if result["overhead_pct"] < SCENARIO_OVERHEAD_BUDGET_PCT:
                break
            retry = measure_scenario_overhead(num_requests, passes)
            if retry["overhead_pct"] < result["overhead_pct"]:
                result = retry
        assert result["overhead_pct"] < SCENARIO_OVERHEAD_BUDGET_PCT, (
            f"fault-free scenario replay costs "
            f"{result['overhead_pct']:.2f}% over plain Poisson — budget "
            f"is {SCENARIO_OVERHEAD_BUDGET_PCT}% (plain "
            f"{result['plain_s'] * 1e3:.2f} ms, scenario "
            f"{result['scenario_s'] * 1e3:.2f} ms)")
        measured.update(result)
        return result

    # Each timed call replays every cell twice (plain + scenario) per pass.
    return Workload(fn=fn, items=float(num_requests * cells * 2 * passes),
                    unit="requests", counters=lambda: dict(measured))


# Arming the resilience runtime (admission controller, retry budget,
# breakers, brownout tracker — docs/resilience.md) must be close to free
# when the fleet is healthy: same traces, at most this much slower.
RESILIENCE_OVERHEAD_BUDGET_PCT = 5.0

# Below the CoDel delay target and the token-bucket rate, so the armed
# run admits everything and both modes complete identical work — the
# ratio then isolates the resilience bookkeeping, not shed traffic.
_RESILIENCE_LOAD_FACTORS = (0.5, 0.9)


def measure_resilience_overhead(num_requests: int,
                                passes: int) -> Dict[str, float]:
    """Armed-vs-disarmed overhead as the median of paired ABBA ratios.

    An untimed verification pass first asserts both modes complete the
    same request count on every cell (loads sit under the admission
    controller's shed threshold), so the armed replay cannot "win" by
    quietly doing less work.

    Each sample replays one cell plain-armed-armed-plain back to back
    and takes ``armed / plain`` within that window, so slow machine
    drift (frequency scaling, noisy-neighbor stalls spanning the whole
    window) cancels out of the ratio; the median across ``passes`` x
    cells samples rejects the one-sided spikes that land inside a
    single replay.  Min-of-sweeps — the ``measure_scenario_overhead``
    discipline — is unstable here: the two modes' minima come from
    *different* fast windows, which on a shared machine swings the
    ratio by more than the whole budget.

    Both modes pin ``engine="scalar"`` for the same reason the scenario
    gate does: arming resilience blocks vectorization, so under ``auto``
    the ratio would compare engines instead of the arming cost.
    """
    armed = ResilienceConfig(seed=0)
    jobs = []
    for chips in _SCENARIO_CHIP_COUNTS:
        engine = build_engine(chips)
        for factor in _RESILIENCE_LOAD_FACTORS:
            offered = factor * engine.plan.throughput_fps
            jobs.append((engine,
                         synthetic_trace(num_requests, rate_rps=offered,
                                         seed=31)))
    for engine, trace in jobs:
        with use_metrics(MetricsRegistry()):
            plain = engine.serve(trace, engine="scalar")
        with use_metrics(MetricsRegistry()):
            resilient = engine.serve(trace, resilience=armed)
        assert plain.num_completed == resilient.num_completed, (
            f"armed run completed {resilient.num_completed} of "
            f"{plain.num_completed} — overhead ratio would compare "
            "different work")

    def replay(engine, trace, config) -> None:
        with use_metrics(MetricsRegistry()):
            engine.serve(trace, resilience=config, engine="scalar")

    ratios = []
    plain_s = armed_s = 0.0
    gc.collect()
    gc.disable()
    try:
        for _ in range(passes):
            for engine, trace in jobs:
                t0 = time.perf_counter()
                replay(engine, trace, None)
                t1 = time.perf_counter()
                replay(engine, trace, armed)
                t2 = time.perf_counter()
                replay(engine, trace, armed)
                t3 = time.perf_counter()
                replay(engine, trace, None)
                t4 = time.perf_counter()
                plain_pair = (t1 - t0) + (t4 - t3)
                armed_pair = t3 - t1
                ratios.append(armed_pair / plain_pair)
                plain_s += plain_pair
                armed_s += armed_pair
    finally:
        gc.enable()
    ratios.sort()
    mid = len(ratios) // 2
    median = (ratios[mid] if len(ratios) % 2
              else 0.5 * (ratios[mid - 1] + ratios[mid]))
    return {"plain_s": plain_s, "armed_s": armed_s,
            "overhead_pct": (median - 1.0) * 100.0}


@benchmark("serve.overload_resilience", suite="serve",
           description="resilience-armed replay (admission, retry budget, "
                       "breakers, brownout) vs disarmed",
           warmup=0, repeats=2, min_sample_ms=0.0)
def overload_resilience_factory(fast: bool) -> Workload:
    # Longer traces than the scenario benchmark: the armed runtime has
    # small per-run constants (controller construction, 15-metric
    # publication) that a 150-request replay would overweight.
    num_requests = 600
    passes = 6 if fast else 10
    cells = len(_SCENARIO_CHIP_COUNTS) * len(_RESILIENCE_LOAD_FACTORS)
    measured: Dict[str, float] = {}

    def fn():
        # A noise epoch (frequency scaling, a noisy neighbor pinning the
        # core for seconds) inflates every ABBA block inside one
        # measurement, so even the median can't reject it — but epochs
        # rarely straddle three separate measurements.  Gate on the best
        # attempt: it is the least-contaminated estimate of the true
        # ratio, and a real regression inflates all three alike.
        result = measure_resilience_overhead(num_requests, passes)
        for _attempt in range(2):
            if result["overhead_pct"] < RESILIENCE_OVERHEAD_BUDGET_PCT:
                break
            retry = measure_resilience_overhead(num_requests, passes)
            if retry["overhead_pct"] < result["overhead_pct"]:
                result = retry
        assert result["overhead_pct"] < RESILIENCE_OVERHEAD_BUDGET_PCT, (
            f"arming resilience costs {result['overhead_pct']:.2f}% over "
            f"a disarmed replay — budget is "
            f"{RESILIENCE_OVERHEAD_BUDGET_PCT}% (plain "
            f"{result['plain_s'] * 1e3:.2f} ms, armed "
            f"{result['armed_s'] * 1e3:.2f} ms)")
        measured.update(result)
        return result

    # Each timed ABBA block replays its cell four times (2 per mode).
    return Workload(fn=fn, items=float(num_requests * cells * 4 * passes),
                    unit="requests", counters=lambda: dict(measured))


# The vectorized engine's reason to exist: replaying the same trace as
# whole-trace array passes must beat the scalar event loop by at least
# this factor (paired min-of-passes; docs/vectorized-replay.md).
VECTORIZED_SPEEDUP_FLOOR = 10.0

# Headline web-scale budget: a million-request day must replay in
# seconds, not hours (ISSUE/ROADMAP: "event-vectorized trace simulation
# at web scale").
TRACE_REPLAY_1M_BUDGET_S = 30.0


def measure_engine_speedup(num_requests: int,
                           passes: int) -> Dict[str, float]:
    """Paired min-of-``passes`` replay of one diurnal trace: the scalar
    event loop vs the vectorized engine, same deployment, same floats.

    An untimed pass first asserts the two engines produce an *identical*
    ``summary()`` dict (the differential harness's contract), so the
    speedup cannot come from doing different work.  The object trace for
    the scalar engine and the column trace for the vectorized one are
    both pregenerated — the claim is replay cost, not trace synthesis.

    The operating point is a web-scale one: a deep bounded queue
    (8192) absorbing diurnal peaks at 0.9x capacity, so the queue
    actually fills during overload phases.  Both engines replay the
    exact same process there — the scalar scheduler pays O(log n) heap
    maintenance per event while the vectorized pass keeps a head
    pointer, which is precisely the cost the array engine exists to
    delete.
    """
    engine = build_engine(2, queue_depth=8192)
    rate = 0.9 * engine.plan.throughput_fps
    arrays = get_scenario("diurnal").to_trace_arrays(
        num_requests, rate_rps=rate, seed=11)
    objects = arrays.materialize()
    with use_metrics(MetricsRegistry()):
        scalar_summary = engine.serve(objects, engine="scalar").summary()
    with use_metrics(MetricsRegistry()):
        vec_summary = engine.serve(arrays, engine="vectorized").summary()
    assert scalar_summary == vec_summary, (
        "scalar and vectorized summaries differ — a speedup over "
        "different work is meaningless (run the equivalence harness)")

    scalar_s = vectorized_s = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(passes):
            t0 = time.perf_counter()
            with use_metrics(MetricsRegistry()):
                engine.serve(objects, engine="scalar")
            scalar_s = min(scalar_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            with use_metrics(MetricsRegistry()):
                engine.serve(arrays, engine="vectorized")
            vectorized_s = min(vectorized_s, time.perf_counter() - t0)
    finally:
        gc.enable()
    return {"scalar_s": scalar_s, "vectorized_s": vectorized_s,
            "speedup": scalar_s / vectorized_s}


@benchmark("serve.trace_replay_100k", suite="serve",
           description="paired scalar-vs-vectorized replay of one "
                       "diurnal trace",
           warmup=0, repeats=2, min_sample_ms=0.0)
def trace_replay_100k_factory(fast: bool) -> Workload:
    num_requests = 20_000 if fast else 100_000
    passes = 3 if fast else 2
    measured: Dict[str, float] = {}

    def fn():
        # Best-of-three retry as in the overhead gates: one noisy epoch
        # can depress the vectorized minimum; a real regression drags
        # every attempt under the floor alike.
        result = measure_engine_speedup(num_requests, passes)
        for _attempt in range(2):
            if result["speedup"] >= VECTORIZED_SPEEDUP_FLOOR:
                break
            retry = measure_engine_speedup(num_requests, passes)
            if retry["speedup"] > result["speedup"]:
                result = retry
        assert result["speedup"] >= VECTORIZED_SPEEDUP_FLOOR, (
            f"vectorized replay is only {result['speedup']:.1f}x the "
            f"scalar loop — floor is {VECTORIZED_SPEEDUP_FLOOR:g}x "
            f"(scalar {result['scalar_s']:.3f} s, vectorized "
            f"{result['vectorized_s']:.3f} s on {num_requests} requests)")
        measured.update(result)
        measured["requests_replayed"] = float(num_requests)
        return result

    # Each timed call replays the trace `passes` times per engine, plus
    # the untimed equivalence pass per engine.
    return Workload(fn=fn, items=float(num_requests * 2 * (passes + 1)),
                    unit="requests", counters=lambda: dict(measured))


@benchmark("serve.trace_replay_1m", suite="serve",
           description="million-request diurnal day through the "
                       "vectorized engine",
           warmup=0, repeats=2, min_sample_ms=0.0)
def trace_replay_1m_factory(fast: bool) -> Workload:
    num_requests = 200_000 if fast else 1_000_000
    engine = build_engine(2)
    rate = 0.7 * engine.plan.throughput_fps
    arrays = get_scenario("diurnal").to_trace_arrays(
        num_requests, rate_rps=rate, seed=3)
    replayed: Dict[str, float] = {}

    def fn():
        t0 = time.perf_counter()
        with use_metrics(MetricsRegistry()):
            telemetry = engine.serve(arrays, engine="vectorized")
        elapsed = time.perf_counter() - t0
        offered = telemetry.num_completed + telemetry.num_rejected
        assert offered == num_requests, (
            f"replay accounted for {offered} of {num_requests} requests")
        if not fast:
            assert elapsed < TRACE_REPLAY_1M_BUDGET_S, (
                f"1M-request replay took {elapsed:.1f} s — budget is "
                f"{TRACE_REPLAY_1M_BUDGET_S:g} s")
        replayed["requests_completed"] = float(telemetry.num_completed)
        replayed["requests_shed"] = float(telemetry.num_rejected)
        replayed["batches_dispatched"] = float(telemetry.num_batches)
        replayed["replay_s"] = elapsed
        return telemetry.num_completed

    return Workload(fn=fn, items=float(num_requests), unit="requests",
                    counters=lambda: dict(replayed))


@benchmark("serve.scheduler_deep_queue", suite="serve",
           description="micro-batcher at full queue depth "
                       "(load-shedding regime)")
def scheduler_deep_queue_factory(fast: bool) -> Workload:
    """Submit/poll/drain a deep bounded queue — the regime the engine hits
    past saturation, where every event touches the window anchor.  The
    scheduler must stay O(log n) per event here; the list-backed version
    was quadratic over the trace."""
    num_requests = 2_000 if fast else 20_000
    requests = synthetic_trace(num_requests, rate_rps=100_000.0, seed=23,
                               priority_levels=4)
    config = SchedulerConfig(max_batch_size=8, window_ms=2.0,
                             queue_depth=num_requests, policy="priority")
    drained: Dict[str, float] = {}

    def fn():
        scheduler = MicroBatchScheduler(config)
        for request in requests:
            scheduler.submit(request)
            scheduler.next_timeout_ms()     # the engine's per-event poll
        done = 0
        drain_at = requests[-1].arrival_ms + config.window_ms
        while len(scheduler):
            done += scheduler.next_batch(drain_at).size
            scheduler.next_timeout_ms()
        assert done == num_requests
        drained["requests_drained"] = float(done)
        return done

    return Workload(fn=fn, items=float(num_requests), unit="requests",
                    counters=lambda: dict(drained))
