"""Benchmark for the serving runtime: offered load vs achieved throughput.

The sweep (formerly ``benchmarks/bench_serve.py``, which now shims onto
this module) replays Poisson request traces against an epitome ResNet-18
deployment on 1/2/4 simulated chips at offered loads below, near and above
each fleet's capacity, recording achieved throughput, p50/p99 latency,
shed requests and chip utilization.  Structural expectations:

- below saturation, achieved ~= offered and p99 stays near the pipeline
  fill latency + batching window;
- past saturation, achieved plateaus at the shard plan's pipelined
  throughput while p99 explodes against the bounded queue;
- chips scale capacity: the 4-chip fleet sustains offered loads that
  overload the 1-chip fleet.

``check_structure`` asserts those claims, so the benchmark doubles as a
correctness smoke while its wall time feeds the perf trajectory.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...analysis.tables import Table
from ...serve import (
    MicroBatchScheduler,
    SchedulerConfig,
    ServingConfig,
    ServingEngine,
    ab_offered_load_sweep,
    engine_from_search,
    synthetic_trace,
)
from ..registry import Workload, benchmark

__all__ = [
    "CHIP_COUNTS",
    "LOAD_FACTORS",
    "build_engine",
    "run_sweep",
    "render",
    "check_structure",
    "offered_load_factory",
    "scheduler_deep_queue_factory",
    "ab_operating_points_factory",
    "synthetic_search_payload",
    "check_ab_structure",
]

CHIP_COUNTS = (1, 2, 4)
LOAD_FACTORS = (0.5, 0.9, 1.3)      # x single-replica capacity per chip


def build_engine(num_chips: int, queue_depth: int = 512) -> ServingEngine:
    return ServingEngine.from_spec(
        "resnet18",
        ServingConfig(num_chips=num_chips,
                      scheduler=SchedulerConfig(max_batch_size=8,
                                                window_ms=2.0,
                                                queue_depth=queue_depth)))


def run_sweep(num_requests: int = 500,
              chip_counts: Sequence[int] = CHIP_COUNTS,
              load_factors: Sequence[float] = LOAD_FACTORS) -> List[Dict]:
    rows: List[Dict] = []
    for chips in chip_counts:
        engine = build_engine(chips)
        capacity = engine.plan.throughput_fps
        for factor in load_factors:
            offered = factor * capacity
            trace = synthetic_trace(num_requests, rate_rps=offered,
                                    seed=17)
            telemetry = engine.serve(trace)
            utils = telemetry.chip_utilization()
            rows.append({
                "chips": chips,
                "offered_fps": offered,
                "achieved_fps": telemetry.throughput_fps(),
                "p50_ms": telemetry.latency_percentile(50.0),
                "p99_ms": telemetry.latency_percentile(99.0),
                "shed": telemetry.num_rejected,
                "mean_util": sum(utils.values()) / len(utils),
                "capacity_fps": capacity,
            })
    return rows


def render(rows: Sequence[Dict]) -> str:
    table = Table(["chips", "offered_fps", "achieved_fps", "p50_ms",
                   "p99_ms", "shed", "mean_util"],
                  title="serving: offered load vs achieved throughput "
                        "(epitome ResNet-18, W9)")
    for row in rows:
        table.add_dict_row(row)
    return table.render()


def check_structure(rows: Sequence[Dict]) -> None:
    """The structural claims the benchmark exists to demonstrate."""
    by = {(r["chips"], round(r["offered_fps"] / r["capacity_fps"], 1)): r
          for r in rows}
    factors = sorted({round(r["offered_fps"] / r["capacity_fps"], 1)
                      for r in rows})
    low, high = factors[0], factors[-1]
    chip_counts = sorted({r["chips"] for r in rows})
    for chips in chip_counts:
        under, over = by[(chips, low)], by[(chips, high)]
        # under light load the system keeps up...
        assert under["achieved_fps"] >= 0.8 * under["offered_fps"]
        # ...and saturation caps throughput at ~capacity with worse tails
        assert over["achieved_fps"] <= 1.1 * over["capacity_fps"]
        assert over["p99_ms"] > under["p99_ms"]
    if len(chip_counts) > 1:
        small, large = chip_counts[0], chip_counts[-1]
        assert (by[(large, high)]["achieved_fps"]
                > 1.5 * by[(small, high)]["achieved_fps"])


# A sweep simulates minutes of traffic, so: no warmup, no autorange
# batching (min_sample_ms=0 pins one sweep per timed sample), and two
# samples per round — with the runner's interleaved rounds that pools
# enough structural-checked passes for a stable min without pedantic-
# style single-shot noise.
@benchmark("serve.offered_load_sweep", suite="serve",
           description="trace replay across fleets and load factors",
           warmup=0, repeats=2, min_sample_ms=0.0)
def offered_load_factory(fast: bool) -> Workload:
    if fast:
        num_requests, chip_counts, load_factors = 150, (1, 2), (0.5, 1.3)
    else:
        num_requests, chip_counts, load_factors = 500, CHIP_COUNTS, LOAD_FACTORS
    cells = len(chip_counts) * len(load_factors)
    served: Dict[str, float] = {}

    def fn():
        rows = run_sweep(num_requests, chip_counts=chip_counts,
                         load_factors=load_factors)
        check_structure(rows)
        served["requests_offered"] = float(num_requests * cells)
        served["requests_shed"] = float(sum(r["shed"] for r in rows))
        served["sweep_cells"] = float(cells)
        return rows

    return Workload(fn=fn, items=float(num_requests * cells),
                    unit="requests", counters=lambda: dict(served))


def synthetic_search_payload(model: str = "resnet18") -> Dict:
    """A two-point ``repro-search-result`` payload with honest metrics.

    The front holds two uniform designs measured by the simulator in the
    factory (untimed): large epitomes (more crossbars, lower latency,
    higher energy) and small ones (the reverse) — so ``latency-opt`` and
    ``energy-opt`` select distinct points without paying for a search
    inside a benchmark.
    """
    from ...core.designer import build_deployments, uniform_assignment
    from ...models.specs import get_network_spec
    from ...pim.simulator import simulate_network

    spec = get_network_spec(model)
    front = []
    for rows, cols in ((2048, 512), (256, 64)):
        assignment = uniform_assignment(spec, rows, cols)
        report = simulate_network(build_deployments(
            spec, assignment, weight_bits=9, activation_bits=9,
            use_wrapping=True))
        front.append({
            "genome": [list(assignment[layer.name])
                       if layer.name in assignment else None
                       for layer in spec],
            "crossbars": report.num_crossbars,
            "latency_ms": report.latency_ms,
            "energy_mj": report.energy_mj,
            "edp": report.latency_ms * report.energy_mj,
        })
    return {
        "schema": "repro-search-result",
        "schema_version": 1,
        "model": model,
        "objective": "pareto",
        "budget": None,
        "feasible": True,
        "precision": {"weight_bits": 9, "activation_bits": 9,
                      "use_wrapping": True},
        "layers": [layer.name for layer in spec],
        "best": front[0],
        "front": front,
    }


def check_ab_structure(rows: Sequence[Dict]) -> None:
    """What the A/B exists to show: under identical offered load the
    latency-opt fleet wins the tail, the energy-opt fleet wins the bill."""
    by_rate: Dict[float, Dict[str, Dict]] = {}
    for row in rows:
        by_rate.setdefault(row["offered_fps"], {})[row["point"]] = row
    for cell in by_rate.values():
        lat, en = cell["latency-opt"], cell["energy-opt"]
        assert lat["p99_ms"] < en["p99_ms"]
        assert lat["energy_per_request_mj"] > en["energy_per_request_mj"]


@benchmark("serve.ab_operating_points", suite="serve",
           description="A/B two search operating points under "
                       "identical load",
           warmup=0, repeats=2, min_sample_ms=0.0)
def ab_operating_points_factory(fast: bool) -> Workload:
    num_requests = 150 if fast else 400
    payload = synthetic_search_payload()
    engines = {policy: engine_from_search(payload, policy=policy)
               for policy in ("latency-opt", "energy-opt")}
    served: Dict[str, float] = {}
    cells = 2 * len(engines)            # load factors x fleets

    def fn():
        rows = ab_offered_load_sweep(engines, num_requests=num_requests,
                                     seed=29)
        check_ab_structure(rows)
        served["requests_offered"] = float(num_requests * cells)
        served["requests_shed"] = float(sum(r["shed"] for r in rows))
        return rows

    return Workload(fn=fn, items=float(num_requests * cells),
                    unit="requests", counters=lambda: dict(served))


@benchmark("serve.scheduler_deep_queue", suite="serve",
           description="micro-batcher at full queue depth "
                       "(load-shedding regime)")
def scheduler_deep_queue_factory(fast: bool) -> Workload:
    """Submit/poll/drain a deep bounded queue — the regime the engine hits
    past saturation, where every event touches the window anchor.  The
    scheduler must stay O(log n) per event here; the list-backed version
    was quadratic over the trace."""
    num_requests = 2_000 if fast else 20_000
    requests = synthetic_trace(num_requests, rate_rps=100_000.0, seed=23,
                               priority_levels=4)
    config = SchedulerConfig(max_batch_size=8, window_ms=2.0,
                             queue_depth=num_requests, policy="priority")
    drained: Dict[str, float] = {}

    def fn():
        scheduler = MicroBatchScheduler(config)
        for request in requests:
            scheduler.submit(request)
            scheduler.next_timeout_ms()     # the engine's per-event poll
        done = 0
        drain_at = requests[-1].arrival_ms + config.window_ms
        while len(scheduler):
            done += scheduler.next_batch(drain_at).size
            scheduler.next_timeout_ms()
        assert done == num_requests
        drained["requests_drained"] = float(done)
        return done

    return Workload(fn=fn, items=float(num_requests), unit="requests",
                    counters=lambda: dict(drained))
