"""Benchmarks for the numpy autodiff engine (``repro.nn``).

Three hot paths every accuracy-side experiment leans on: the raw tensor
matmul (autograd graph build + numpy GEMM), the im2col convolution forward,
and a full supervised training step (forward, cross-entropy, backward, SGD
update) on a small conv net.
"""

from __future__ import annotations

import numpy as np

from ... import nn
from ...nn import functional as F
from ..registry import Workload, benchmark

__all__ = ["matmul_factory", "conv2d_factory", "train_step_factory"]


@benchmark("nn.matmul", suite="nn",
           description="autograd tensor matmul (forward)")
def matmul_factory(fast: bool) -> Workload:
    n = 96 if fast else 256
    rng = np.random.default_rng(0)
    a = nn.Tensor(rng.standard_normal((n, n)).astype(np.float64))
    b = nn.Tensor(rng.standard_normal((n, n)).astype(np.float64))

    def fn():
        return a @ b

    return Workload(fn=fn, items=2.0 * n ** 3, unit="flops")


@benchmark("nn.conv2d_forward", suite="nn",
           description="im2col conv2d forward pass")
def conv2d_factory(fast: bool) -> Workload:
    batch = 2 if fast else 8
    cin, cout, size, kernel = 8, 16, 16, 3
    rng = np.random.default_rng(1)
    x = nn.Tensor(rng.standard_normal((batch, cin, size, size)))
    weight = nn.Tensor(rng.standard_normal((cout, cin, kernel, kernel)) * 0.1)

    def fn():
        return F.conv2d(x, weight, padding=1)

    macs = batch * cout * cin * kernel * kernel * size * size
    return Workload(fn=fn, items=float(macs), unit="MACs")


@benchmark("nn.train_step", suite="nn",
           description="conv-net forward + backward + SGD step")
def train_step_factory(fast: bool) -> Workload:
    batch = 4 if fast else 16
    rng = np.random.default_rng(2)
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.Conv2d(8, 8, 3, padding=1, rng=rng),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(8, 10, rng=rng),
    )
    optimizer = nn.SGD(model.parameters(), lr=0.01)
    x = nn.Tensor(rng.standard_normal((batch, 3, 16, 16)))
    targets = rng.integers(0, 10, size=batch)

    def fn():
        optimizer.zero_grad()
        loss = F.cross_entropy(model(x), targets)
        loss.backward()
        optimizer.step()
        return loss

    return Workload(fn=fn, items=float(batch), unit="images")
