"""First-class benchmark suites, one module per layer of the system:

- :mod:`repro.bench.suites.nn` — autodiff engine hot paths (matmul,
  conv forward, full training step);
- :mod:`repro.bench.suites.pim` — behaviour-level simulator
  (``simulate_network``) and multi-chip shard planning;
- :mod:`repro.bench.suites.pipeline` — epitome compile + deployment
  manifest export round-trip;
- :mod:`repro.bench.suites.search` — design-space search: vectorized
  population evaluator (plus its scalar reference), Algorithm 1 end to
  end, and the Pareto multi-objective mode;
- :mod:`repro.bench.suites.serve` — serving runtime offered-load sweep
  (the former ``benchmarks/bench_serve.py``, now harness-registered)
  and the deep-queue micro-batcher stress.

Importing a module registers its benchmarks on the default registry;
:func:`repro.bench.registry.load_suites` imports all of them.
"""
