"""Benchmark for the observability layer: tracing overhead on serving.

``obs.overhead`` replays the same offered-load cells as
``serve.offered_load_sweep`` (engines prebuilt, traces pregenerated, so
only the event loop is timed) twice per pass — once with the default
no-op tracer, once with a real :class:`~repro.obs.tracer.Tracer`
installed — and asserts the enabled/disabled ratio stays under
:data:`OVERHEAD_BUDGET_PCT`.  Both modes publish into a fresh registry,
so the ratio isolates span recording.  That is the contract
docs/observability.md advertises: instrumentation costs one
``tracer.enabled`` check per event until a run opts in, and bulk metric
publication is too cheap to see.

Min-of-passes timing on both sides keeps scheduler noise from deciding
the ratio; the modes are interleaved so a frequency ramp hits both.
"""

from __future__ import annotations

import gc
import time
from typing import Dict

from ...obs.metrics import MetricsRegistry
from ...obs.runtime import use_metrics, use_tracer
from ...obs.tracer import Tracer
from ...serve import synthetic_trace
from ..registry import Workload, benchmark
from .serve import build_engine

__all__ = ["OVERHEAD_BUDGET_PCT", "measure_overhead", "overhead_factory"]

OVERHEAD_BUDGET_PCT = 5.0

_CHIP_COUNTS = (1, 2)
_LOAD_FACTORS = (0.5, 1.3)


def measure_overhead(num_requests: int, passes: int) -> Dict[str, float]:
    """Min-of-``passes`` serve time with tracing off vs on.

    Returns ``disabled_s``, ``enabled_s``, ``overhead_pct`` and the span
    count of one enabled pass.  Engines and traces are built outside the
    timed region — the claim under test is about the replay loop, not
    the deployment compiler.
    """
    jobs = []
    for chips in _CHIP_COUNTS:
        engine = build_engine(chips)
        for factor in _LOAD_FACTORS:
            offered = factor * engine.plan.throughput_fps
            jobs.append((engine, synthetic_trace(num_requests,
                                                 rate_rps=offered,
                                                 seed=17)))

    # One timed region per (pass, mode) covers the whole job sweep —
    # a ~10 ms slice is long enough for scheduler jitter to average
    # out, where per-cell ~2 ms slices are not.  Modes alternate
    # back-to-back within a pass and the minimum per mode is taken
    # across passes, so CPU frequency drift hits both sides equally
    # and min-filtering drops the noisy passes.  An untimed warmup
    # pass (caches, lazy imports, allocator steady state) runs first.
    def sweep_disabled() -> float:
        t0 = time.perf_counter()
        for engine, trace in jobs:
            # Fresh registry in both modes: the measured delta is the
            # tracer alone, not registry warm-up effects.
            with use_metrics(MetricsRegistry()):
                engine.serve(trace)
        return time.perf_counter() - t0

    def sweep_enabled(tracer: Tracer) -> float:
        t0 = time.perf_counter()
        for engine, trace in jobs:
            with use_tracer(tracer), use_metrics(MetricsRegistry()):
                engine.serve(trace)
        return time.perf_counter() - t0

    sweep_disabled()
    sweep_enabled(Tracer())

    disabled_s = enabled_s = float("inf")
    spans = 0
    # GC pauses land wherever the allocation counter happens to trip;
    # the enabled sweeps allocate more (span tuples), so collections
    # would bias the ratio against them.  Standard timeit discipline:
    # collect once, then keep the collector out of the timed region.
    gc.collect()
    gc.disable()
    try:
        for _ in range(passes):
            disabled_s = min(disabled_s, sweep_disabled())
            tracer = Tracer()
            enabled_s = min(enabled_s, sweep_enabled(tracer))
            spans = len(tracer)
    finally:
        gc.enable()
    overhead_pct = (enabled_s / disabled_s - 1.0) * 100.0
    return {"disabled_s": disabled_s, "enabled_s": enabled_s,
            "overhead_pct": overhead_pct, "spans": float(spans)}


@benchmark("obs.overhead", suite="obs",
           description="tracing+metrics overhead on the serve replay loop",
           warmup=0, repeats=2, min_sample_ms=0.0)
def overhead_factory(fast: bool) -> Workload:
    num_requests = 150 if fast else 400
    passes = 25 if fast else 15
    cells = len(_CHIP_COUNTS) * len(_LOAD_FACTORS)
    measured: Dict[str, float] = {}

    def fn():
        # A shared machine can throw a noise spike bigger than the
        # budget itself; a genuine regression shows up in every
        # attempt, so retrying twice keeps the gate sharp without
        # making it flaky.
        for _attempt in range(3):
            result = measure_overhead(num_requests, passes)
            if result["overhead_pct"] < OVERHEAD_BUDGET_PCT:
                break
        assert result["overhead_pct"] < OVERHEAD_BUDGET_PCT, (
            f"observability overhead {result['overhead_pct']:.2f}% "
            f"exceeds the {OVERHEAD_BUDGET_PCT}% budget in 3 attempts "
            f"(disabled {result['disabled_s'] * 1e3:.2f} ms, "
            f"enabled {result['enabled_s'] * 1e3:.2f} ms)")
        measured.update(result)
        return result

    # Each timed call replays every cell twice (off + on) per pass.
    return Workload(fn=fn, items=float(num_requests * cells * 2 * passes),
                    unit="requests", counters=lambda: dict(measured))
