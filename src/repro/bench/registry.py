"""Benchmark registry: ``@benchmark``-decorated workload factories.

A benchmark is a *factory*: it receives ``fast`` (smoke mode) and returns a
:class:`Workload` whose ``fn`` is the timed region.  Setup (building models,
compiling deployments, synthesising traces) happens inside the factory and is
therefore excluded from timing — the runner only times ``Workload.fn``.

The registry is keyed by unique benchmark name (``"<suite>.<what>"`` by
convention); duplicate registration is an error so two suites can never
silently shadow each other's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Workload",
    "Benchmark",
    "BenchmarkRegistry",
    "DEFAULT_REGISTRY",
    "benchmark",
    "load_suites",
]


@dataclass
class Workload:
    """What a benchmark factory hands the runner.

    Attributes
    ----------
    fn:
        The timed callable (no arguments).
    items:
        Work units performed per ``fn()`` call, used for throughput
        (``items`` divided by the best sampled per-call time).
    unit:
        Human label for ``items`` (``"images"``, ``"MACs"``, ``"layers"``).
    counters:
        Optional post-run sampler returning work counters (e.g. the PIM
        simulator's op/tile counters) — evidence of *work done*, not just
        seconds.  Must report the work of a **single** ``fn()`` call:
        reset any global counters inside ``fn`` itself, since the runner
        samples once after an unspecified number of warmup/autorange
        calls.
    """

    fn: Callable[[], Any]
    items: float = 1.0
    unit: str = "iters"
    counters: Optional[Callable[[], Dict[str, float]]] = None


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: name, suite, factory and run discipline."""

    name: str
    suite: str
    factory: Callable[[bool], Workload]
    description: str = ""
    warmup: Optional[int] = None     # None = runner default
    repeats: Optional[int] = None    # None = runner default
    min_sample_ms: Optional[float] = None
    """Autorange override (None = runner default).  Set to 0.0 for
    expensive one-pass workloads that must run exactly once per sample."""


@dataclass
class BenchmarkRegistry:
    """Mutable name -> :class:`Benchmark` mapping with dedup enforcement."""

    _benchmarks: Dict[str, Benchmark] = field(default_factory=dict)

    def register(self, bench: Benchmark) -> Benchmark:
        if bench.name in self._benchmarks:
            raise ValueError(
                f"benchmark {bench.name!r} is already registered "
                f"(suite {self._benchmarks[bench.name].suite!r})")
        self._benchmarks[bench.name] = bench
        return bench

    def get(self, name: str) -> Benchmark:
        try:
            return self._benchmarks[name]
        except KeyError:
            raise KeyError(f"no benchmark named {name!r}; "
                           f"known: {sorted(self._benchmarks)}") from None

    def names(self) -> List[str]:
        return sorted(self._benchmarks)

    def suites(self) -> List[str]:
        return sorted({b.suite for b in self._benchmarks.values()})

    def select(self, suites: Optional[List[str]] = None,
               names: Optional[List[str]] = None) -> List[Benchmark]:
        """Benchmarks filtered by suite and/or name, in name order."""
        if suites:
            unknown = set(suites) - set(self.suites())
            if unknown:
                raise KeyError(f"unknown suite(s) {sorted(unknown)}; "
                               f"known: {self.suites()}")
        picked = [self._benchmarks[n] for n in self.names()]
        if suites:
            picked = [b for b in picked if b.suite in suites]
        if names:
            for n in names:
                self.get(n)     # raise on unknown names
            picked = [b for b in picked if b.name in names]
        return picked

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks


DEFAULT_REGISTRY = BenchmarkRegistry()


def benchmark(name: str, suite: str, description: str = "",
              warmup: Optional[int] = None, repeats: Optional[int] = None,
              min_sample_ms: Optional[float] = None,
              registry: Optional[BenchmarkRegistry] = None):
    """Decorator registering ``factory(fast) -> Workload`` as a benchmark."""
    reg = registry if registry is not None else DEFAULT_REGISTRY

    def decorate(factory: Callable[[bool], Workload]):
        reg.register(Benchmark(name=name, suite=suite, factory=factory,
                               description=description, warmup=warmup,
                               repeats=repeats,
                               min_sample_ms=min_sample_ms))
        return factory

    return decorate


def load_suites() -> BenchmarkRegistry:
    """Import every first-class suite module (idempotent) and return the
    populated default registry."""
    from .suites import nn, obs, pim, pipeline, search, serve  # noqa: F401
    return DEFAULT_REGISTRY
