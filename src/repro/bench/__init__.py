"""repro.bench — unified benchmark harness and perf-trajectory tooling.

The measurement substrate every "make it faster" PR cites:

- :mod:`repro.bench.registry` — ``@benchmark``-registered workload
  factories, deduplicated by name;
- :mod:`repro.bench.runner` — warmup/repeat/perf_counter discipline,
  git-SHA + peak-RSS provenance;
- :mod:`repro.bench.results` — the versioned ``BENCH_<timestamp>.json``
  schema (wall times, throughput, work counters, environment);
- :mod:`repro.bench.compare` — baseline diffing with tolerance-banded
  verdicts, the CI regression gate;
- :mod:`repro.bench.suites` — first-class suites covering all four layers
  (nn autodiff, pim simulator, compile/export pipeline, serving runtime);
- :mod:`repro.bench.cli` — ``python -m repro bench [run|compare|list]``.
"""

from .compare import (
    CompareEntry,
    CompareReport,
    VERDICT_IMPROVEMENT,
    VERDICT_MISSING,
    VERDICT_NEW,
    VERDICT_REGRESSION,
    VERDICT_WITHIN_TOLERANCE,
    compare_runs,
)
from .registry import (
    Benchmark,
    BenchmarkRegistry,
    DEFAULT_REGISTRY,
    Workload,
    benchmark,
    load_suites,
)
from .results import (
    BENCH_FILE_PREFIX,
    BenchResult,
    BenchRun,
    SCHEMA_VERSION,
    latest_run_path,
    load_run,
    validate_run_dict,
    write_run,
)
from .runner import RunnerConfig, git_sha, peak_rss_kb, run_benchmark, run_suites

__all__ = [
    "Benchmark",
    "BenchmarkRegistry",
    "DEFAULT_REGISTRY",
    "Workload",
    "benchmark",
    "load_suites",
    "RunnerConfig",
    "run_benchmark",
    "run_suites",
    "git_sha",
    "peak_rss_kb",
    "SCHEMA_VERSION",
    "BENCH_FILE_PREFIX",
    "BenchResult",
    "BenchRun",
    "validate_run_dict",
    "write_run",
    "load_run",
    "latest_run_path",
    "compare_runs",
    "CompareEntry",
    "CompareReport",
    "VERDICT_REGRESSION",
    "VERDICT_IMPROVEMENT",
    "VERDICT_WITHIN_TOLERANCE",
    "VERDICT_NEW",
    "VERDICT_MISSING",
]
