"""Regression gating: diff a benchmark run against a committed baseline.

Comparison is per-benchmark on the headline wall time (the best — i.e.
minimum — per-call time of the run's repeats; see
:mod:`repro.bench.runner`).  When both runs carry a ``calibration_ms``
(the fixed reference workload timed alongside the suites), every current
wall time is first scaled by ``baseline.calibration_ms /
current.calibration_ms`` — machine-speed drift between the two runs is
uniform and cancels out, while a true code regression survives the
scaling.  With tolerance ``T`` (percent), the verdicts are:

- ``regression``       — current is more than ``T``% slower than baseline;
- ``improvement``      — current is more than ``T``% faster;
- ``within_tolerance`` — inside the noise band either way;
- ``new``              — benchmark has no baseline entry (informational);
- ``missing``          — baseline entry with no current result (reported
  loudly but non-fatal, so retiring a benchmark does not wedge CI — refresh
  the baseline instead).

Only ``regression`` fails the gate (:attr:`CompareReport.ok`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis.tables import Table
from .results import BenchRun

__all__ = [
    "VERDICT_REGRESSION",
    "VERDICT_IMPROVEMENT",
    "VERDICT_WITHIN_TOLERANCE",
    "VERDICT_NEW",
    "VERDICT_MISSING",
    "CompareEntry",
    "CompareReport",
    "compare_runs",
]

VERDICT_REGRESSION = "regression"
VERDICT_IMPROVEMENT = "improvement"
VERDICT_WITHIN_TOLERANCE = "within_tolerance"
VERDICT_NEW = "new"
VERDICT_MISSING = "missing"


@dataclass(frozen=True)
class CompareEntry:
    """One benchmark's baseline-vs-current comparison."""

    name: str
    suite: str
    baseline_ms: Optional[float]
    current_ms: Optional[float]
    delta_pct: Optional[float]      # +slower / -faster; None when unpaired
    verdict: str


@dataclass
class CompareReport:
    """Every per-benchmark verdict plus the gate decision."""

    entries: List[CompareEntry]
    tolerance_pct: float
    baseline_sha: Optional[str] = None
    current_sha: Optional[str] = None
    calibration_scale: Optional[float] = None
    """``baseline.calibration_ms / current.calibration_ms`` when both
    runs carry a calibration; ``None`` means raw wall times were
    compared."""

    @property
    def regressions(self) -> List[CompareEntry]:
        return [e for e in self.entries if e.verdict == VERDICT_REGRESSION]

    @property
    def improvements(self) -> List[CompareEntry]:
        return [e for e in self.entries if e.verdict == VERDICT_IMPROVEMENT]

    @property
    def missing(self) -> List[CompareEntry]:
        return [e for e in self.entries if e.verdict == VERDICT_MISSING]

    @property
    def ok(self) -> bool:
        """Gate verdict: fails only on a regression beyond tolerance."""
        return not self.regressions

    def render(self) -> str:
        if self.calibration_scale is not None:
            note = (f", deltas calibration-normalized x"
                    f"{self.calibration_scale:.3f}")
        else:
            note = ", raw wall times (no calibration in one of the runs)"
        table = Table(
            ["benchmark", "baseline_ms", "current_ms", "delta_pct",
             "verdict"],
            title=f"bench compare (tolerance +/-{self.tolerance_pct:g}%"
                  f"{note})")
        for entry in self.entries:
            table.add_dict_row({
                "benchmark": entry.name,
                "baseline_ms": _fmt(entry.baseline_ms),
                "current_ms": _fmt(entry.current_ms),
                "delta_pct": _fmt(entry.delta_pct, signed=True),
                "verdict": entry.verdict,
            })
        lines = [table.render()]
        if self.regressions:
            names = ", ".join(e.name for e in self.regressions)
            lines.append(f"FAIL: {len(self.regressions)} regression(s) "
                         f"beyond {self.tolerance_pct:g}%: {names}")
        else:
            lines.append("OK: no regressions beyond "
                         f"{self.tolerance_pct:g}% tolerance")
        return "\n".join(lines)


def _fmt(value: Optional[float], signed: bool = False) -> str:
    if value is None:
        return "-"
    return f"{value:+.1f}" if signed else f"{value:.3f}"


def compare_runs(baseline: BenchRun, current: BenchRun,
                 tolerance_pct: float = 25.0) -> CompareReport:
    """Diff ``current`` against ``baseline`` with a symmetric tolerance."""
    if tolerance_pct < 0:
        raise ValueError("tolerance_pct must be >= 0")
    scale: Optional[float] = None
    if baseline.calibration_ms and current.calibration_ms:
        if baseline.calibration_ms <= 0 or current.calibration_ms <= 0:
            raise ValueError("calibration_ms must be positive when present")
        scale = baseline.calibration_ms / current.calibration_ms
    entries: List[CompareEntry] = []
    current_by_name = {r.name: r for r in current.results}
    for base in baseline.results:
        cur = current_by_name.pop(base.name, None)
        if cur is None:
            entries.append(CompareEntry(
                name=base.name, suite=base.suite,
                baseline_ms=base.wall_time_ms, current_ms=None,
                delta_pct=None, verdict=VERDICT_MISSING))
            continue
        if base.wall_time_ms <= 0:
            raise ValueError(
                f"baseline entry {base.name!r} has non-positive wall time")
        adjusted = cur.wall_time_ms * (scale if scale is not None else 1.0)
        delta = (adjusted - base.wall_time_ms) / base.wall_time_ms * 100.0
        if delta > tolerance_pct:
            verdict = VERDICT_REGRESSION
        elif delta < -tolerance_pct:
            verdict = VERDICT_IMPROVEMENT
        else:
            verdict = VERDICT_WITHIN_TOLERANCE
        entries.append(CompareEntry(
            name=base.name, suite=base.suite,
            baseline_ms=base.wall_time_ms, current_ms=cur.wall_time_ms,
            delta_pct=delta, verdict=verdict))
    for cur in current_by_name.values():
        entries.append(CompareEntry(
            name=cur.name, suite=cur.suite, baseline_ms=None,
            current_ms=cur.wall_time_ms, delta_pct=None,
            verdict=VERDICT_NEW))
    return CompareReport(entries=entries, tolerance_pct=tolerance_pct,
                         baseline_sha=baseline.git_sha,
                         current_sha=current.git_sha,
                         calibration_scale=scale)
