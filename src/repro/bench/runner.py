"""Suite runner: warmup/repeat/timer discipline around registered workloads.

Discipline per benchmark:

1. the factory builds the workload (setup excluded from timing);
2. ``warmup`` untimed calls absorb first-touch effects (allocator growth,
   import side effects, cache fills);
3. a probe call sizes an inner loop so every timed sample spans at least
   ``min_sample_ms`` (timeit-style autorange: sub-millisecond workloads
   are repeated within one sample to amortize timer and scheduler noise);
4. ``repeats`` timed samples with ``time.perf_counter``; the *minimum*
   per-call time is the headline number — preemption and cache pollution
   only ever add time, so the min is the most reproducible statistic for
   regression gating;
5. work counters are sampled after the timed calls so every result records
   work done (requests served, MACs simulated), not just seconds.

On top of the per-benchmark discipline, :func:`run_suites` executes the
whole selected set for ``rounds`` interleaved passes and pools each
benchmark's samples across passes.  One pass is vulnerable to the machine
state it happened to land on (frequency scaling, a noisy neighbour burst);
samples spread over the whole invocation make the pooled min a stable
anchor for the regression gate.

Each run also times a fixed *calibration* workload (a pure
numpy-plus-Python reference loop that no repo change can speed up or slow
down) under the same discipline, recorded as ``calibration_ms``.  Machine
speed drifts by tens of percent across minutes on shared hardware — far
beyond any sane gate tolerance — but it drifts *uniformly*, so
:func:`repro.bench.compare.compare_runs` divides it out by scaling every
current wall time by ``baseline.calibration_ms / current.calibration_ms``
before applying the tolerance band.

Peak RSS comes from ``resource.getrusage`` — a process-wide high-water
mark, so per-benchmark values are monotone within a run; the run-level
value is the honest one for memory regressions.
"""

from __future__ import annotations

import gc
import math
import platform as platform_mod
import subprocess
import sys
import time
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Callable, List, Optional

from .registry import (
    Benchmark,
    BenchmarkRegistry,
    Workload,
    load_suites,
)
from .results import BenchResult, BenchRun

__all__ = [
    "RunnerConfig",
    "run_benchmark",
    "run_suites",
    "git_sha",
    "peak_rss_kb",
]

DEFAULT_WARMUP = 1
DEFAULT_REPEATS = 5
DEFAULT_ROUNDS = 3
DEFAULT_MIN_SAMPLE_MS = 10.0
MAX_INNER_LOOPS = 10_000


@dataclass(frozen=True)
class RunnerConfig:
    """Run discipline shared by every benchmark in one invocation."""

    fast: bool = False
    warmup: int = DEFAULT_WARMUP
    repeats: int = DEFAULT_REPEATS
    rounds: int = DEFAULT_ROUNDS
    min_sample_ms: float = DEFAULT_MIN_SAMPLE_MS
    timer: Callable[[], float] = time.perf_counter

    def __post_init__(self):
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.min_sample_ms < 0:
            raise ValueError("min_sample_ms must be >= 0")


def git_sha(repo_dir: Optional[str] = None) -> Optional[str]:
    """Current commit SHA, or ``None`` outside a git checkout."""
    cwd = repo_dir or str(Path(__file__).resolve().parent)
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                             capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def peak_rss_kb() -> Optional[int]:
    """Process peak resident set size in KiB (``None`` where unsupported)."""
    try:
        import resource
    except ImportError:                      # non-POSIX
        return None
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":             # macOS reports bytes
        rss //= 1024
    return int(rss)


def _calibration_workload() -> Workload:
    """Fixed reference load resembling the suites' numpy/Python mix."""
    import numpy as np
    a = np.full((64, 64), 1.0 / 64.0)

    def fn():
        total = 0.0
        b = a
        for _ in range(20):
            b = a @ b
            total += float(b[0, 0])
        return total

    return Workload(fn=fn, items=20.0, unit="matmuls")


CALIBRATION_BENCH = Benchmark(
    name="__calibration__", suite="__harness__",
    factory=lambda fast: _calibration_workload(),
    description="fixed reference workload for machine-speed normalization")


def run_benchmark(bench: Benchmark, config: RunnerConfig = RunnerConfig(),
                  workload: Optional[Workload] = None) -> BenchResult:
    """Execute one benchmark under the configured discipline.

    ``workload`` lets a caller reuse an already-built workload (setup can
    be expensive); by default the factory is invoked fresh.
    """
    if workload is None:
        workload = bench.factory(config.fast)
    warmup = bench.warmup if bench.warmup is not None else config.warmup
    repeats = bench.repeats if bench.repeats is not None else config.repeats
    min_sample_ms = (bench.min_sample_ms if bench.min_sample_ms is not None
                     else config.min_sample_ms)

    for _ in range(warmup):
        workload.fn()

    # Probe once to size the inner loop (autorange): sub-millisecond
    # workloads are batched until one timed sample spans min_sample_ms.
    start = config.timer()
    workload.fn()
    probe_ms = (config.timer() - start) * 1000.0
    inner = 1
    if probe_ms < min_sample_ms:
        inner = min(MAX_INNER_LOOPS,
                    max(1, math.ceil(min_sample_ms / max(probe_ms, 1e-6))))

    times_ms: List[float] = []
    if inner == 1:
        # The probe already is a full-discipline sample — reuse it so an
        # expensive one-shot benchmark (e.g. the serve sweep) is not run
        # twice for nothing.
        times_ms.append(probe_ms)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats - len(times_ms)):
            start = config.timer()
            for _ in range(inner):
                workload.fn()
            times_ms.append((config.timer() - start) * 1000.0 / inner)
    finally:
        if gc_was_enabled:
            gc.enable()

    counters = workload.counters() if workload.counters is not None else {}
    return BenchResult.from_times(
        name=bench.name, suite=bench.suite, times_ms=times_ms,
        items=workload.items, unit=workload.unit, counters=counters,
        peak_rss_kb=peak_rss_kb(), calls_per_repeat=inner)


def run_suites(suites: Optional[List[str]] = None,
               names: Optional[List[str]] = None,
               config: RunnerConfig = RunnerConfig(),
               registry: Optional[BenchmarkRegistry] = None,
               progress: Optional[Callable[[str], None]] = None) -> BenchRun:
    """Run the selected benchmarks (default: every registered suite)."""
    if registry is None:
        registry = load_suites()
    selected = registry.select(suites=suites, names=names)
    if not selected:
        raise ValueError("no benchmarks selected")

    # Expensive setup (building models, compiling deployments) is paid
    # once; only the timed discipline repeats across rounds.  The hidden
    # calibration benchmark runs inside every round so it samples the
    # same machine states as the real suites.
    workloads = {bench.name: bench.factory(config.fast)
                 for bench in selected}
    calibration_workload = CALIBRATION_BENCH.factory(config.fast)
    by_name: dict = {}
    calibration_samples: List[float] = []
    for round_index in range(config.rounds):
        calibration_samples.extend(run_benchmark(
            CALIBRATION_BENCH, config,
            workload=calibration_workload).wall_times_ms)
        for bench in selected:
            if progress is not None:
                tag = (f" (round {round_index + 1}/{config.rounds})"
                       if config.rounds > 1 else "")
                progress(f"[{bench.suite}] {bench.name}{tag} ...")
            by_name.setdefault(bench.name, []).append(
                run_benchmark(bench, config,
                              workload=workloads[bench.name]))

    results: List[BenchResult] = []
    for bench in selected:
        rounds = by_name[bench.name]
        last = rounds[-1]
        pooled: List[float] = []
        for partial in rounds:
            pooled.extend(partial.wall_times_ms)
        results.append(BenchResult.from_times(
            name=last.name, suite=last.suite, times_ms=pooled,
            items=last.items, unit=last.unit, counters=last.counters,
            peak_rss_kb=last.peak_rss_kb,
            calls_per_repeat=last.calls_per_repeat))

    return BenchRun(
        results=results,
        created_at=datetime.now().isoformat(timespec="seconds"),
        git_sha=git_sha(),
        python=platform_mod.python_version(),
        platform=platform_mod.platform(),
        fast=config.fast,
        warmup=config.warmup,
        repeats=config.repeats,
        rounds=config.rounds,
        calibration_ms=min(calibration_samples),
        peak_rss_kb=peak_rss_kb(),
    )
