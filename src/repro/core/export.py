"""Deployment manifest export: the artifact a PIM toolchain consumes.

After the EPIM flow (design -> train -> quantize), a real deployment hands
the accelerator a complete description of what to program: per layer, the
stored tensor dimensions, crossbar allocation, precision, the quantization
scales to configure the shift-add rescalers, the IFAT/IFRT/OFAT tables, and
whether channel wrapping is enabled.  :func:`export_manifest` produces that
description as a JSON-serialisable dict (and optionally writes it), tying
together the software and hardware halves of the reproduction.

Two manifest formats live here:

- ``epim-deployment-manifest/1`` (:func:`export_manifest`) — the
  epitome-layer programming description for a *runnable* converted model
  (quant scales, index tables); hardware-programming oriented.
- ``epim-deployment-manifest/2`` (:func:`export_deployments` /
  :func:`deployments_from_manifest`) — a complete, lossless round-trip of
  every :class:`~repro.pim.simulator.LayerDeployment` of a network plus its
  :class:`~repro.pim.config.HardwareConfig`.  This is the servable
  artifact: :class:`repro.serve.engine.ServingEngine` loads it back into
  per-layer deployments and simulates requests against them without
  re-running the designer.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union


from .. import nn
from ..models.specs import LayerSpec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.datapath import build_index_tables
from ..pim.mapping import map_matrix
from ..pim.simulator import LayerDeployment
from .designer import epitome_layers
from .equant import EpitomeQuantConfig, epitome_scales
from .layers import EpitomeConv2d

__all__ = [
    "export_manifest",
    "write_manifest",
    "manifest_summary",
    "export_deployments",
    "deployments_from_manifest",
    "load_manifest",
]

DEPLOYMENT_FORMAT = "epim-deployment-manifest/2"


def _layer_entry(name: str, module: EpitomeConv2d,
                 quant: Optional[EpitomeQuantConfig],
                 config: HardwareConfig,
                 include_tables: bool) -> Dict:
    shape = module.epitome_shape
    weight_bits = quant.bits if quant is not None else None
    alloc = map_matrix(shape.rows, shape.cols,
                       weight_bits if weight_bits is not None
                       else config.fp_equivalent_bits, config)
    entry = {
        "name": name,
        "type": "epitome_conv2d",
        "virtual_shape": list(module.plan.virtual_shape),
        "epitome_shape": list(shape.as_tuple()),
        "rows": shape.rows,
        "cols": shape.cols,
        "stride": module.stride,
        "padding": module.padding,
        "compression": module.compression,
        "weight_bits": weight_bits,
        "crossbars": {
            "row_groups": alloc.row_groups,
            "col_groups": alloc.col_groups,
            "count": alloc.num_crossbars,
            "utilization": alloc.utilization,
        },
        "wrapping_factor": module.plan.n_co_blocks,
        "activation_rounds": module.plan.rounds_per_position,
    }
    if quant is not None:
        scales, group_ids = epitome_scales(module, quant, config)
        entry["quantization"] = {
            "mode": quant.mode,
            "bits": quant.bits,
            "num_scale_groups": int(scales.size),
            "scales": [float(s) for s in scales],
        }
    if include_tables:
        tables = build_index_tables(module.plan, (0, 0))
        entry["index_tables"] = {
            "n_patches": tables.n_patches,
            "ifat": tables.ifat.tolist(),
            "ifrt_rows_enabled": [int(row.sum()) for row in tables.ifrt],
            "ofat": tables.ofat.tolist(),
        }
    return entry


def export_manifest(model: nn.Module,
                    quant: Optional[EpitomeQuantConfig] = None,
                    config: HardwareConfig = DEFAULT_CONFIG,
                    include_tables: bool = False) -> Dict:
    """Build the deployment manifest for every epitome layer of a model.

    Parameters
    ----------
    model:
        A (converted, trained) network containing
        :class:`~repro.core.layers.EpitomeConv2d` modules.
    quant:
        When given, per-layer quantization scales (the shift-add rescaler
        configuration) are computed and embedded.
    include_tables:
        Embed the full IFAT/OFAT contents (IFRT as enabled-row counts);
        large, so off by default.
    """
    layers = epitome_layers(model)
    entries: List[Dict] = [
        _layer_entry(name, module, quant, config, include_tables)
        for name, module in layers]
    total_xbars = sum(e["crossbars"]["count"] for e in entries)
    return {
        "format": "epim-deployment-manifest/1",
        "hardware": {
            "xbar_rows": config.xbar_rows,
            "xbar_cols": config.xbar_cols,
            "cell_bits": config.cell_bits,
            "dac_bits": config.dac_bits,
            "adc_bits": config.adc_bits,
        },
        "num_epitome_layers": len(entries),
        "total_crossbars": total_xbars,
        "layers": entries,
    }


def write_manifest(manifest: Dict, path: Union[str, Path]) -> None:
    """Serialise a manifest to JSON on disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2))


def load_manifest(path: Union[str, Path]) -> Dict:
    """Read a manifest (either format) back from JSON."""
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# Format 2: full LayerDeployment round-trip (the servable artifact)
# ----------------------------------------------------------------------

def _spec_entry(spec: LayerSpec) -> Dict:
    return {
        "name": spec.name,
        "kind": spec.kind,
        "in_channels": spec.in_channels,
        "out_channels": spec.out_channels,
        "kernel_size": list(spec.kernel_size),
        "stride": spec.stride,
        "in_size": list(spec.in_size),
        "out_size": list(spec.out_size),
        "index": spec.index,
    }


def _spec_from_entry(entry: Dict) -> LayerSpec:
    return LayerSpec(
        name=entry["name"],
        kind=entry["kind"],
        in_channels=entry["in_channels"],
        out_channels=entry["out_channels"],
        kernel_size=tuple(entry["kernel_size"]),
        stride=entry["stride"],
        in_size=tuple(entry["in_size"]),
        out_size=tuple(entry["out_size"]),
        index=entry.get("index", 0),
    )


def export_deployments(deployments: Sequence[LayerDeployment],
                       config: HardwareConfig,
                       name: str = "model") -> Dict:
    """Serialise a full per-layer deployment list (format 2).

    ``config`` is required and MUST be the :class:`HardwareConfig` the
    deployments were mapped with — it is embedded in the manifest and a
    :class:`~repro.pim.simulator.LayerDeployment` carries no config of its
    own, so a mismatch here would silently replay timings for hardware
    the model was never mapped to.

    The result is lossless: :func:`deployments_from_manifest` rebuilds
    byte-identical :class:`~repro.pim.simulator.LayerDeployment` records
    and the hardware config, so ``simulate_network`` of the round-trip
    matches the original exactly.
    """
    entries: List[Dict] = []
    for dep in deployments:
        alloc = map_matrix(dep.stored_rows, dep.stored_cols,
                           dep.resolved_weight_bits(config), config)
        entries.append({
            "spec": _spec_entry(dep.spec),
            "style": dep.style,
            "weight_bits": dep.weight_bits,
            "activation_bits": dep.activation_bits,
            "stored_rows": dep.stored_rows,
            "stored_cols": dep.stored_cols,
            "exec_rounds": dep.exec_rounds,
            "exec_rows": dep.exec_rows,
            "exec_cols": dep.exec_cols,
            "exec_cells": dep.exec_cells,
            "n_co_blocks": dep.n_co_blocks,
            "n_ci_blocks": dep.n_ci_blocks,
            "use_wrapping": dep.use_wrapping,
            "crossbars": alloc.num_crossbars,
        })
    return {
        "format": DEPLOYMENT_FORMAT,
        "model": name,
        "hardware": dataclasses.asdict(config),
        "num_layers": len(entries),
        "total_crossbars": sum(e["crossbars"] for e in entries),
        "layers": entries,
    }


def deployments_from_manifest(manifest: Union[Dict, str, Path]
                              ) -> Tuple[List[LayerDeployment], HardwareConfig]:
    """Rebuild the deployment list and hardware config from a format-2
    manifest (dict or path to a JSON file)."""
    if not isinstance(manifest, dict):
        manifest = load_manifest(manifest)
    fmt = manifest.get("format")
    if fmt != DEPLOYMENT_FORMAT:
        raise ValueError(
            f"expected a {DEPLOYMENT_FORMAT!r} manifest, got {fmt!r} "
            "(format-1 manifests describe epitome programming only and "
            "cannot be replayed; re-export with export_deployments)")
    config = HardwareConfig(**manifest["hardware"])
    deployments = [
        LayerDeployment(
            spec=_spec_from_entry(entry["spec"]),
            style=entry["style"],
            weight_bits=entry["weight_bits"],
            activation_bits=entry["activation_bits"],
            stored_rows=entry["stored_rows"],
            stored_cols=entry["stored_cols"],
            exec_rounds=entry["exec_rounds"],
            exec_rows=entry["exec_rows"],
            exec_cols=entry["exec_cols"],
            exec_cells=entry["exec_cells"],
            n_co_blocks=entry["n_co_blocks"],
            n_ci_blocks=entry["n_ci_blocks"],
            use_wrapping=entry["use_wrapping"],
        )
        for entry in manifest["layers"]]
    return deployments, config


def manifest_summary(manifest: Dict) -> str:
    """Human-readable one-screen summary of a manifest (either format)."""
    if manifest.get("format") == DEPLOYMENT_FORMAT:
        return _deployment_manifest_summary(manifest)
    lines = [
        f"EPIM deployment manifest ({manifest['num_epitome_layers']} epitome "
        f"layers, {manifest['total_crossbars']} crossbars)",
        f"hardware: {manifest['hardware']['xbar_rows']}x"
        f"{manifest['hardware']['xbar_cols']} arrays, "
        f"{manifest['hardware']['cell_bits']}-bit cells",
    ]
    for entry in manifest["layers"]:
        quant = entry.get("quantization")
        quant_text = (f" W{quant['bits']} {quant['mode']} "
                      f"({quant['num_scale_groups']} scales)" if quant else "")
        lines.append(
            f"  {entry['name']:<24s} {entry['rows']}x{entry['cols']} "
            f"-> {entry['crossbars']['count']} XBs, "
            f"{entry['activation_rounds']} rounds, "
            f"r={entry['wrapping_factor']}{quant_text}")
    return "\n".join(lines)


def _deployment_manifest_summary(manifest: Dict) -> str:
    """Format-2 rendering: every layer with style/precision/crossbars."""
    hw = manifest["hardware"]
    lines = [
        f"EPIM servable deployment ({manifest.get('model', 'model')}: "
        f"{manifest['num_layers']} layers, "
        f"{manifest['total_crossbars']} crossbars)",
        f"hardware: {hw['xbar_rows']}x{hw['xbar_cols']} arrays, "
        f"{hw['cell_bits']}-bit cells, {hw['tiles_per_chip']} tiles/chip",
    ]
    for entry in manifest["layers"]:
        bits = entry["weight_bits"]
        lines.append(
            f"  {entry['spec']['name']:<24s} {entry['style']:<7s} "
            f"{entry['stored_rows']}x{entry['stored_cols']} "
            f"W{bits if bits is not None else 'fp'}"
            f"A{entry['activation_bits']} -> {entry['crossbars']} XBs, "
            f"{entry['exec_rounds']} rounds"
            f"{' [wrap]' if entry['use_wrapping'] else ''}")
    return "\n".join(lines)
