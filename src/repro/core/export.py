"""Deployment manifest export: the artifact a PIM toolchain consumes.

After the EPIM flow (design -> train -> quantize), a real deployment hands
the accelerator a complete description of what to program: per layer, the
stored tensor dimensions, crossbar allocation, precision, the quantization
scales to configure the shift-add rescalers, the IFAT/IFRT/OFAT tables, and
whether channel wrapping is enabled.  :func:`export_manifest` produces that
description as a JSON-serialisable dict (and optionally writes it), tying
together the software and hardware halves of the reproduction.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .. import nn
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.datapath import build_index_tables
from ..pim.mapping import map_matrix
from .designer import epitome_layers
from .equant import EpitomeQuantConfig, epitome_scales
from .layers import EpitomeConv2d

__all__ = ["export_manifest", "write_manifest", "manifest_summary"]


def _layer_entry(name: str, module: EpitomeConv2d,
                 quant: Optional[EpitomeQuantConfig],
                 config: HardwareConfig,
                 include_tables: bool) -> Dict:
    shape = module.epitome_shape
    weight_bits = quant.bits if quant is not None else None
    alloc = map_matrix(shape.rows, shape.cols,
                       weight_bits if weight_bits is not None
                       else config.fp_equivalent_bits, config)
    entry = {
        "name": name,
        "type": "epitome_conv2d",
        "virtual_shape": list(module.plan.virtual_shape),
        "epitome_shape": list(shape.as_tuple()),
        "rows": shape.rows,
        "cols": shape.cols,
        "stride": module.stride,
        "padding": module.padding,
        "compression": module.compression,
        "weight_bits": weight_bits,
        "crossbars": {
            "row_groups": alloc.row_groups,
            "col_groups": alloc.col_groups,
            "count": alloc.num_crossbars,
            "utilization": alloc.utilization,
        },
        "wrapping_factor": module.plan.n_co_blocks,
        "activation_rounds": module.plan.rounds_per_position,
    }
    if quant is not None:
        scales, group_ids = epitome_scales(module, quant, config)
        entry["quantization"] = {
            "mode": quant.mode,
            "bits": quant.bits,
            "num_scale_groups": int(scales.size),
            "scales": [float(s) for s in scales],
        }
    if include_tables:
        tables = build_index_tables(module.plan, (0, 0))
        entry["index_tables"] = {
            "n_patches": tables.n_patches,
            "ifat": tables.ifat.tolist(),
            "ifrt_rows_enabled": [int(row.sum()) for row in tables.ifrt],
            "ofat": tables.ofat.tolist(),
        }
    return entry


def export_manifest(model: nn.Module,
                    quant: Optional[EpitomeQuantConfig] = None,
                    config: HardwareConfig = DEFAULT_CONFIG,
                    include_tables: bool = False) -> Dict:
    """Build the deployment manifest for every epitome layer of a model.

    Parameters
    ----------
    model:
        A (converted, trained) network containing
        :class:`~repro.core.layers.EpitomeConv2d` modules.
    quant:
        When given, per-layer quantization scales (the shift-add rescaler
        configuration) are computed and embedded.
    include_tables:
        Embed the full IFAT/OFAT contents (IFRT as enabled-row counts);
        large, so off by default.
    """
    layers = epitome_layers(model)
    entries: List[Dict] = [
        _layer_entry(name, module, quant, config, include_tables)
        for name, module in layers]
    total_xbars = sum(e["crossbars"]["count"] for e in entries)
    return {
        "format": "epim-deployment-manifest/1",
        "hardware": {
            "xbar_rows": config.xbar_rows,
            "xbar_cols": config.xbar_cols,
            "cell_bits": config.cell_bits,
            "dac_bits": config.dac_bits,
            "adc_bits": config.adc_bits,
        },
        "num_epitome_layers": len(entries),
        "total_crossbars": total_xbars,
        "layers": entries,
    }


def write_manifest(manifest: Dict, path: Union[str, Path]) -> None:
    """Serialise a manifest to JSON on disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2))


def manifest_summary(manifest: Dict) -> str:
    """Human-readable one-screen summary of a manifest."""
    lines = [
        f"EPIM deployment manifest ({manifest['num_epitome_layers']} epitome "
        f"layers, {manifest['total_crossbars']} crossbars)",
        f"hardware: {manifest['hardware']['xbar_rows']}x"
        f"{manifest['hardware']['xbar_cols']} arrays, "
        f"{manifest['hardware']['cell_bits']}-bit cells",
    ]
    for entry in manifest["layers"]:
        quant = entry.get("quantization")
        quant_text = (f" W{quant['bits']} {quant['mode']} "
                      f"({quant['num_scale_groups']} scales)" if quant else "")
        lines.append(
            f"  {entry['name']:<24s} {entry['rows']}x{entry['cols']} "
            f"-> {entry['crossbars']['count']} XBs, "
            f"{entry['activation_rounds']} rounds, "
            f"r={entry['wrapping_factor']}{quant_text}")
    return "\n".join(lines)
