"""Trainable epitome layers for :mod:`repro.nn` networks.

:class:`EpitomeConv2d` is the drop-in replacement for
:class:`repro.nn.Conv2d` that the EPIM designer installs: it owns the small
epitome parameter tensor, reconstructs the virtual convolution weight
through the plan's index map on every forward pass (a pure gather, so the
backward pass scatter-adds gradients into the shared epitome entries —
PyTorch would do exactly the same through advanced indexing), and then runs
the standard convolution.

The layer also exposes the hooks the rest of the pipeline needs:

- ``plan`` for the PIM datapath/index tables and performance model,
- ``repetition_counts()`` / ``overlap_mask()`` for the overlap-weighted
  quantization of Eqs. 4-5,
- ``quantize_hooks`` — an optional fake-quant callable applied to the
  *epitome* (not the reconstructed weight), matching the paper's "quantize
  the epitome" formulation.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.modules import Parameter
from .epitome import EpitomePlan, EpitomeShape, build_plan

__all__ = ["EpitomeConv2d", "EpitomeLinear"]


class EpitomeConv2d(nn.Module):
    """Convolution whose weight is reconstructed from an epitome.

    Parameters
    ----------
    in_channels / out_channels / kernel_size / stride / padding / bias:
        Same meaning as :class:`repro.nn.Conv2d` — the *virtual* convolution
        the layer emulates.
    epitome_shape:
        The compact parameter tensor's shape.  Must be compatible with the
        virtual weight (``eo <= out_channels``, ``ei <= in_channels``,
        spatial map at least kernel-sized).
    rng:
        Initialisation generator.  The epitome is initialised so that the
        *reconstructed* weight matches Kaiming statistics (fan-in of the
        virtual convolution).
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size, stride: int = 1, padding: int = 0,
                 bias: bool = True, *,
                 epitome_shape: EpitomeShape,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) \
            else kernel_size
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.epitome_shape = epitome_shape
        self.plan: EpitomePlan = build_plan(
            (out_channels, in_channels, kh, kw), epitome_shape)

        generator = rng if rng is not None else np.random.default_rng(0)
        fan_in = in_channels * kh * kw
        std = math.sqrt(2.0) / math.sqrt(fan_in)
        self.epitome = Parameter(
            (generator.standard_normal(epitome_shape.as_tuple()) * std
             ).astype(np.float32),
            name="epitome")
        if bias:
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(
                generator.uniform(-bound, bound, size=out_channels
                                  ).astype(np.float32),
                name="epitome.bias")
        else:
            self.bias = None
        # Optional fake-quantization applied to the epitome before
        # reconstruction (installed by the quantization pipeline).
        self.quantize_hook: Optional[Callable[[nn.Tensor], nn.Tensor]] = None

    # ------------------------------------------------------------------
    def virtual_weight(self) -> nn.Tensor:
        """Reconstruct the full convolution weight (differentiable gather)."""
        epitome: nn.Tensor = self.epitome
        if self.quantize_hook is not None:
            epitome = self.quantize_hook(epitome)
        return epitome.take_flat(self.plan.index_map)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        weight = self.virtual_weight()
        return F.conv2d(x, weight, self.bias,
                        stride=self.stride, padding=self.padding)

    # ------------------------------------------------------------------
    def repetition_counts(self) -> np.ndarray:
        """Per-element repetition counts of the epitome (Fig. 2c)."""
        return self.plan.repetition_counts()

    def overlap_mask(self, quantile: float = 0.5) -> np.ndarray:
        """Mask of the highly-repeated region used by Eqs. 4-5."""
        return self.plan.overlap_mask(quantile)

    @property
    def compression(self) -> float:
        """Parameter compression of this layer versus the virtual conv."""
        return self.plan.compression

    def num_epitome_params(self) -> int:
        return self.epitome.data.size

    def load_from_conv(self, conv: nn.Conv2d) -> None:
        """Initialise the epitome from a trained convolution.

        Every epitome element is set to the *mean* of the virtual-weight
        positions it reconstructs (the least-squares solution of
        ``E.flat[index_map] ~= W``), which preserves most of the trained
        signal and is the standard warm start for weight-sharing operators.
        """
        if conv.weight.data.shape != self.plan.virtual_shape:
            raise ValueError(
                f"conv weight {conv.weight.data.shape} does not match plan "
                f"{self.plan.virtual_shape}")
        flat_idx = self.plan.index_map.ravel()
        sums = np.bincount(flat_idx, weights=conv.weight.data.ravel(),
                           minlength=self.epitome.data.size)
        counts = np.bincount(flat_idx, minlength=self.epitome.data.size)
        counts = np.maximum(counts, 1)
        self.epitome.data = (sums / counts).reshape(
            self.epitome.data.shape).astype(np.float32)
        if self.bias is not None and conv.bias is not None:
            self.bias.data = conv.bias.data.copy()

    def __repr__(self) -> str:
        return (f"EpitomeConv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"epitome={self.epitome_shape.rows}x{self.epitome_shape.cols}, "
                f"compression={self.compression:.2f}x)")


class EpitomeLinear(nn.Module):
    """Linear layer whose weight matrix is reconstructed from an epitome.

    Uses the same plan machinery with a 1x1 "kernel": the virtual weight is
    ``(out_features, in_features, 1, 1)``.  Provided for completeness (the
    paper keeps classifier heads dense; our experiments do too).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 *, epitome_shape: EpitomeShape,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.plan = build_plan((out_features, in_features, 1, 1), epitome_shape)
        self.epitome_shape = epitome_shape

        generator = rng if rng is not None else np.random.default_rng(0)
        bound = 1.0 / math.sqrt(in_features)
        self.epitome = Parameter(
            generator.uniform(-bound, bound,
                              size=epitome_shape.as_tuple()).astype(np.float32),
            name="epitome_linear")
        if bias:
            self.bias = Parameter(
                generator.uniform(-bound, bound, size=out_features
                                  ).astype(np.float32),
                name="epitome_linear.bias")
        else:
            self.bias = None
        self.quantize_hook: Optional[Callable[[nn.Tensor], nn.Tensor]] = None

    def virtual_weight(self) -> nn.Tensor:
        epitome: nn.Tensor = self.epitome
        if self.quantize_hook is not None:
            epitome = self.quantize_hook(epitome)
        gathered = epitome.take_flat(self.plan.index_map)
        return gathered.reshape(self.out_features, self.in_features)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return F.linear(x, self.virtual_weight(), self.bias)

    @property
    def compression(self) -> float:
        return self.plan.compression

    def __repr__(self) -> str:
        return (f"EpitomeLinear({self.in_features}, {self.out_features}, "
                f"epitome={self.epitome_shape.rows}x{self.epitome_shape.cols})")
