"""Epitome-aware quantization (paper section 4.2, Eqs. 4-5; Table 2).

Two adjustments over naive per-layer quantization:

1. **Per-crossbar scaling factors** — crossbars compute in parallel, so one
   scaling factor per crossbar tile costs nothing at runtime (each tile's
   ADC output is rescaled independently by the shift-add stage) while
   shrinking every tile's dynamic range.  The epitome matrix
   (rows = ``ei*eh*ew``, cols = ``eo``) is partitioned into
   ``xbar_rows x xbar_cols`` tiles; elements get the scale of their tile.

2. **Overlap-weighted ranges** — the sampler repeats *interior* epitome
   elements more often than border ones (Fig. 2c); quantization error there
   is amplified by the repetition count.  The clipping range is therefore a
   weighted blend of the overlap region's min/max and the rest's (Eqs. 4-5):

       alpha = w1 * min(overlap) + w2 * min(others)
       beta  = w1 * max(overlap) + w2 * max(others)

   With ``w1 > w2`` the range hugs the (usually narrower) high-repetition
   region, spending resolution where errors are multiplied.

Quantization modes match Table 2's columns:
``naive`` -> ``crossbar`` (adjust with crossbars) -> ``crossbar_overlap``
(additionally adjusted with overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import nn
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..quant.quantizer import compute_qparams, fake_quantize_per_group
from .layers import EpitomeConv2d

__all__ = [
    "EpitomeQuantConfig",
    "crossbar_group_ids",
    "weighted_range",
    "epitome_scales",
    "make_epitome_quant_hook",
    "apply_epitome_quantization",
    "remove_epitome_quantization",
]

MODES = ("naive", "crossbar", "crossbar_overlap")


@dataclass(frozen=True)
class EpitomeQuantConfig:
    """How to quantize a model's epitomes.

    Attributes
    ----------
    bits:
        Weight bit width (or per-layer override via
        :func:`apply_epitome_quantization`'s ``bit_map``).
    mode:
        ``"naive"`` | ``"crossbar"`` | ``"crossbar_overlap"`` (Table 2).
    w1 / w2:
        The Eq. 4-5 blend weights for the overlap region vs the rest.
    overlap_quantile:
        Repetition-count quantile that defines the overlap region.
    """

    bits: int = 3
    mode: str = "crossbar_overlap"
    w1: float = 0.7
    w2: float = 0.3
    overlap_quantile: float = 0.5

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.bits < 2:
            raise ValueError("weight quantization below 2 bits is not supported")


def crossbar_group_ids(epitome_shape, config: HardwareConfig = DEFAULT_CONFIG
                       ) -> np.ndarray:
    """Assign every epitome element to its crossbar tile.

    The epitome maps to crossbars as rows = ``(ei, eh, ew)`` raster,
    cols = ``eo`` (section 4.1); tiles are ``xbar_rows x xbar_cols`` blocks
    of that matrix.  Returns an int array of the epitome's 4-D shape with
    contiguous group ids.
    """
    eo, ei, eh, ew = epitome_shape.as_tuple()
    rows = ei * eh * ew
    row_group = np.arange(rows) // config.xbar_rows          # (rows,)
    col_group = np.arange(eo) // config.xbar_cols            # (eo,)
    n_col_groups = int(col_group.max()) + 1
    grid = row_group[:, None] * n_col_groups + col_group[None, :]
    # grid is (rows, eo) = matrix layout; transpose back to (eo, ei, eh, ew).
    return grid.T.reshape(eo, ei, eh, ew)


def weighted_range(values: np.ndarray, overlap_mask: np.ndarray,
                   w1: float, w2: float) -> Tuple[float, float]:
    """Eqs. 4-5: blend min/max of the overlap region and the rest.

    Degenerates gracefully: if either region is empty the other's min/max
    is used directly.
    """
    overlap = values[overlap_mask]
    others = values[~overlap_mask]
    if overlap.size == 0:
        return float(others.min()), float(others.max())
    if others.size == 0:
        return float(overlap.min()), float(overlap.max())
    alpha = w1 * float(overlap.min()) + w2 * float(others.min())
    beta = w1 * float(overlap.max()) + w2 * float(others.max())
    if beta < alpha:
        alpha, beta = beta, alpha
    return alpha, beta


def epitome_scales(layer: EpitomeConv2d, quant: EpitomeQuantConfig,
                   config: HardwareConfig = DEFAULT_CONFIG
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Compute per-group scales for one epitome layer.

    Returns ``(scales, group_ids)`` where ``scales`` is indexed by the ids.
    ``naive`` mode uses a single group covering the whole epitome; the
    crossbar modes use one group per crossbar tile; ``crossbar_overlap``
    additionally applies the Eq. 4-5 weighted range inside every tile.
    """
    values = layer.epitome.data
    if quant.mode == "naive":
        group_ids = np.zeros(values.shape, dtype=np.int64)
        params = compute_qparams(float(values.min()), float(values.max()),
                                 quant.bits, signed=True)
        return np.array([params.scale]), group_ids

    group_ids = crossbar_group_ids(layer.epitome_shape, config)
    n_groups = int(group_ids.max()) + 1
    overlap = layer.overlap_mask(quant.overlap_quantile) \
        if quant.mode == "crossbar_overlap" else None

    scales = np.empty(n_groups, dtype=np.float64)
    for g in range(n_groups):
        in_group = group_ids == g
        group_values = values[in_group]
        if quant.mode == "crossbar_overlap":
            lo, hi = weighted_range(group_values, overlap[in_group],
                                    quant.w1, quant.w2)
        else:
            lo, hi = float(group_values.min()), float(group_values.max())
        scales[g] = compute_qparams(lo, hi, quant.bits, signed=True).scale
    return scales, group_ids


def make_epitome_quant_hook(layer: EpitomeConv2d, quant: EpitomeQuantConfig,
                            config: HardwareConfig = DEFAULT_CONFIG):
    """Build the fake-quant hook installed on ``layer.quantize_hook``.

    Scales are frozen at installation time (recompute by re-applying after
    large weight drift; the QAT recipes in :mod:`repro.core.pipeline` do).
    """
    scales, group_ids = epitome_scales(layer, quant, config)

    def hook(epitome: nn.Tensor) -> nn.Tensor:
        return fake_quantize_per_group(epitome, scales, group_ids,
                                       quant.bits, signed=True)

    return hook


def apply_epitome_quantization(model: nn.Module, quant: EpitomeQuantConfig,
                               bit_map: Optional[Dict[str, int]] = None,
                               config: HardwareConfig = DEFAULT_CONFIG
                               ) -> int:
    """Install fake-quant hooks on every epitome layer of a model.

    Parameters
    ----------
    bit_map:
        Optional per-layer bit override (module path -> bits), e.g. the
        HAWQ mixed-precision allocation behind the W3mp rows.

    Returns the number of layers quantized.
    """
    count = 0
    for name, module in model.named_modules():
        if not isinstance(module, EpitomeConv2d):
            continue
        layer_quant = quant
        if bit_map is not None and name in bit_map:
            layer_quant = EpitomeQuantConfig(
                bits=bit_map[name], mode=quant.mode,
                w1=quant.w1, w2=quant.w2,
                overlap_quantile=quant.overlap_quantile)
        module.quantize_hook = make_epitome_quant_hook(module, layer_quant,
                                                       config)
        count += 1
    return count


def remove_epitome_quantization(model: nn.Module) -> int:
    """Remove fake-quant hooks (back to full precision); returns count."""
    count = 0
    for _, module in model.named_modules():
        if isinstance(module, EpitomeConv2d) and module.quantize_hook is not None:
            module.quantize_hook = None
            count += 1
    return count
