"""Compatibility shim — the search engine lives in :mod:`repro.search`.

The evolutionary layer-wise design (paper section 5.2, Algorithm 1) grew
into its own package with a vectorized population evaluator, a Pareto
multi-objective mode and parallel restarts; see
:mod:`repro.search.grid`, :mod:`repro.search.evolve` and
:mod:`repro.search.pareto`.  Everything historically importable from
``repro.core.search`` resolves here unchanged.
"""

from ..search.grid import (        # noqa: F401
    DEFAULT_CANDIDATES,
    OBJECTIVES,
    Candidate,
    CandidateGrid,
    EvalResult,
    GridMatrices,
    PopulationEval,
    build_candidate_grid,
    build_matrices,
    decode_genome,
    encode_genome,
    evaluate_assignment,
    evaluate_population,
    population_rewards,
)
from ..search.evolve import (      # noqa: F401
    EvoSearchConfig,
    SearchResult,
    _evolution_search_once,
    _reward,
    evolution_search,
    initial_population,
)
from ..search.pareto import (      # noqa: F401
    ParetoPoint,
    ParetoResult,
    crowding_distance,
    non_dominated_mask,
    pareto_search,
)

__all__ = [
    "CandidateGrid",
    "DEFAULT_CANDIDATES",
    "EvoSearchConfig",
    "SearchResult",
    "ParetoResult",
    "evolution_search",
    "pareto_search",
    "evaluate_assignment",
    "build_candidate_grid",
]
