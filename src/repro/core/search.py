"""Evolutionary layer-wise epitome design (paper section 5.2, Algorithm 1).

Each individual in the population is a per-layer epitome choice (one
candidate per layer out of a candidate set ``C``; the full design space is
``N^l`` — the paper quotes 20,676,608 combinations for its grid).  Fitness
follows Eqs. 6-7:

    Reward = m / Latency(E)    or    m / Energy(E),
    m = 0 if #Crossbar(E) > Budget else 1

so any individual over the crossbar budget scores below every feasible one.
Selection keeps the top individuals as parents; mutation re-rolls a random
subset of layers to random candidates (Algorithm 1 lines 9-14).

Per-layer hardware results are cached: a layer's (crossbars, latency,
dynamic energy) depend only on its own deployment, so an individual is
evaluated by summing cached per-layer numbers and adding the network-level
static-leakage term — thousands of generations cost seconds instead of
hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.specs import NetworkSpec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import baseline_deployment, epitome_deployment_from_plan, simulate_layer
from .designer import EpitomeAssignment, choose_epitome_shape
from .epitome import build_plan

__all__ = [
    "CandidateGrid",
    "DEFAULT_CANDIDATES",
    "EvoSearchConfig",
    "SearchResult",
    "evolution_search",
    "evaluate_assignment",
]

# A candidate is a (rows, cols) epitome description or None (keep conv).
Candidate = Optional[Tuple[int, int]]

DEFAULT_CANDIDATES: List[Candidate] = [
    None,
    (2048, 512), (2048, 256),
    (1024, 512), (1024, 256), (1024, 128),
    (512, 256), (512, 128),
    (256, 128), (256, 64),
]


@dataclass
class CandidateGrid:
    """Valid candidates per layer, plus cached per-layer hardware results."""

    spec: NetworkSpec
    candidates: Dict[str, List[Candidate]]
    # (layer name, candidate) -> (crossbars, latency_ns, dynamic_energy_pj)
    cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]]

    @property
    def design_space_size(self) -> int:
        size = 1
        for options in self.candidates.values():
            size *= len(options)
        return size


def build_candidate_grid(spec: NetworkSpec,
                         candidates: Sequence[Candidate] = tuple(DEFAULT_CANDIDATES),
                         weight_bits: Optional[int] = None,
                         activation_bits: Optional[int] = None,
                         use_wrapping: bool = False,
                         config: HardwareConfig = DEFAULT_CONFIG,
                         lut: ComponentLUT = DEFAULT_LUT) -> CandidateGrid:
    """Enumerate valid candidates per layer and pre-simulate each one."""
    per_layer: Dict[str, List[Candidate]] = {}
    cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]] = {}
    for layer in spec:
        options: List[Candidate] = [None]
        report = simulate_layer(baseline_deployment(
            layer, weight_bits=weight_bits, activation_bits=activation_bits,
            config=config), config, lut)
        cache[(layer.name, None)] = (report.num_crossbars, report.latency_ns,
                                     report.energy_pj)
        if layer.kind == "conv":
            for cand in candidates:
                if cand is None:
                    continue
                shape = choose_epitome_shape(layer, cand[0], cand[1], config)
                if shape is None:
                    continue
                plan = build_plan(
                    (layer.out_channels, layer.in_channels, *layer.kernel_size),
                    shape, with_index_map=False)
                dep = epitome_deployment_from_plan(
                    layer, plan, weight_bits=weight_bits,
                    activation_bits=activation_bits,
                    use_wrapping=use_wrapping, config=config)
                report = simulate_layer(dep, config, lut)
                options.append(cand)
                cache[(layer.name, cand)] = (report.num_crossbars,
                                             report.latency_ns,
                                             report.energy_pj)
        per_layer[layer.name] = options
    return CandidateGrid(spec=spec, candidates=per_layer, cache=cache)


@dataclass(frozen=True)
class EvalResult:
    """Aggregated hardware numbers for one individual."""

    crossbars: int
    latency_ms: float
    energy_mj: float

    @property
    def edp(self) -> float:
        return self.latency_ms * self.energy_mj


def evaluate_assignment(grid: CandidateGrid, genome: Sequence[Candidate],
                        lut: ComponentLUT = DEFAULT_LUT) -> EvalResult:
    """Sum cached per-layer results + the network-level static energy."""
    xbars = 0
    latency_ns = 0.0
    dynamic_pj = 0.0
    for layer, cand in zip(grid.spec, genome):
        cell = grid.cache[(layer.name, cand)]
        xbars += cell[0]
        latency_ns += cell[1]
        dynamic_pj += cell[2]
    latency_ms = latency_ns / 1e6
    static_mj = (lut.p_leak_per_xbar_uw * xbars * latency_ms * 1e-6
                 * lut.energy_scale)
    return EvalResult(crossbars=xbars, latency_ms=latency_ms,
                      energy_mj=dynamic_pj / 1e9 + static_mj)


@dataclass(frozen=True)
class EvoSearchConfig:
    """Hyper-parameters of Algorithm 1."""

    population_size: int = 64
    iterations: int = 60
    num_parents: int = 16
    mutation_layers: int = 3      # layers re-rolled per mutation
    objective: str = "latency"    # "latency" | "energy" | "edp"
    seed: int = 0
    restarts: int = 3             # independent runs; best one wins


@dataclass
class SearchResult:
    """Output of the evolutionary search."""

    assignment: EpitomeAssignment
    genome: List[Candidate]
    eval: EvalResult
    history: List[float] = field(default_factory=list)
    feasible: bool = True


def _reward(result: EvalResult, budget: Optional[int], objective: str) -> float:
    """Eqs. 6-7: inverse objective, gated to 0 above the crossbar budget."""
    if budget is not None and result.crossbars > budget:
        return 0.0
    if objective == "latency":
        value = result.latency_ms
    elif objective == "energy":
        value = result.energy_mj
    elif objective == "edp":
        value = result.edp
    else:
        raise ValueError(f"unknown objective {objective!r}")
    return 1.0 / value if value > 0 else 0.0


def evolution_search(grid: CandidateGrid,
                     crossbar_budget: Optional[int],
                     search: EvoSearchConfig = EvoSearchConfig(),
                     lut: ComponentLUT = DEFAULT_LUT) -> SearchResult:
    """Run Algorithm 1 over a pre-built candidate grid.

    ``search.restarts`` independent populations are evolved (seeds
    ``seed, seed+1, ...``) and the best result returned — evolutionary
    search is stochastic, and multi-restart is the standard cheap variance
    reduction.

    Parameters
    ----------
    grid:
        From :func:`build_candidate_grid` (fixes precision/wrapping).
    crossbar_budget:
        The ``Budget`` of Eq. 7; individuals above it get reward 0.  ``None``
        disables the constraint.
    search:
        Population/mutation hyper-parameters.

    Returns
    -------
    SearchResult
        Best feasible individual across restarts, with the per-iteration
        best-reward history of the winning run.
    """
    best_result: Optional[SearchResult] = None
    best_reward_overall = -1.0
    for restart in range(max(1, search.restarts)):
        result = _evolution_search_once(
            grid, crossbar_budget,
            EvoSearchConfig(population_size=search.population_size,
                            iterations=search.iterations,
                            num_parents=search.num_parents,
                            mutation_layers=search.mutation_layers,
                            objective=search.objective,
                            seed=search.seed + restart,
                            restarts=1),
            lut)
        reward = _reward(result.eval, crossbar_budget, search.objective)
        if reward > best_reward_overall:
            best_reward_overall = reward
            best_result = result
    assert best_result is not None
    return best_result


def _evolution_search_once(grid: CandidateGrid,
                           crossbar_budget: Optional[int],
                           search: EvoSearchConfig,
                           lut: ComponentLUT) -> SearchResult:
    """One population's evolution (Algorithm 1 verbatim)."""
    rng = np.random.default_rng(search.seed)
    layer_names = [layer.name for layer in grid.spec]
    option_lists = [grid.candidates[name] for name in layer_names]

    def random_genome() -> List[Candidate]:
        return [options[rng.integers(len(options))] for options in option_lists]

    def smallest_genome() -> List[Candidate]:
        # Most aggressive compression everywhere: a feasibility anchor so
        # the population contains an in-budget individual from iteration 0.
        genome = []
        for name, options in zip(layer_names, option_lists):
            best = min(options, key=lambda c: grid.cache[(name, c)][0])
            genome.append(best)
        return genome

    def uniform_genomes() -> List[List[Candidate]]:
        # Seed with every "same candidate everywhere" design (falling back
        # to the smallest option where a layer lacks the candidate), so the
        # search never does worse than the best uniform design — uniform
        # configurations are its explicit starting points.
        all_candidates = {cand for options in option_lists for cand in options
                          if cand is not None}
        genomes = []
        for cand in sorted(all_candidates):
            genome = []
            for name, options in zip(layer_names, option_lists):
                if cand in options:
                    genome.append(cand)
                else:
                    genome.append(min(options,
                                      key=lambda c: grid.cache[(name, c)][0]))
            genomes.append(genome)
        return genomes

    seeds = uniform_genomes()[:max(0, search.population_size - 2)]
    n_random = max(1, search.population_size - 1 - len(seeds))
    population: List[List[Candidate]] = [random_genome() for _ in range(n_random)]
    population.extend(seeds)
    population.append(smallest_genome())

    history: List[float] = []
    best_genome: Optional[List[Candidate]] = None
    best_reward = -1.0

    for _ in range(search.iterations):
        scored = []
        for genome in population:
            result = evaluate_assignment(grid, genome, lut)
            reward = _reward(result, crossbar_budget, search.objective)
            scored.append((reward, genome, result))
        scored.sort(key=lambda item: item[0], reverse=True)
        if scored[0][0] > best_reward:
            best_reward = scored[0][0]
            best_genome = list(scored[0][1])
        history.append(scored[0][0])

        parents = [genome for _, genome, _ in scored[:search.num_parents]]
        next_population: List[List[Candidate]] = [list(p) for p in parents]
        while len(next_population) < search.population_size:
            parent = parents[rng.integers(len(parents))]
            child = list(parent)
            for _ in range(search.mutation_layers):
                li = int(rng.integers(len(child)))
                child[li] = option_lists[li][rng.integers(len(option_lists[li]))]
            next_population.append(child)
        population = next_population

    if best_genome is None:      # pragma: no cover - population is never empty
        best_genome = population[0]
    final = evaluate_assignment(grid, best_genome, lut)
    assignment: EpitomeAssignment = {
        name: cand for name, cand in zip(layer_names, best_genome)
        if cand is not None}
    return SearchResult(
        assignment=assignment,
        genome=best_genome,
        eval=final,
        history=history,
        feasible=(crossbar_budget is None or final.crossbars <= crossbar_budget),
    )
