"""The Epitome Designer (Fig. 2a): replaces convolutions with epitomes.

Two entry points, matching the two halves of the evaluation:

- :func:`convert_model` rewrites a *runnable* :mod:`repro.nn` network,
  swapping :class:`~repro.nn.Conv2d` layers for
  :class:`~repro.core.layers.EpitomeConv2d` (used by the accuracy
  experiments).  Existing conv weights warm-start the epitomes.
- :func:`build_deployments` turns a *shape-level*
  :class:`~repro.models.specs.NetworkSpec` plus a per-layer epitome
  assignment into the :class:`~repro.pim.simulator.LayerDeployment` list
  the PIM performance model consumes (used by the hardware experiments on
  the full-size ResNet-50/101).

Shape policy (section 4.1): a layer gets an epitome only when that actually
compresses it; epitome dimensions are aligned to integral multiples of the
crossbar size whenever the budget allows, so word/bit lines are fully
utilised (the paper's "memristor utilization" column).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..models.specs import LayerSpec, NetworkSpec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.simulator import (
    LayerDeployment,
    baseline_deployment,
    epitome_deployment_from_plan,
)
from .epitome import EpitomeShape, build_plan
from .layers import EpitomeConv2d

__all__ = [
    "EpitomeAssignment",
    "choose_epitome_shape",
    "uniform_assignment",
    "build_deployments",
    "spec_from_model",
    "convert_model",
    "epitome_layers",
    "model_compression_summary",
]

# Per-layer choice: (rows, cols) hardware description, or None to keep the
# layer as a plain convolution.
EpitomeAssignment = Dict[str, Optional[Tuple[int, int]]]


MIN_EPITOME_IN_CHANNELS = 8


def choose_epitome_shape(spec: LayerSpec, rows: int, cols: int,
                         config: HardwareConfig = DEFAULT_CONFIG
                         ) -> Optional[EpitomeShape]:
    """Pick a concrete epitome shape for one layer, or None to keep conv.

    The requested ``rows x cols`` budget is clipped to the layer and the
    row extent is aligned down to a multiple of the crossbar rows when that
    is possible without dropping below one full array (section 4.1's
    alignment rule).  Returns None when the epitome would not compress the
    layer (small layers keep their convolution — the layer-wise design
    principle of section 5.2), and never converts input stems with fewer
    than ``MIN_EPITOME_IN_CHANNELS`` input channels (sharing RGB channels
    is the standard exclusion in compression work).
    """
    if spec.kind != "conv":
        return None
    if spec.in_channels < MIN_EPITOME_IN_CHANNELS:
        return None
    rows = min(rows, spec.weight_rows)
    cols = min(cols, spec.weight_cols)
    shape = EpitomeShape.from_rows_cols(rows, cols, spec.kernel_size,
                                        spec.in_channels)
    # Crossbar alignment (section 4.1): prefer ei such that ei*eh*ew is a
    # multiple of the crossbar row count, so allocated word lines are fully
    # used.  ``per_xbar`` is the number of epitome channels filling exactly
    # one array's rows; rounding ei down to a multiple of it keeps every
    # allocated array full.
    unit = shape.height * shape.width
    per_xbar = config.xbar_rows // unit
    if shape.rows > config.xbar_rows and per_xbar >= 1 \
            and config.xbar_rows % unit == 0:
        aligned_ei = (shape.in_channels // per_xbar) * per_xbar
        if aligned_ei >= per_xbar:
            shape = EpitomeShape(shape.out_channels, aligned_ei,
                                 shape.height, shape.width)
    if shape.num_params >= spec.num_weights:
        return None
    if shape.in_channels > spec.in_channels:
        return None
    return shape


def uniform_assignment(spec: NetworkSpec, rows: int = 1024, cols: int = 256
                       ) -> EpitomeAssignment:
    """The paper's uniform design: the same ``rows x cols`` epitome everywhere
    (Table 1's "1024 x 256" rows). Layers it cannot compress keep their conv."""
    return {layer.name: (rows, cols) for layer in spec if layer.kind == "conv"}


def build_deployments(spec: NetworkSpec,
                      assignment: Optional[EpitomeAssignment] = None,
                      weight_bits: Optional[int] = None,
                      activation_bits: Optional[int] = None,
                      use_wrapping: bool = False,
                      config: HardwareConfig = DEFAULT_CONFIG,
                      bit_map: Optional[Dict[str, int]] = None,
                      ) -> List[LayerDeployment]:
    """Create per-layer PIM deployments for a shape-level network.

    Parameters
    ----------
    spec:
        Network shape table (e.g. ``resnet50_spec()``).
    assignment:
        Per-layer epitome choice; missing / ``None`` entries and fc layers
        stay baseline convolutions.  ``None`` deploys the whole network as
        a baseline.
    weight_bits / activation_bits:
        Precision (None = FP32 mapping).
    use_wrapping:
        Enable output channel wrapping on every epitome layer.
    bit_map:
        Optional per-layer weight-bit overrides (layer name -> bits) — the
        HAWQ mixed-precision deployments (Table 1's W3mp rows).
    """
    assignment = assignment or {}
    deployments: List[LayerDeployment] = []
    for layer in spec:
        layer_bits = weight_bits
        if bit_map is not None and layer.name in bit_map:
            layer_bits = bit_map[layer.name]
        choice = assignment.get(layer.name)
        shape = None
        if choice is not None:
            shape = choose_epitome_shape(layer, choice[0], choice[1], config)
        if shape is None:
            deployments.append(baseline_deployment(
                layer, weight_bits=layer_bits,
                activation_bits=activation_bits, config=config))
            continue
        plan = build_plan(
            (layer.out_channels, layer.in_channels, *layer.kernel_size),
            shape, with_index_map=False)
        deployments.append(epitome_deployment_from_plan(
            layer, plan, weight_bits=layer_bits,
            activation_bits=activation_bits, use_wrapping=use_wrapping,
            config=config))
    return deployments


def spec_from_model(model: nn.Module, input_size: Tuple[int, int],
                    name: str = "model") -> NetworkSpec:
    """Trace a runnable model's conv/linear layers into a NetworkSpec.

    Spatial sizes are propagated through strides in module order (which is
    execution order for our ResNets).  The resulting spec lets the
    evolutionary search and the PIM simulator operate on trainable models
    exactly as they do on the full-size ResNet shape tables.
    """
    from .layers import EpitomeConv2d  # local import to avoid cycles

    layers: List[LayerSpec] = []
    size = input_size
    # Input size per channel count: a residual shortcut conv appears *after*
    # the main path in module order, but consumes the *block input* — which
    # is the last feature map that had its in_channels (the same heuristic
    # the pipeline tracer uses, so both paths agree layer for layer).
    stage_sizes: Dict[int, Tuple[int, int]] = {}
    index = 0
    for mod_name, module in model.named_modules():
        if isinstance(module, (nn.Conv2d, EpitomeConv2d)):
            in_size = stage_sizes.get(module.in_channels, size)
            kh, kw = module.kernel_size
            pad = module.padding
            stride = module.stride
            oh = (in_size[0] + 2 * pad - kh) // stride + 1
            ow = (in_size[1] + 2 * pad - kw) // stride + 1
            index += 1
            layers.append(LayerSpec(
                name=mod_name, kind="conv",
                in_channels=module.in_channels,
                out_channels=module.out_channels,
                kernel_size=module.kernel_size, stride=stride,
                in_size=in_size, out_size=(oh, ow), index=index))
            stage_sizes[module.out_channels] = (oh, ow)
            size = (oh, ow)
        elif isinstance(module, nn.Linear):
            index += 1
            layers.append(LayerSpec(
                name=mod_name, kind="fc",
                in_channels=module.in_features,
                out_channels=module.out_features,
                kernel_size=(1, 1), stride=1,
                in_size=(1, 1), out_size=(1, 1), index=index))
    return NetworkSpec(name=name, input_size=input_size, layers=layers)


# ----------------------------------------------------------------------
# Runnable-model conversion
# ----------------------------------------------------------------------

def convert_model(model: nn.Module,
                  rows: int = 1024, cols: int = 256,
                  assignment: Optional[EpitomeAssignment] = None,
                  config: HardwareConfig = DEFAULT_CONFIG,
                  warm_start: bool = True,
                  seed: int = 0) -> int:
    """Replace eligible Conv2d layers of a runnable model with epitomes.

    Mutates ``model`` in place and returns the number of layers converted.

    Parameters
    ----------
    rows / cols:
        Uniform epitome budget used for layers without an explicit entry in
        ``assignment``.
    assignment:
        Optional per-layer overrides keyed by module path (as produced by
        ``model.named_modules()``); value ``None`` forces a layer to stay
        convolutional.
    warm_start:
        Initialise each epitome from the trained conv weights
        (least-squares averaging over shared positions).
    """
    rng = np.random.default_rng(seed)
    converted = 0
    for name, module in list(model.named_modules()):
        for child_name, child in list(module._modules.items()):
            if type(child) is not nn.Conv2d:
                continue
            full_name = f"{name}.{child_name}" if name else child_name
            if assignment is not None and full_name in assignment:
                choice = assignment[full_name]
                if choice is None:
                    continue
                layer_rows, layer_cols = choice
            else:
                layer_rows, layer_cols = rows, cols
            spec = _layer_spec_from_conv(full_name, child)
            shape = choose_epitome_shape(spec, layer_rows, layer_cols, config)
            if shape is None:
                continue
            replacement = EpitomeConv2d(
                child.in_channels, child.out_channels, child.kernel_size,
                stride=child.stride, padding=child.padding,
                bias=child.bias is not None, epitome_shape=shape, rng=rng)
            if warm_start:
                replacement.load_from_conv(child)
            setattr(module, child_name, replacement)
            converted += 1
    return converted


def _layer_spec_from_conv(name: str, conv: nn.Conv2d) -> LayerSpec:
    """Adapt a runnable conv module to the LayerSpec interface (shapes only)."""
    return LayerSpec(
        name=name, kind="conv",
        in_channels=conv.in_channels, out_channels=conv.out_channels,
        kernel_size=conv.kernel_size, stride=conv.stride,
        in_size=(0, 0), out_size=(0, 0))


def epitome_layers(model: nn.Module) -> List[Tuple[str, EpitomeConv2d]]:
    """All epitome conv layers of a model with their module paths."""
    return [(name, module) for name, module in model.named_modules()
            if isinstance(module, EpitomeConv2d)]


def model_compression_summary(model: nn.Module) -> Dict[str, float]:
    """Parameter accounting before/after epitome conversion.

    Returns total parameters, the virtual (uncompressed-equivalent)
    parameter count, and the resulting compression rate — the metric
    Table 3 compares against pruning.
    """
    actual = model.num_parameters()
    virtual = 0
    for _, module in model.named_modules():
        for child in module._modules.values():
            if isinstance(child, EpitomeConv2d):
                virtual += (child.plan.num_virtual_weights
                            - child.num_epitome_params())
    virtual += actual
    return {
        "params": float(actual),
        "virtual_params": float(virtual),
        "compression": virtual / actual if actual else 0.0,
    }
