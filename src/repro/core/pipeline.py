"""End-to-end EPIM flow (Fig. 2a): design -> train -> quantize -> deploy.

``EPIM begins with any convolution-based neural network.  Subsequently,
[the] epitome designer is used to replace the convolutions by epitomes ...
After training, the epitome designer converts the floating point model to
fixed-point.  Then, we modify the data path and design the feature map
reuse strategy ... After these steps, a well-crafted epitome based neural
network can be deployed on PIM accelerators.''

:class:`EpimPipeline` wires those stages together for runnable models and
returns both the trained/quantized network (accuracy side) and the PIM
deployment report (hardware side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from .. import nn
from ..nn.data import DataLoader
from ..nn.training import TrainConfig, TrainResult, evaluate_accuracy, train_classifier
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import (
    LayerDeployment,
    NetworkReport,
    baseline_deployment,
    epitome_deployment_from_plan,
    simulate_network,
)
from ..models.specs import LayerSpec
from .designer import (
    EpitomeAssignment,
    convert_model,
    model_compression_summary,
)
from .equant import EpitomeQuantConfig, apply_epitome_quantization
from .layers import EpitomeConv2d

__all__ = ["EpimPipelineConfig", "EpimResult", "EpimPipeline"]


@dataclass(frozen=True)
class EpimPipelineConfig:
    """Configuration of the full flow for a runnable model."""

    epitome_rows: int = 128
    epitome_cols: int = 32
    assignment: Optional[EpitomeAssignment] = None
    use_wrapping: bool = True
    train: TrainConfig = field(default_factory=TrainConfig)
    quant: Optional[EpitomeQuantConfig] = None
    qat_epochs: int = 3
    activation_bits: int = 9
    seed: int = 0


@dataclass
class EpimResult:
    """Everything the flow produces for one model."""

    model: nn.Module
    train_result: TrainResult
    qat_result: Optional[TrainResult]
    accuracy: float
    compression: Dict[str, float]
    report: Optional[NetworkReport]


class EpimPipeline:
    """Drives design -> train -> quantize -> deploy on a runnable model."""

    def __init__(self, config: EpimPipelineConfig = EpimPipelineConfig(),
                 hardware: HardwareConfig = DEFAULT_CONFIG,
                 lut: ComponentLUT = DEFAULT_LUT):
        self.config = config
        self.hardware = hardware
        self.lut = lut

    # ------------------------------------------------------------------
    def design(self, model: nn.Module) -> int:
        """Stage 1: replace convolutions with epitomes (returns #converted)."""
        return convert_model(
            model,
            rows=self.config.epitome_rows,
            cols=self.config.epitome_cols,
            assignment=self.config.assignment,
            config=self.hardware,
            seed=self.config.seed,
        )

    def train(self, model: nn.Module, train_loader: DataLoader,
              val_loader: Optional[DataLoader]) -> TrainResult:
        """Stage 2: train the epitome network in floating point."""
        return train_classifier(model, train_loader, val_loader,
                                config=self.config.train)

    def quantize(self, model: nn.Module, train_loader: DataLoader,
                 val_loader: Optional[DataLoader],
                 bit_map: Optional[Dict[str, int]] = None
                 ) -> Optional[TrainResult]:
        """Stage 3: install epitome-aware fake quantization + QAT fine-tune.

        Scales are refreshed at the start of each QAT epoch so they track
        the fine-tuned weights.  No-op when the pipeline has no quant config.
        """
        quant = self.config.quant
        if quant is None:
            return None
        apply_epitome_quantization(model, quant, bit_map=bit_map,
                                   config=self.hardware)
        if self.config.qat_epochs <= 0:
            return None
        qat_train = TrainConfig(
            epochs=self.config.qat_epochs,
            lr=self.config.train.lr * 0.1,
            momentum=self.config.train.momentum,
            weight_decay=self.config.train.weight_decay,
            optimizer=self.config.train.optimizer,
            cosine=True,
        )

        def refresh_scales(_epoch: int, _partial: TrainResult) -> None:
            apply_epitome_quantization(model, quant, bit_map=bit_map,
                                       config=self.hardware)

        return train_classifier(model, train_loader, val_loader,
                                config=qat_train,
                                epoch_callback=refresh_scales)

    def deploy(self, model: nn.Module, input_size: Tuple[int, int],
               weight_bits: Optional[int] = None) -> NetworkReport:
        """Stage 4: map the model onto the PIM fabric and simulate it.

        Builds per-layer deployments by tracing spatial sizes through the
        model's conv/epitome layers, then runs the performance model.
        """
        deployments = self.deployments_for(model, input_size, weight_bits)
        return simulate_network(deployments, self.hardware, self.lut)

    def deployments_for(self, model: nn.Module, input_size: Tuple[int, int],
                        weight_bits: Optional[int] = None
                        ) -> List[LayerDeployment]:
        """The per-layer PIM deployments :meth:`deploy` simulates —
        exposed so they can be exported/served without re-tracing."""
        bits = weight_bits
        if bits is None and self.config.quant is not None:
            bits = self.config.quant.bits
        return self._deployments_from_model(model, input_size, bits)

    def export_deployment(self, model: nn.Module,
                          input_size: Tuple[int, int],
                          weight_bits: Optional[int] = None,
                          path=None, name: str = "model") -> Dict:
        """Produce (and optionally write) the servable format-2 manifest
        for a designed model — the artifact ``python -m repro serve
        --manifest`` replays."""
        from .export import export_deployments, write_manifest
        deployments = self.deployments_for(model, input_size, weight_bits)
        manifest = export_deployments(deployments, self.hardware, name=name)
        if path is not None:
            write_manifest(manifest, path)
        return manifest

    # ------------------------------------------------------------------
    def run(self, model: nn.Module, train_loader: DataLoader,
            val_loader: DataLoader, input_size: Tuple[int, int] = (32, 32),
            bit_map: Optional[Dict[str, int]] = None) -> EpimResult:
        """Run all four stages and collect the results."""
        self.design(model)
        train_result = self.train(model, train_loader, val_loader)
        qat_result = self.quantize(model, train_loader, val_loader, bit_map)
        accuracy = evaluate_accuracy(model, val_loader)
        report = self.deploy(model, input_size)
        return EpimResult(
            model=model,
            train_result=train_result,
            qat_result=qat_result,
            accuracy=accuracy,
            compression=model_compression_summary(model),
            report=report,
        )

    # ------------------------------------------------------------------
    def _deployments_from_model(self, model: nn.Module,
                                input_size: Tuple[int, int],
                                weight_bits: Optional[int]
                                ) -> List[LayerDeployment]:
        """Trace conv layers in execution order and build deployments.

        Spatial sizes are propagated through strides; residual topology does
        not change conv input sizes, so module order (which matches
        execution order in our ResNets) is sufficient.
        """
        deployments: List[LayerDeployment] = []
        size = input_size
        stage_sizes: Dict[int, Tuple[int, int]] = {}
        for name, module in model.named_modules():
            if isinstance(module, EpitomeConv2d) or type(module) is nn.Conv2d:
                in_size = stage_sizes.get(module.in_channels, size)
                kh, kw = module.kernel_size
                pad = module.padding
                stride = module.stride
                oh = (in_size[0] + 2 * pad - kh) // stride + 1
                ow = (in_size[1] + 2 * pad - kw) // stride + 1
                spec = LayerSpec(
                    name=name, kind="conv",
                    in_channels=module.in_channels,
                    out_channels=module.out_channels,
                    kernel_size=module.kernel_size, stride=stride,
                    in_size=in_size, out_size=(oh, ow))
                stage_sizes[module.out_channels] = (oh, ow)
                size = (oh, ow)
                if isinstance(module, EpitomeConv2d):
                    deployments.append(epitome_deployment_from_plan(
                        spec, module.plan, weight_bits=weight_bits,
                        activation_bits=self.config.activation_bits,
                        use_wrapping=self.config.use_wrapping,
                        config=self.hardware))
                else:
                    deployments.append(baseline_deployment(
                        spec, weight_bits=weight_bits,
                        activation_bits=self.config.activation_bits,
                        config=self.hardware))
            elif isinstance(module, nn.Linear):
                spec = LayerSpec(
                    name=name, kind="fc",
                    in_channels=module.in_features,
                    out_channels=module.out_features,
                    kernel_size=(1, 1), stride=1,
                    in_size=(1, 1), out_size=(1, 1))
                deployments.append(baseline_deployment(
                    spec, weight_bits=weight_bits,
                    activation_bits=self.config.activation_bits,
                    config=self.hardware))
        return deployments
