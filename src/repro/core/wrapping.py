"""Output channel wrapping (paper section 5.3, Eqs. 8-9).

The epitome's output-channel tiling makes the virtual weight — and hence
the output feature map — translation-invariant along channels:

    W[x, :, :, :]  == W[x + c, :, :, :]      (Eq. 8)
    OFM[x, :, :, :] == OFM[x + c, :, :, :]   (Eq. 9)

so only ``c`` of ``c * r`` channels need computing; the joint module
replicates the rest by adjusting IFAT/OFAT start/stop indices, and output
buffer writes drop by the replication factor ``r``.

The *execution* of wrapping lives in the datapath
(:func:`repro.pim.datapath.execute_epitome_conv` with ``use_wrapping=True``)
and the performance model (:func:`~repro.pim.simulator.simulate_layer` via
deployments built with ``use_wrapping=True``).  This module provides the
analysis utilities: verifying the invariance on real tensors and accounting
for the savings per layer — the numbers behind the EPIM-Channel-Wrapping
series of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .epitome import EpitomePlan

__all__ = [
    "wrapping_factor",
    "verify_weight_invariance",
    "verify_ofm_invariance",
    "WrappingSavings",
    "wrapping_savings",
]


def wrapping_factor(plan: EpitomePlan) -> int:
    """Replication factor ``r = n_co_blocks`` of a layer's plan."""
    return plan.n_co_blocks


def verify_weight_invariance(plan: EpitomePlan, weight: np.ndarray,
                             atol: float = 0.0) -> bool:
    """Check Eq. 8 on a reconstructed virtual weight.

    ``weight`` must have the plan's virtual shape.  Returns True when every
    full output-channel tile equals the first one (partial trailing tiles
    are compared over their prefix).
    """
    eo = plan.epitome_shape.out_channels
    co = plan.virtual_shape[0]
    first = weight[:eo]
    for start in range(eo, co, eo):
        size = min(eo, co - start)
        if not np.allclose(weight[start:start + size], first[:size], atol=atol):
            return False
    return True


def verify_ofm_invariance(plan: EpitomePlan, ofm: np.ndarray,
                          atol: float = 1e-5) -> bool:
    """Check Eq. 9 on an output feature map ``(n, co, oh, ow)``."""
    eo = plan.epitome_shape.out_channels
    co = ofm.shape[1]
    first = ofm[:, :eo]
    for start in range(eo, co, eo):
        size = min(eo, co - start)
        if not np.allclose(ofm[:, start:start + size], first[:, :size],
                           atol=atol):
            return False
    return True


@dataclass(frozen=True)
class WrappingSavings:
    """Per-layer savings from enabling output channel wrapping."""

    replication_factor: int
    rounds_without: int
    rounds_with: int
    buffer_writes_without: int
    buffer_writes_with: int

    @property
    def round_reduction(self) -> float:
        if self.rounds_with == 0:
            return 1.0
        return self.rounds_without / self.rounds_with

    @property
    def write_reduction(self) -> float:
        if self.buffer_writes_with == 0:
            return 1.0
        return self.buffer_writes_without / self.buffer_writes_with


def wrapping_savings(plan: EpitomePlan) -> WrappingSavings:
    """Compute the activation-round and buffer-write savings for one layer.

    Buffer writes are counted per output position: every executed patch
    writes its ``co_size`` partial sums to the output buffer (the paper's
    "output buffer has to be written four times more" effect); wrapping
    executes only the first tile's patches.
    """
    all_patches = plan.patches
    kept = [p for p in all_patches if p.co_block == 0]
    return WrappingSavings(
        replication_factor=plan.n_co_blocks,
        rounds_without=len(all_patches),
        rounds_with=len(kept),
        buffer_writes_without=sum(p.co_size for p in all_patches),
        buffer_writes_with=sum(p.co_size for p in kept),
    )
