"""repro.core — the paper's contribution.

- :mod:`repro.core.epitome` — the epitome operator: shapes, sampler,
  reconstruction plans with index maps and repetition counts;
- :mod:`repro.core.layers` — trainable :class:`EpitomeConv2d` /
  :class:`EpitomeLinear`;
- :mod:`repro.core.designer` — conv -> epitome conversion for runnable
  models and shape-level PIM deployments (Fig. 2a's "Designer");
- :mod:`repro.core.wrapping` — output channel wrapping (Eqs. 8-9);
- :mod:`repro.core.equant` — epitome-aware quantization (Eqs. 4-5);
- :mod:`repro.core.search` — shim onto :mod:`repro.search`, the
  vectorized evolutionary layer-wise design (Alg. 1);
- :mod:`repro.core.pipeline` — the end-to-end EPIM flow.
"""

from .designer import (
    EpitomeAssignment,
    build_deployments,
    choose_epitome_shape,
    convert_model,
    epitome_layers,
    model_compression_summary,
    spec_from_model,
    uniform_assignment,
)
from .epitome import EpitomePlan, EpitomeShape, PatchSample, build_plan
from .equant import (
    EpitomeQuantConfig,
    apply_epitome_quantization,
    crossbar_group_ids,
    epitome_scales,
    make_epitome_quant_hook,
    remove_epitome_quantization,
    weighted_range,
)
from .export import export_manifest, manifest_summary, write_manifest
from .layers import EpitomeConv2d, EpitomeLinear
from .pipeline import EpimPipeline, EpimPipelineConfig, EpimResult
from .search import (
    DEFAULT_CANDIDATES,
    CandidateGrid,
    EvoSearchConfig,
    SearchResult,
    build_candidate_grid,
    evaluate_assignment,
    evolution_search,
)
from .wrapping import (
    WrappingSavings,
    verify_ofm_invariance,
    verify_weight_invariance,
    wrapping_factor,
    wrapping_savings,
)

__all__ = [
    "EpitomeShape",
    "PatchSample",
    "EpitomePlan",
    "build_plan",
    "EpitomeConv2d",
    "EpitomeLinear",
    "EpitomeAssignment",
    "choose_epitome_shape",
    "uniform_assignment",
    "build_deployments",
    "spec_from_model",
    "convert_model",
    "epitome_layers",
    "model_compression_summary",
    "WrappingSavings",
    "wrapping_factor",
    "wrapping_savings",
    "verify_weight_invariance",
    "verify_ofm_invariance",
    "EpitomeQuantConfig",
    "crossbar_group_ids",
    "weighted_range",
    "epitome_scales",
    "make_epitome_quant_hook",
    "apply_epitome_quantization",
    "remove_epitome_quantization",
    "DEFAULT_CANDIDATES",
    "CandidateGrid",
    "build_candidate_grid",
    "EvoSearchConfig",
    "SearchResult",
    "evolution_search",
    "evaluate_assignment",
    "EpimPipeline",
    "EpimPipelineConfig",
    "EpimResult",
    "export_manifest",
    "write_manifest",
    "manifest_summary",
]
