"""The epitome operator: compact tensor + sampler + reconstruction plan.

An *epitome* (paper section 2.2, Eq. 1) is a small learnable 4-D tensor
``E[eo, ei, eh, ew]`` together with a sampler that repeatedly extracts
sub-tensors and concatenates them into a full convolution weight
``W[co, ci, kh, kw]``.  The paper leaves the sampling schedule abstract; we
implement the concrete schedule described in DESIGN.md section 4:

- **output channels** are tiled with period ``eo`` (every tile samples
  epitome columns ``[0, eo)``), which makes output-channel tiles identical —
  exactly the translation invariance (Eq. 8) that output channel wrapping
  (section 5.3) exploits;
- **input channels** are covered by windows of size ``min(ei, ci)``; when a
  window is narrower than ``ei`` its start offset is spread evenly so the
  whole epitome is used;
- **spatial** kernels of size ``(kh, kw)`` are sampled from the (possibly
  larger) epitome spatial map ``(eh, ew)`` at offsets cycling over the
  ``(eh-kh+1) x (ew-kw+1)`` offset grid, one offset per input-channel block.
  Overlapping spatial windows make *interior* epitome elements repeat more
  often than border ones — the property the overlap-weighted quantization
  (Eqs. 4-5) is built on (Fig. 2c).

The whole reconstruction is materialised once as an integer **index map**
with ``W = E.flat[index_map]``; gradients flow back by scatter-add.  The
plan also records one :class:`PatchSample` per crossbar activation round,
which is what the PIM datapath (IFAT / IFRT / OFAT) and the performance
model consume.

Naming convention: the paper writes an epitome as "``1024 x 256``", meaning
``rows = ei*eh*ew = 1024`` word lines and ``cols = eo = 256`` bit lines
(Table 1 caption).  :meth:`EpitomeShape.from_rows_cols` builds a 4-D shape
from that hardware-level description.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["EpitomeShape", "PatchSample", "EpitomePlan", "build_plan"]


@dataclass(frozen=True)
class EpitomeShape:
    """4-D shape of an epitome tensor ``E[eo, ei, eh, ew]``."""

    out_channels: int   # eo  -> bit lines
    in_channels: int    # ei
    height: int         # eh
    width: int          # ew

    def __post_init__(self):
        for name in ("out_channels", "in_channels", "height", "width"):
            if getattr(self, name) < 1:
                raise ValueError(f"EpitomeShape.{name} must be >= 1")

    @property
    def rows(self) -> int:
        """Word-line extent on a crossbar: ``ei * eh * ew`` (paper's cin*p*q)."""
        return self.in_channels * self.height * self.width

    @property
    def cols(self) -> int:
        """Bit-line extent: ``eo`` (before weight bit-slicing)."""
        return self.out_channels

    @property
    def num_params(self) -> int:
        return self.out_channels * self.in_channels * self.height * self.width

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.out_channels, self.in_channels, self.height, self.width)

    @staticmethod
    def from_rows_cols(rows: int, cols: int, kernel_size: Tuple[int, int],
                       in_channels: int) -> "EpitomeShape":
        """Build a 4-D epitome shape from the paper's ``rows x cols`` notation.

        For a k x k kernel with k > 1 the spatial map is enlarged beyond the
        kernel (up to ``(k+1) x (k+1)``) to create overlapping spatial
        sampling offsets — but only as many offsets as the layer has
        input-channel blocks to consume them.  A spatial map with more
        offsets than blocks would leave epitome rows *never sampled*: dead
        parameters that waste crossbar cells and receive no gradient.  For
        1x1 kernels the map is 1x1.

        Parameters
        ----------
        rows, cols:
            The hardware description, e.g. ``1024, 256``.
        kernel_size:
            Kernel of the convolution this epitome will reconstruct.
        in_channels:
            Input channels of that convolution (upper bound for ``ei`` and,
            through the block count, on the useful spatial slack).
        """
        kh, kw = kernel_size

        def candidate(eh: int, ew: int) -> Optional["EpitomeShape"]:
            if eh * ew > rows:
                return None
            n_offsets = (eh - kh + 1) * (ew - kw + 1)
            # Keep ei small enough that every spatial offset is consumed by
            # some input-channel block; otherwise part of the epitome map is
            # never sampled (dead parameters).  This is also what makes the
            # epitome *compress* layers whose row extent fits the budget:
            # e.g. a 3x3 64-ch layer (576 rows) under a 1024-row budget gets
            # ei=16 and a 4x4 map (256 rows) — the paper's Fig. 3 "L9"
            # arithmetic (36.9k -> 16.4k parameters).
            ei = min(max(1, rows // (eh * ew)), in_channels,
                     max(1, in_channels // n_offsets))
            n_ci = math.ceil(in_channels / ei)
            if n_offsets > n_ci:
                return None
            return EpitomeShape(out_channels=cols, in_channels=ei,
                                height=eh, width=ew)

        if kh > 1 or kw > 1:
            for eh, ew in ((kh + 1, kw + 1), (kh + 1, kw), (kh, kw)):
                shape = candidate(eh, ew)
                if shape is not None:
                    return shape
        ei = min(max(1, rows // (kh * kw)), in_channels)
        return EpitomeShape(out_channels=cols, in_channels=ei,
                            height=kh, width=kw)

    def __str__(self) -> str:
        return (f"{self.rows}x{self.cols} "
                f"(eo={self.out_channels}, ei={self.in_channels}, "
                f"{self.height}x{self.width})")


@dataclass(frozen=True)
class PatchSample:
    """One sampled sub-tensor = one crossbar activation round (Eq. 1).

    Virtual coordinates locate the patch inside the reconstructed weight
    ``W[co, ci, kh, kw]``; epitome coordinates locate the sampled window in
    ``E[eo, ei, eh, ew]``.  All output-channel blocks of the same
    ``ci_block`` share identical epitome coordinates (translation
    invariance, Eq. 8), recorded via ``co_block``.
    """

    co_block: int          # output-channel tile index (0-based)
    ci_block: int          # input-channel block index (0-based)
    co_start: int          # virtual output-channel offset of this tile
    ci_start: int          # virtual input-channel offset of this block
    co_size: int           # tile width (may be partial at the edge)
    ci_size: int           # block width (may be partial at the edge)
    e_ci_start: int        # epitome input-channel window start
    e_h_start: int         # epitome spatial row offset of the kernel window
    e_w_start: int         # epitome spatial col offset of the kernel window

    def word_lines(self, shape: EpitomeShape, kernel_size: Tuple[int, int]
                   ) -> np.ndarray:
        """Crossbar word-line (row) indices this patch activates.

        The epitome maps onto crossbar rows in ``(ei, eh, ew)`` raster order:
        ``row = e_ci * (eh*ew) + e_h * ew + e_w``.  A patch touches the
        sub-grid ``[e_ci_start, +ci_size) x [e_h_start, +kh) x [e_w_start, +kw)``
        — generally a *scattered* set of rows, which is why the paper's IFRT
        exists.
        """
        kh, kw = kernel_size
        eh, ew = shape.height, shape.width
        ci_idx = np.arange(self.e_ci_start, self.e_ci_start + self.ci_size)
        h_idx = np.arange(self.e_h_start, self.e_h_start + kh)
        w_idx = np.arange(self.e_w_start, self.e_w_start + kw)
        grid = (ci_idx[:, None, None] * (eh * ew)
                + h_idx[None, :, None] * ew
                + w_idx[None, None, :])
        return grid.reshape(-1)


@dataclass
class EpitomePlan:
    """Complete reconstruction plan for one layer.

    Attributes
    ----------
    epitome_shape:
        Shape of the compact parameter tensor.
    virtual_shape:
        ``(co, ci, kh, kw)`` of the convolution being reconstructed
        (``kh = kw = 1`` for linear layers).
    index_map:
        int64 array of ``virtual_shape``; ``W = E.flat[index_map]``.
    patches:
        One :class:`PatchSample` per (co_block, ci_block) pair, in activation
        order.
    n_co_blocks / n_ci_blocks:
        Tiling factors.  ``n_co_blocks`` is the channel-wrapping replication
        factor ``r`` of section 5.3.
    """

    epitome_shape: EpitomeShape
    virtual_shape: Tuple[int, int, int, int]
    index_map: np.ndarray
    patches: List[PatchSample]
    n_co_blocks: int
    n_ci_blocks: int

    @property
    def kernel_size(self) -> Tuple[int, int]:
        return self.virtual_shape[2], self.virtual_shape[3]

    @property
    def num_virtual_weights(self) -> int:
        return int(np.prod(self.virtual_shape))

    @property
    def num_params(self) -> int:
        return self.epitome_shape.num_params

    @property
    def compression(self) -> float:
        """Parameter compression of this layer (virtual / epitome)."""
        return self.num_virtual_weights / self.num_params

    @property
    def rounds_per_position(self) -> int:
        """Crossbar activation rounds per output position, without wrapping."""
        return len(self.patches)

    @property
    def wrapped_rounds_per_position(self) -> int:
        """Activation rounds with output channel wrapping: co tiles computed once."""
        return self.n_ci_blocks

    def repetition_counts(self) -> np.ndarray:
        """How many times each epitome element appears in the virtual weight.

        Shape equals ``epitome_shape``; interior (overlap) elements have the
        largest counts — this drives the overlap-weighted quantization range
        of Eqs. 4-5.
        """
        counts = np.bincount(self.index_map.ravel(),
                             minlength=self.epitome_shape.num_params)
        return counts.reshape(self.epitome_shape.as_tuple())

    def reconstruct(self, epitome: np.ndarray) -> np.ndarray:
        """Numpy-level reconstruction (the autograd path lives in
        :class:`repro.core.layers.EpitomeConv2d`)."""
        if epitome.shape != self.epitome_shape.as_tuple():
            raise ValueError(
                f"epitome shape {epitome.shape} does not match plan "
                f"{self.epitome_shape.as_tuple()}")
        return epitome.reshape(-1)[self.index_map]

    def overlap_mask(self, quantile: float = 0.5) -> np.ndarray:
        """Boolean mask of the "highly repeated" region (Fig. 2c, green).

        Elements whose repetition count is strictly greater than the
        ``quantile`` of all counts are considered part of the overlap region.
        Falls back to the > min rule when the counts are uniform.
        """
        counts = self.repetition_counts()
        threshold = np.quantile(counts, quantile)
        mask = counts > threshold
        if not mask.any():
            mask = counts >= threshold
        return mask


def _window_starts(extent: int, window: int, n_blocks: int) -> List[int]:
    """Evenly spread ``n_blocks`` window start offsets over ``[0, extent-window]``."""
    slack = extent - window
    if slack <= 0 or n_blocks <= 1:
        return [0] * n_blocks
    return [round(j * slack / (n_blocks - 1)) for j in range(n_blocks)]


def build_plan(virtual_shape: Tuple[int, int, int, int],
               epitome_shape: EpitomeShape,
               with_index_map: bool = True) -> EpitomePlan:
    """Construct the deterministic sampling schedule for one layer.

    Parameters
    ----------
    virtual_shape:
        ``(co, ci, kh, kw)`` of the convolution to reconstruct.
    epitome_shape:
        Target epitome.  Must satisfy ``ei <= ci``, ``eh >= kh``,
        ``ew >= kw`` and ``eo <= co`` so every epitome element can
        participate (the designer clips shapes before calling).
    with_index_map:
        When False, skip materialising the (possibly multi-megabyte) index
        map and only build the patch schedule — sufficient for the
        performance model, and what the evolutionary search uses to stay
        fast.  ``index_map`` is then an empty array.

    Returns
    -------
    EpitomePlan
        With the index map (optional), the patch list, and tiling factors.
    """
    co, ci, kh, kw = virtual_shape
    eo, ei, eh, ew = epitome_shape.as_tuple()
    if eo > co:
        raise ValueError(f"epitome out_channels {eo} exceeds layer's {co}")
    if ei > ci:
        raise ValueError(f"epitome in_channels {ei} exceeds layer's {ci}")
    if eh < kh or ew < kw:
        raise ValueError(
            f"epitome spatial map {eh}x{ew} smaller than kernel {kh}x{kw}")

    n_co = math.ceil(co / eo)
    n_ci = math.ceil(ci / ei)
    spatial_offsets = [(a, b)
                       for a in range(eh - kh + 1)
                       for b in range(ew - kw + 1)]

    if with_index_map:
        index_map = np.empty(virtual_shape, dtype=np.int64)
    else:
        index_map = np.empty((0,), dtype=np.int64)
    patches: List[PatchSample] = []

    # Precompute flat epitome indices: E[eo, ei, eh, ew] raster order.
    stride_o = ei * eh * ew
    stride_i = eh * ew
    stride_h = ew

    for j in range(n_ci):
        ci_start = j * ei
        ci_size = min(ei, ci - ci_start)
        # Partial blocks sample a window inside the epitome channel extent,
        # spread so the whole epitome is exercised (Eq. 1's cin offset).
        e_ci_start = _window_starts(ei, ci_size, n_ci)[j] if ci_size < ei else 0
        dh, dw = spatial_offsets[j % len(spatial_offsets)]

        if with_index_map:
            e_co = np.arange(eo)
            e_ci = e_ci_start + np.arange(ci_size)
            e_h = dh + np.arange(kh)
            e_w = dw + np.arange(kw)
            block = (e_co[:, None, None, None] * stride_o
                     + e_ci[None, :, None, None] * stride_i
                     + e_h[None, None, :, None] * stride_h
                     + e_w[None, None, None, :])

        for b in range(n_co):
            co_start = b * eo
            co_size = min(eo, co - co_start)
            if with_index_map:
                index_map[co_start:co_start + co_size,
                          ci_start:ci_start + ci_size] = block[:co_size]
            patches.append(PatchSample(
                co_block=b, ci_block=j,
                co_start=co_start, ci_start=ci_start,
                co_size=co_size, ci_size=ci_size,
                e_ci_start=e_ci_start, e_h_start=dh, e_w_start=dw))

    return EpitomePlan(
        epitome_shape=epitome_shape,
        virtual_shape=virtual_shape,
        index_map=index_map,
        patches=patches,
        n_co_blocks=n_co,
        n_ci_blocks=n_ci,
    )
