"""Entry point: ``python -m repro <table1|table2|table3|figure3|figure4|summary>``."""

import sys

from .analysis.cli import main

sys.exit(main())
