"""Entry point: ``python -m repro <table1|table2|table3|figure3|figure4|summary|serve|bench>``.

Also installed as the ``repro`` console script (see pyproject.toml).
"""

import sys

from .analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
