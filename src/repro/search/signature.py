"""Shape signatures: the content-addressing scheme behind grid dedup.

A layer's simulated hardware numbers are a pure function of its *shape*
(kind, channels, kernel, stride, spatial dims), the deployment precision,
the wrapping mode, the :class:`~repro.pim.config.HardwareConfig` and the
:class:`~repro.pim.lut.ComponentLUT` — never of its name or position.
ResNet-style networks repeat block shapes heavily (ResNet-50's 54 layers
collapse to 24 unique shapes), so hashing those fields and simulating each
unique ``(signature, candidate)`` pair once cuts ``simulate_layer`` calls
severalfold and gives the persistent grid cache a key that is correct by
construction: any change to the config, LUT, precision or wrapping mode
changes every signature, so stale entries can never be read back.

Two levels of key are exposed:

- :func:`grid_context_key` — one hash over everything shared by a whole
  build (bits, wrapping, config, LUT, format version), computed once;
- :func:`layer_signature` — the context key folded with one layer's shape
  fields; equal exactly when two layers must simulate identically.

Bumping :data:`GRID_CACHE_VERSION` invalidates every on-disk entry at
once — do that whenever the simulator's numbers change meaning.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Optional, Tuple

from ..models.specs import LayerSpec
from ..pim.config import HardwareConfig
from ..pim.lut import ComponentLUT

__all__ = [
    "BASELINE_KEY",
    "GRID_CACHE_VERSION",
    "grid_context_key",
    "layer_shape_key",
    "layer_signature",
    "resolved_shape_key",
]

# Version of the (signature -> simulated numbers) contract.  Bump whenever
# simulate_layer / deployment construction changes results for the same
# inputs; every cached grid entry is invalidated at once.
GRID_CACHE_VERSION = 1


def layer_shape_key(layer: LayerSpec) -> Tuple:
    """The simulation-relevant shape fields of one layer (no name/index)."""
    return (layer.kind, layer.in_channels, layer.out_channels,
            tuple(layer.kernel_size), layer.stride,
            tuple(layer.in_size), tuple(layer.out_size))


def grid_context_key(weight_bits: Optional[int],
                     activation_bits: Optional[int],
                     use_wrapping: bool,
                     config: HardwareConfig,
                     lut: ComponentLUT) -> str:
    """Hash of everything a grid build shares across layers.

    Computed once per build and folded into every layer signature, so a
    changed :class:`HardwareConfig` or :class:`ComponentLUT` — even a
    single calibration factor — moves every signature (versioned
    invalidation for the on-disk cache).
    """
    payload = {
        "version": GRID_CACHE_VERSION,
        "weight_bits": weight_bits,
        "activation_bits": activation_bits,
        "use_wrapping": bool(use_wrapping),
        "config": dataclasses.asdict(config),
        "lut": dataclasses.asdict(lut),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def layer_signature(layer: LayerSpec, context_key: str) -> str:
    """Content address of one layer's simulation results within a build.

    Layers with equal signatures produce bit-for-bit identical
    ``(crossbars, latency_ns, dynamic_pj)`` for every candidate, so one
    simulation serves all of them.
    """
    blob = f"{context_key}|{layer_shape_key(layer)}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


# Entry key of the keep-conv baseline cell within a signature's entry set.
BASELINE_KEY = "none"


def resolved_shape_key(shape: Tuple[int, ...]) -> str:
    """Entry key of one *resolved* epitome shape ``(eo, ei, eh, ew)``.

    Cells are keyed by the designer-resolved shape rather than the
    requested ``rows x cols`` candidate: distinct candidates that clamp
    to the same concrete epitome share one cell (simulated once, hit by
    all), and partial hits survive candidate-ladder edits.
    """
    return "s{}x{}x{}x{}".format(*shape)
