"""Evolutionary layer-wise epitome design (paper section 5.2, Algorithm 1).

Each individual in the population is a per-layer epitome choice (one
candidate per layer out of a candidate set ``C``; the full design space is
``N^l`` — the paper quotes 20,676,608 combinations for its grid).  Fitness
follows Eqs. 6-7:

    Reward = m / Latency(E)    or    m / Energy(E),
    m = 0 if #Crossbar(E) > Budget else 1

so any individual over the crossbar budget scores below every feasible one.
Selection keeps the top individuals as parents; children are produced by
(optional) uniform crossover of two parents followed by re-rolling a random
subset of layers (Algorithm 1 lines 9-14).

The whole population lives as a ``(P, L)`` integer index array and is
scored per generation by :func:`~repro.search.grid.evaluate_population`
— gathers and axis-sums over the grid's lookup matrices instead of a
per-individual Python loop — so large populations and many restarts cost
milliseconds.  Restarts can additionally fan out across processes
(``EvoSearchConfig.workers``); the reduction picks the same winner as the
serial order, so parallelism never changes the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from ..obs.runtime import get_metrics, get_tracer
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from .parallel import parallel_map
from .grid import (
    OBJECTIVES,
    Candidate,
    CandidateGrid,
    EvalResult,
    PopulationEval,
    decode_genome,
    evaluate_assignment,
    evaluate_population,
    population_rewards,
)

if TYPE_CHECKING:       # pragma: no cover - typing only
    from ..core.designer import EpitomeAssignment
    from .pareto import ParetoPoint

__all__ = ["EvoSearchConfig", "SearchResult", "evolution_search"]


@dataclass(frozen=True)
class EvoSearchConfig:
    """Hyper-parameters of Algorithm 1 (validated at construction).

    Attributes
    ----------
    population_size / iterations / num_parents / mutation_layers:
        Algorithm 1's population knobs; ``mutation_layers`` is how many
        layers a child re-rolls.  At most ``population_size - 1`` parents
        actually survive a generation, so selection pressure exists even
        when ``num_parents >= population_size``.
    objective:
        ``"latency"`` | ``"energy"`` | ``"edp"`` — or ``"pareto"`` to
        replace the scalar reward with the multi-objective front of
        latency x energy x crossbars (see :mod:`repro.search.pareto`).
    crossover_rate:
        Probability a child is bred by uniform crossover of two parents
        before mutation (0 reproduces the paper's mutation-only loop).
    patience:
        Early-stop after this many consecutive iterations without best-
        reward improvement (``None`` disables; the history then always has
        ``iterations`` entries).
    seed / restarts:
        ``restarts`` independent runs seeded ``seed, seed+1, ...``; the
        best one wins.
    workers:
        Processes for the restart fan-out (1 = serial; results are
        identical either way).
    """

    population_size: int = 64
    iterations: int = 60
    num_parents: int = 16
    mutation_layers: int = 3      # layers re-rolled per mutation
    objective: str = "latency"    # "latency" | "energy" | "edp" | "pareto"
    seed: int = 0
    restarts: int = 3             # independent runs; best one wins
    crossover_rate: float = 0.5   # P(child bred from two parents)
    patience: Optional[int] = None
    workers: int = 1              # processes for the restart fan-out

    def __post_init__(self):
        for name in ("population_size", "iterations", "num_parents",
                     "mutation_layers", "restarts", "workers"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.objective not in (*OBJECTIVES, "pareto"):
            raise ValueError(f"objective must be one of "
                             f"{(*OBJECTIVES, 'pareto')}, "
                             f"got {self.objective!r}")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")
        if self.patience is not None and self.patience < 1:
            raise ValueError("patience must be >= 1 (or None)")


@dataclass
class SearchResult:
    """Output of the evolutionary search."""

    assignment: EpitomeAssignment
    genome: List[Candidate]
    eval: EvalResult
    history: List[float] = field(default_factory=list)
    feasible: bool = True
    front: Optional[List["ParetoPoint"]] = None
    """Pareto front (objective="pareto" only): the non-dominated
    latency x energy x crossbars designs; ``eval`` is then the knee point."""


def _reward(result: EvalResult, budget: Optional[int], objective: str) -> float:
    """Eqs. 6-7 for one individual — delegates to the vectorized
    :func:`population_rewards` so the objective dispatch lives in exactly
    one place and restart-winner selection can never disagree with the
    per-generation selection."""
    evals = PopulationEval(
        crossbars=np.array([result.crossbars], dtype=np.int64),
        latency_ms=np.array([result.latency_ms]),
        energy_mj=np.array([result.energy_mj]))
    return float(population_rewards(evals, budget, objective)[0])


def initial_population(grid: CandidateGrid, population_size: int,
                       rng: np.random.Generator) -> np.ndarray:
    """The ``(P, L)`` index-array population of iteration 0.

    Composition (exactly ``population_size`` rows):

    - random genomes fill whatever the seeds below leave free;
    - every "same candidate everywhere" uniform design (falling back to
      the smallest option where a layer lacks the candidate), so the
      search never does worse than the best uniform design;
    - the smallest genome — most aggressive compression everywhere, a
      feasibility anchor so an in-budget individual exists from iteration
      0 whenever the budget is attainable at all.

    With ``population_size == 1`` only the anchor survives; the population
    never exceeds the configured size.
    """
    matrices = grid.matrices()
    counts = matrices.num_options
    L = matrices.num_layers
    smallest = np.array([int(np.argmin(matrices.crossbars[li, :counts[li]]))
                         for li in range(L)], dtype=np.int64)
    if population_size == 1:
        return smallest[None, :]

    all_candidates = sorted({cand for opts in matrices.options
                             for cand in opts if cand is not None})
    seeds: List[np.ndarray] = []
    for cand in all_candidates[:max(0, population_size - 2)]:
        genome = smallest.copy()
        for li, opts in enumerate(matrices.options):
            if cand in opts:
                genome[li] = opts.index(cand)
        seeds.append(genome)
    n_random = max(0, population_size - 1 - len(seeds))
    rows: List[np.ndarray] = []
    if n_random:
        rows.append(rng.integers(0, counts, size=(n_random, L),
                                 dtype=np.int64))
    if seeds:
        rows.append(np.stack(seeds))
    rows.append(smallest[None, :])
    return np.concatenate(rows, axis=0)


def breed(parents: np.ndarray, config: EvoSearchConfig,
          num_options: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Next generation: parents survive (elitism), children fill the rest
    via optional uniform crossover followed by layer re-roll mutation.

    Surviving parents are capped at ``population_size - 1`` (for
    populations of at least 2) so every generation breeds at least one
    child — ``num_parents >= population_size`` would otherwise copy the
    population forward unchanged and the search would never move."""
    n_par, L = parents.shape
    max_survivors = (config.population_size if config.population_size < 2
                     else config.population_size - 1)
    survivors = parents[:max_survivors]
    n_child = config.population_size - len(survivors)
    if n_child == 0:
        return survivors.copy()
    children = parents[rng.integers(n_par, size=n_child)].copy()
    if config.crossover_rate > 0.0 and n_par > 1:
        crossed = rng.random(n_child) < config.crossover_rate
        second = parents[rng.integers(n_par, size=n_child)]
        genes = rng.random((n_child, L)) < 0.5
        children = np.where(crossed[:, None] & genes, second, children)
    positions = rng.integers(L, size=(n_child, config.mutation_layers))
    values = rng.integers(num_options[positions])
    rows = np.arange(n_child)
    # Sequential writes: a layer mutated twice keeps the *last* re-roll,
    # matching a per-child mutation loop.
    for j in range(config.mutation_layers):
        children[rows, positions[:, j]] = values[:, j]
    return np.concatenate([survivors, children], axis=0)


def evolution_search(grid: CandidateGrid,
                     crossbar_budget: Optional[int],
                     search: EvoSearchConfig = EvoSearchConfig(),
                     lut: ComponentLUT = DEFAULT_LUT) -> SearchResult:
    """Run Algorithm 1 over a pre-built candidate grid.

    ``search.restarts`` independent populations are evolved (seeds
    ``seed, seed+1, ...``) and the best result returned — evolutionary
    search is stochastic, and multi-restart is the standard cheap variance
    reduction.  ``search.workers > 1`` fans the restarts out across
    processes without changing the outcome.

    With ``search.objective == "pareto"`` the scalar reward is replaced by
    the multi-objective front: the result is the front's knee (minimum
    EDP) with the whole front attached as ``SearchResult.front``.

    Parameters
    ----------
    grid:
        From :func:`build_candidate_grid` (fixes precision/wrapping).
    crossbar_budget:
        The ``Budget`` of Eq. 7; individuals above it get reward 0.  ``None``
        disables the constraint.
    search:
        Population/mutation hyper-parameters.

    Returns
    -------
    SearchResult
        Best feasible individual across restarts, with the per-iteration
        best-reward history of the winning run.
    """
    if search.objective == "pareto":
        from .pareto import pareto_search
        return pareto_search(grid, crossbar_budget, search,
                             lut).as_search_result()
    # dataclasses.replace keeps every other hyper-parameter — a field
    # added to EvoSearchConfig can never again be dropped on restart.
    configs = [replace(search, seed=search.seed + restart, restarts=1)
               for restart in range(search.restarts)]
    results = _run_restarts(grid, crossbar_budget, configs, lut,
                            search.workers)
    best_result: Optional[SearchResult] = None
    best_reward_overall = -1.0
    for result in results:
        reward = _reward(result.eval, crossbar_budget, search.objective)
        if reward > best_reward_overall:
            best_reward_overall = reward
            best_result = result
    assert best_result is not None
    return best_result


def _restart_task(payload) -> SearchResult:
    """Module-level so ProcessPoolExecutor can pickle it."""
    grid, crossbar_budget, config, lut = payload
    return _evolution_search_once(grid, crossbar_budget, config, lut)


def _run_restarts(grid: CandidateGrid, crossbar_budget: Optional[int],
                  configs: Sequence[EvoSearchConfig], lut: ComponentLUT,
                  workers: int) -> List[SearchResult]:
    """Run restarts serially or across processes (same results, same order).

    Uses the shared :func:`repro.search.parallel.parallel_map`, which
    preserves payload order (the reduction picks the same winner as a
    serial run), merges worker :class:`SimCounters` back into the parent
    (parallel restarts used to drop their work counters silently), and
    falls back to serial execution when the platform refuses to fork.
    """
    payloads = [(grid, crossbar_budget, config, lut) for config in configs]
    return parallel_map(_restart_task, payloads, workers)


def _evolution_search_once(grid: CandidateGrid,
                           crossbar_budget: Optional[int],
                           search: EvoSearchConfig,
                           lut: ComponentLUT) -> SearchResult:
    """One population's evolution (Algorithm 1, vectorized).

    Each generation is traced as a wall-clock span on the
    ``evolve seed=N`` track (restart runs get distinct tracks) and the
    run's totals land under ``search.evolve.*`` in the installed metrics
    registry.  Worker processes inherit the no-op defaults, so the
    fan-out path costs nothing extra.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    rng = np.random.default_rng(search.seed)
    matrices = grid.matrices()
    population = initial_population(grid, search.population_size, rng)
    track = f"evolve seed={search.seed}"

    history: List[float] = []
    best_genome: Optional[np.ndarray] = None
    best_reward = -1.0
    stall = 0

    for generation in range(search.iterations):
        span_start = tracer.now_ms() if tracer.enabled else 0.0
        evals = evaluate_population(matrices, population, lut)
        rewards = population_rewards(evals, crossbar_budget, search.objective)
        order = np.argsort(-rewards, kind="stable")
        improved = rewards[order[0]] > best_reward
        if improved:
            best_reward = float(rewards[order[0]])
            best_genome = population[order[0]].copy()
        history.append(float(rewards[order[0]]))
        if tracer.enabled:
            tracer.record(
                f"generation[{generation}]", "search.evolve",
                span_start, tracer.now_ms(), track=track,
                args={"generation": generation, "seed": search.seed,
                      "best_reward": float(rewards[order[0]]),
                      "population": len(population)})
        if search.patience is not None:
            stall = 0 if improved else stall + 1
            if stall >= search.patience:
                break
        parents = population[order[:search.num_parents]]
        population = breed(parents, search, matrices.num_options, rng)

    metrics.counter("search.evolve.generations",
                    help="evolution generations evaluated"
                    ).inc(len(history))
    metrics.counter("search.evolve.individuals",
                    help="individuals scored"
                    ).inc(len(history) * search.population_size)
    metrics.gauge("search.evolve.best_reward",
                  help="best reward of the last finished run"
                  ).set(best_reward)

    if best_genome is None:      # pragma: no cover - population is never empty
        best_genome = population[0]
    genome = decode_genome(matrices, best_genome)
    final = evaluate_assignment(grid, genome, lut)
    assignment: EpitomeAssignment = {
        name: cand for name, cand in zip(matrices.layer_names, genome)
        if cand is not None}
    return SearchResult(
        assignment=assignment,
        genome=genome,
        eval=final,
        history=history,
        feasible=(crossbar_budget is None or final.crossbars <= crossbar_budget),
    )
