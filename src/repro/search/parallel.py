"""Shared multiprocess fan-out for the search engine.

One helper serves both process-parallel call sites — the evolve loop's
restart fan-out and the candidate-grid build's simulation sharding — with
two guarantees the callers rely on:

- **order preservation**: results come back in payload order regardless
  of which worker finished first, so downstream reductions (restart-winner
  selection, grid assembly) are bit-for-bit identical to a serial run;
- **counter repatriation**: each task's :class:`~repro.pim.simulator.
  SimCounters` delta is measured inside the worker and merged back into
  the parent's process-global counters, so benchmark ``work`` fields stay
  truthful when the simulation work happens in child processes (they were
  silently dropped before this helper existed).

Platforms that refuse to fork (sandboxes, restricted containers) degrade
to serial execution with a warning — never a behaviour change.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Sequence

from ..pim.simulator import sim_counters

__all__ = ["ENV_FORCE_WORKERS", "effective_workers", "parallel_map"]

# Set to any non-empty value to bypass the cpu_count cap (tests use this to
# exercise the pool path on single-core machines, where it is otherwise
# skipped because a process pool can only add overhead there).
ENV_FORCE_WORKERS = "REPRO_SEARCH_FORCE_WORKERS"


def effective_workers(requested: int, tasks: int) -> int:
    """Workers actually worth spawning for ``tasks`` payloads.

    Capped at the machine's CPU count (a pool on a single-core host can
    only lose) and at the task count.  ``REPRO_SEARCH_FORCE_WORKERS``
    bypasses the CPU cap.
    """
    if requested <= 1 or tasks <= 1:
        return 1
    cap = os.cpu_count() or 1
    if os.environ.get(ENV_FORCE_WORKERS):
        cap = requested
    return max(1, min(requested, cap, tasks))


def _counted_task(args):
    """Run one task in a worker, returning (result, counter delta).

    The before/after snapshot makes the delta correct under both fork
    (children inherit the parent's non-zero counters) and spawn (children
    start from zero) start methods, and under many tasks per worker.
    """
    task, payload = args
    before = sim_counters().as_dict()
    result = task(payload)
    after = sim_counters().as_dict()
    return result, {key: after[key] - before[key] for key in after}


def parallel_map(task: Callable, payloads: Sequence, workers: int,
                 chunksize: int = 1) -> List:
    """Map ``task`` over ``payloads``, optionally across processes.

    Results preserve payload order.  Worker simulation-counter deltas are
    merged back into the parent.  Falls back to serial execution (and
    plain in-process counting) when the pool cannot be created or
    :func:`effective_workers` says parallelism cannot pay.
    """
    n = effective_workers(workers, len(payloads))
    if n > 1:
        try:
            with ProcessPoolExecutor(max_workers=n) as pool:
                pairs = list(pool.map(_counted_task,
                                      [(task, payload) for payload in payloads],
                                      chunksize=max(1, chunksize)))
        except (OSError, PermissionError) as exc:
            warnings.warn(f"process pool unavailable ({exc}); running "
                          "tasks serially", stacklevel=3)
        else:
            counters = sim_counters()
            for _, delta in pairs:
                counters.merge(delta)
            return [result for result, _ in pairs]
    return [task(payload) for payload in payloads]
