"""Pareto-front multi-objective search: latency x energy x crossbars.

The scalar reward of Eqs. 6-7 collapses the design trade-off into one
number per run; serving deployments usually want the *frontier* instead —
every design for which no other design is simultaneously faster, leaner
and more efficient — and pick an operating point per fleet.  This module
replaces the reward with non-dominated selection over the objective
vector ``(latency_ms, energy_mj, crossbars)`` (all minimized):

- an elitist archive keeps the non-dominated set found so far, thinned by
  crowding distance when it outgrows :data:`ARCHIVE_CAPACITY` (extreme
  points are never thinned away);
- parents are drawn from the archive, children bred with the same
  crossover + layer re-roll operators as the scalar mode;
- individuals over the crossbar budget never enter the archive; while no
  feasible individual exists yet, selection pressure is "fewest
  crossbars", which drives the population into the feasible region.

Everything is vectorized: population scoring via
:func:`~repro.search.grid.evaluate_population`, dominance via an
O(n^2) boolean broadcast over the (population + archive) set.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.runtime import get_metrics, get_tracer
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from .parallel import parallel_map
from .evolve import (
    EvoSearchConfig,
    SearchResult,
    breed,
    initial_population,
)
from .grid import (
    Candidate,
    CandidateGrid,
    EvalResult,
    decode_genome,
    evaluate_assignment,
    evaluate_population,
)

__all__ = [
    "ARCHIVE_CAPACITY",
    "SELECTION_POLICIES",
    "ParetoPoint",
    "ParetoResult",
    "pareto_search",
    "non_dominated_mask",
    "crowding_distance",
    "select_index",
]

ARCHIVE_CAPACITY = 128

# Operating-point selection policies shared by :meth:`ParetoResult.select`
# and the serving deployment loader (:mod:`repro.serve.deploy`): pick one
# point off a front for a fleet to run.
SELECTION_POLICIES = ("latency-opt", "energy-opt", "knee", "index")


def select_index(metrics: Sequence[Tuple[float, float, float]],
                 policy: str, index: Optional[int] = None) -> int:
    """Pick one operating point from ``(latency_ms, energy_mj, edp)`` rows.

    Policies (ties broken by the other objective, then first occurrence,
    so the pick is deterministic for a fixed front):

    - ``"latency-opt"`` — minimum latency (interactive fleets);
    - ``"energy-opt"`` — minimum energy per image (batch fleets);
    - ``"knee"`` — minimum EDP, the balanced default;
    - ``"index"`` — the explicit ``index``-th point.
    """
    if policy not in SELECTION_POLICIES:
        raise ValueError(f"unknown selection policy {policy!r}; "
                         f"expected one of {SELECTION_POLICIES}")
    if not metrics:
        raise ValueError("cannot select from an empty front")
    if policy == "index":
        if index is None:
            raise ValueError("policy 'index' needs an explicit index")
        if not 0 <= index < len(metrics):
            raise ValueError(f"index {index} out of range for a "
                             f"{len(metrics)}-point front")
        return index
    keys = {
        "latency-opt": lambda m: (m[0], m[1]),
        "energy-opt": lambda m: (m[1], m[0]),
        "knee": lambda m: (m[2], m[0]),
    }
    key = keys[policy]
    return min(range(len(metrics)), key=lambda i: key(metrics[i]))


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design: genome + its aggregated hardware numbers."""

    genome: Tuple[Candidate, ...]
    eval: EvalResult

    @property
    def objectives(self) -> Tuple[float, float, int]:
        return (self.eval.latency_ms, self.eval.energy_mj,
                self.eval.crossbars)


@dataclass
class ParetoResult:
    """The front found by :func:`pareto_search`.

    ``points`` is sorted by latency ascending (therefore roughly energy
    descending — that's what a frontier looks like).  ``history`` records
    the archive size per iteration, concatenated across restarts.
    """

    points: List[ParetoPoint]
    layer_names: Tuple[str, ...]
    history: List[float]
    feasible: bool = True

    def __len__(self) -> int:
        return len(self.points)

    def knee(self) -> ParetoPoint:
        """The front's minimum-EDP point — the balanced default pick."""
        if not self.points:
            raise ValueError("empty Pareto front")
        return min(self.points, key=lambda p: p.eval.edp)

    def select(self, policy: str = "knee",
               index: Optional[int] = None) -> ParetoPoint:
        """Pick one operating point by policy (see :func:`select_index`)."""
        metrics = [(p.eval.latency_ms, p.eval.energy_mj, p.eval.edp)
                   for p in self.points]
        return self.points[select_index(metrics, policy, index)]

    def as_search_result(self) -> SearchResult:
        """The knee point as a :class:`SearchResult`, front attached."""
        point = self.knee()
        assignment = {name: cand
                      for name, cand in zip(self.layer_names, point.genome)
                      if cand is not None}
        return SearchResult(assignment=assignment,
                            genome=list(point.genome),
                            eval=point.eval,
                            history=list(self.history),
                            feasible=self.feasible,
                            front=list(self.points))


def non_dominated_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an ``(N, M)`` objective
    matrix (all objectives minimized).

    Row ``i`` dominates row ``j`` when it is <= everywhere and < somewhere.
    """
    objectives = np.asarray(objectives, dtype=np.float64)
    if objectives.ndim != 2:
        raise ValueError("objectives must be (N, M)")
    if len(objectives) == 0:
        return np.zeros(0, dtype=bool)
    leq = (objectives[:, None, :] <= objectives[None, :, :]).all(axis=2)
    lt = (objectives[:, None, :] < objectives[None, :, :]).any(axis=2)
    dominated = (leq & lt).any(axis=0)
    return ~dominated


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance; extreme points get +inf so capacity
    thinning never drops the frontier's end points."""
    objectives = np.asarray(objectives, dtype=np.float64)
    n, m = objectives.shape
    distance = np.zeros(n)
    for k in range(m):
        order = np.argsort(objectives[:, k], kind="stable")
        values = objectives[order, k]
        distance[order[0]] = distance[order[-1]] = np.inf
        spread = values[-1] - values[0]
        if n > 2 and spread > 0:
            distance[order[1:-1]] += (values[2:] - values[:-2]) / spread
    return distance


def _thin(genomes: np.ndarray, objectives: np.ndarray,
          capacity: int) -> Tuple[np.ndarray, np.ndarray]:
    if len(genomes) <= capacity:
        return genomes, objectives
    keep = np.argsort(-crowding_distance(objectives), kind="stable")[:capacity]
    keep.sort()     # preserve insertion order for determinism
    return genomes[keep], objectives[keep]


def _dedupe(genomes: np.ndarray, objectives: np.ndarray
            ) -> Tuple[np.ndarray, np.ndarray]:
    _, index = np.unique(genomes, axis=0, return_index=True)
    index.sort()
    return genomes[index], objectives[index]


def pareto_search(grid: CandidateGrid,
                  crossbar_budget: Optional[int],
                  search: EvoSearchConfig = EvoSearchConfig(),
                  lut: ComponentLUT = DEFAULT_LUT) -> ParetoResult:
    """Evolve the Pareto front of latency x energy x crossbars.

    Restarts evolve independent archives (seeds ``seed, seed+1, ...``,
    fanned across ``search.workers`` processes when asked) whose fronts
    are merged and re-filtered for dominance, so more restarts only ever
    widen or tighten the frontier.
    """
    configs = [replace(search, seed=search.seed + restart, restarts=1)
               for restart in range(search.restarts)]
    payloads = [(grid, crossbar_budget, config, lut) for config in configs]
    runs = parallel_map(_pareto_task, payloads, search.workers)
    matrices = grid.matrices()
    genomes = np.concatenate([g for g, _, _ in runs], axis=0)
    objectives = np.concatenate([o for _, o, _ in runs], axis=0)
    history: List[float] = []
    for _, _, run_history in runs:
        history.extend(run_history)
    feasible = True
    if len(genomes) == 0:
        # Budget unattainable: surface the smallest design, flagged.
        rng = np.random.default_rng(search.seed)
        genomes = initial_population(grid, 1, rng)
        evals = evaluate_population(matrices, genomes, lut)
        objectives = np.stack([evals.latency_ms, evals.energy_mj,
                               evals.crossbars.astype(np.float64)], axis=1)
        feasible = False
    genomes, objectives = _dedupe(genomes, objectives)
    mask = non_dominated_mask(objectives)
    genomes, objectives = _thin(genomes[mask], objectives[mask],
                                ARCHIVE_CAPACITY)
    # Distinct genomes can tie on every objective; keep one per objective
    # vector so the reported front has no duplicate rows.
    _, unique_index = np.unique(objectives, axis=0, return_index=True)
    unique_index.sort()
    genomes, objectives = genomes[unique_index], objectives[unique_index]
    order = np.argsort(objectives[:, 0], kind="stable")
    points = []
    for i in order:
        genome = tuple(decode_genome(matrices, genomes[i]))
        points.append(ParetoPoint(genome=genome,
                                  eval=evaluate_assignment(grid, genome, lut)))
    get_metrics().gauge("search.pareto.front_size",
                        help="points on the last merged Pareto front"
                        ).set(len(points))
    return ParetoResult(points=points, layer_names=matrices.layer_names,
                        history=history, feasible=feasible)


def _pareto_task(payload) -> Tuple[np.ndarray, np.ndarray, List[float]]:
    """Module-level so ProcessPoolExecutor can pickle it."""
    grid, crossbar_budget, config, lut = payload
    return _pareto_search_once(grid, crossbar_budget, config, lut)


def _pareto_search_once(grid: CandidateGrid,
                        crossbar_budget: Optional[int],
                        search: EvoSearchConfig,
                        lut: ComponentLUT
                        ) -> Tuple[np.ndarray, np.ndarray, List[float]]:
    """One archive's evolution; returns (genomes, objectives, history).

    Per-generation spans land on the ``pareto seed=N`` track; run totals
    go to ``search.pareto.*`` in the installed registry.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    rng = np.random.default_rng(search.seed)
    matrices = grid.matrices()
    population = initial_population(grid, search.population_size, rng)
    archive_g = np.empty((0, matrices.num_layers), dtype=np.int64)
    archive_o = np.empty((0, 3), dtype=np.float64)
    history: List[float] = []
    track = f"pareto seed={search.seed}"
    stall = 0

    for generation in range(search.iterations):
        span_start = tracer.now_ms() if tracer.enabled else 0.0
        evals = evaluate_population(matrices, population, lut)
        objectives = np.stack([evals.latency_ms, evals.energy_mj,
                               evals.crossbars.astype(np.float64)], axis=1)
        if crossbar_budget is None:
            in_budget = np.ones(len(population), dtype=bool)
        else:
            in_budget = evals.crossbars <= crossbar_budget
        merged_g = np.concatenate([archive_g, population[in_budget]], axis=0)
        merged_o = np.concatenate([archive_o, objectives[in_budget]], axis=0)
        changed = False
        if len(merged_g):
            merged_g, merged_o = _dedupe(merged_g, merged_o)
            mask = non_dominated_mask(merged_o)
            new_g, new_o = _thin(merged_g[mask], merged_o[mask],
                                 ARCHIVE_CAPACITY)
            changed = (len(new_g) != len(archive_g)
                       or {g.tobytes() for g in new_g}
                       != {g.tobytes() for g in archive_g})
            archive_g, archive_o = new_g, new_o
        history.append(float(len(archive_g)))
        if tracer.enabled:
            tracer.record(
                f"generation[{generation}]", "search.pareto",
                span_start, tracer.now_ms(), track=track,
                args={"generation": generation, "seed": search.seed,
                      "archive_size": len(archive_g),
                      "population": len(population)})
        if search.patience is not None:
            stall = 0 if changed else stall + 1
            if stall >= search.patience:
                break
        if len(archive_g):
            take = min(search.num_parents, len(archive_g))
            parents = archive_g[rng.permutation(len(archive_g))[:take]]
        else:
            # Nothing feasible yet: march toward the budget.
            order = np.argsort(evals.crossbars, kind="stable")
            parents = population[order[:search.num_parents]]
        population = breed(parents, search, matrices.num_options, rng)

    metrics.counter("search.pareto.generations",
                    help="Pareto generations evaluated"
                    ).inc(len(history))
    metrics.gauge("search.pareto.archive_size",
                  help="archive size at the end of the last run"
                  ).set(len(archive_g))
    return archive_g, archive_o, history
