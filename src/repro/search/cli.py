"""``python -m repro search`` — design-space search from the shell.

Examples::

    python -m repro search                               # latency-opt ResNet-50
    python -m repro search --objective pareto            # full frontier
    python -m repro search --model resnet18 --objective edp \
        --population 128 --iterations 100 --restarts 4 --workers 4
    python -m repro search --budget 600 --json design.json

The crossbar budget defaults to ``--budget-fraction`` (0.78, Table 1's
convention) of the uniform 1024x256 design's demand; ``--budget`` pins an
absolute number of crossbars instead.  ``--json`` writes the winning
genome (and, in Pareto mode, the whole front) for downstream tooling —
e.g. handing an assignment to ``repro serve``.

Candidate-grid construction is deduped by layer-shape signature, shards
across ``--workers`` processes, and persists per-(signature, candidate)
simulation results under ``~/.cache/repro/grids`` (override with
``--cache-dir`` or ``REPRO_GRID_CACHE_DIR``; disable with ``--no-cache``)
so repeat sweeps start warm.  ``--json`` output records what the cache
did (``grid_build_s``, ``grid_cache`` hits/misses, ``unique_signatures``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..obs.export import write_metrics
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import use_metrics, use_tracer
from ..obs.tracer import NullTracer, Tracer
from ..pim.simulator import sim_counters
from .evolve import EvoSearchConfig
from .gridcache import GridCache

__all__ = ["add_search_parser", "run_search_cli", "search_result_payload",
           "main", "SEARCH_RESULT_SCHEMA", "SEARCH_RESULT_VERSION"]

MODELS = ["resnet18", "resnet34", "resnet50", "resnet101"]
OBJECTIVE_CHOICES = ["latency", "energy", "edp", "pareto"]

# The ``--json`` output is a stable, versioned contract — the hand-off
# artifact ``repro serve --from-search`` consumes (parser:
# :func:`repro.serve.deploy.load_search_result`; documented field-by-field
# in docs/search-to-serve.md).  Bump the version on any
# backwards-incompatible key change.
SEARCH_RESULT_SCHEMA = "repro-search-result"
SEARCH_RESULT_VERSION = 1


def add_search_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``search`` subcommand on an existing subparser set."""
    p = subparsers.add_parser(
        "search",
        help="evolutionary design-space search (Alg. 1, vectorized)")
    p.add_argument("--model", default="resnet50", choices=MODELS,
                   help="network whose layer-wise design is searched")
    p.add_argument("--objective", default="latency",
                   choices=OBJECTIVE_CHOICES,
                   help="scalar reward, or 'pareto' for the "
                        "latency x energy x crossbars front")
    p.add_argument("--budget", type=int, default=None, metavar="XBS",
                   help="absolute crossbar budget (default: derived from "
                        "--budget-fraction)")
    p.add_argument("--budget-fraction", type=float, default=0.78,
                   metavar="FRAC",
                   help="budget as a fraction of the uniform 1024x256 "
                        "design's crossbars (Table 1 convention)")
    p.add_argument("--population", type=int, default=64)
    p.add_argument("--iterations", type=int, default=60)
    p.add_argument("--restarts", type=int, default=3)
    p.add_argument("--num-parents", type=int, default=16)
    p.add_argument("--mutation-layers", type=int, default=3)
    p.add_argument("--crossover-rate", type=float, default=0.5)
    p.add_argument("--patience", type=int, default=None,
                   help="early-stop after this many stagnant iterations")
    p.add_argument("--workers", type=int, default=1,
                   help="processes for the restart fan-out and the "
                        "candidate-grid build")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="grid-cache directory (default: "
                        "$REPRO_GRID_CACHE_DIR or ~/.cache/repro/grids)")
    p.add_argument("--no-cache", action="store_true",
                   help="build the candidate grid without the persistent "
                        "on-disk cache")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--weight-bits", type=int, default=9)
    p.add_argument("--activation-bits", type=int, default=9)
    p.add_argument("--no-wrapping", action="store_true",
                   help="disable channel wrapping in the candidate grid")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write per-generation search spans: .json = "
                        "Chrome trace-event (Perfetto-loadable), .jsonl "
                        "= one span per line")
    p.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="export search.*/pim.* metrics: .prom/.txt = "
                        "Prometheus text, .jsonl = JSON lines")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the result (genome/front/history) as "
                        "versioned JSON — the artifact `repro serve "
                        "--from-search` consumes")
    p.add_argument("--emit-deployment", default=None, metavar="PATH",
                   help="also write the winner's format-2 deployment "
                        "manifest (servable via `repro serve --manifest`)")
    return p


def _genome_json(genome) -> List:
    return [list(cand) if cand is not None else None for cand in genome]


def search_result_payload(outcome, cache: Optional[GridCache] = None) -> dict:
    """The versioned search-result payload (schema v1) for a
    :class:`~repro.analysis.experiments.SearchRunResult`.

    Single source of truth for the JSON contract: the CLI writes exactly
    this dict, and :func:`repro.analysis.experiments.run_search_then_serve`
    round-trips through it so the experiment exercises the same artifact a
    production hand-off would.
    """
    stats = outcome.grid_stats
    payload = {
        "schema": SEARCH_RESULT_SCHEMA,
        "schema_version": SEARCH_RESULT_VERSION,
        "model": outcome.model,
        "objective": outcome.objective,
        "budget": outcome.budget,
        "baseline_crossbars": outcome.baseline_crossbars,
        "design_space_size": float(outcome.design_space_size),
        "feasible": outcome.result.feasible,
        "precision": {
            "weight_bits": outcome.weight_bits,
            "activation_bits": outcome.activation_bits,
            "use_wrapping": outcome.use_wrapping,
        },
        "layers": list(outcome.layers or []),
        "grid_build_s": stats.build_s if stats else None,
        "unique_signatures": (stats.unique_signatures if stats
                              else None),
        "grid_cache": {
            "enabled": cache is not None,
            "dir": str(cache.dir) if cache is not None else None,
            "hits": stats.cache_hits if stats else 0,
            "misses": stats.cache_misses if stats else 0,
            "simulated": stats.simulated if stats else None,
            "sim_tasks_unique": (stats.sim_tasks_unique if stats
                                 else None),
            "sim_tasks_total": (stats.sim_tasks_total if stats
                                else None),
        },
        "history": outcome.result.history,
        "best": {
            "genome": _genome_json(outcome.result.genome),
            "assignment": {name: list(cand) for name, cand
                           in outcome.result.assignment.items()},
            "crossbars": outcome.result.eval.crossbars,
            "latency_ms": outcome.result.eval.latency_ms,
            "energy_mj": outcome.result.eval.energy_mj,
            "edp": outcome.result.eval.edp,
        },
    }
    if outcome.front is not None:
        payload["front"] = [{
            "genome": _genome_json(point.genome),
            "crossbars": point.eval.crossbars,
            "latency_ms": point.eval.latency_ms,
            "energy_mj": point.eval.energy_mj,
            "edp": point.eval.edp,
        } for point in outcome.front]
    return payload


def run_search_cli(args) -> int:
    """Dispatch a parsed ``search`` namespace (wired from repro.analysis.cli)."""
    # Imported here: repro.analysis.cli imports this module, and
    # experiments pulls the analysis package in turn.
    from ..analysis.experiments import run_search

    try:
        search = EvoSearchConfig(
            population_size=args.population,
            iterations=args.iterations,
            num_parents=args.num_parents,
            mutation_layers=args.mutation_layers,
            objective=args.objective,
            seed=args.seed,
            restarts=args.restarts,
            crossover_rate=args.crossover_rate,
            patience=args.patience,
            workers=args.workers,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else GridCache(args.cache_dir)
    tracer = Tracer() if args.trace_out is not None else NullTracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        outcome = run_search(
            model_name=args.model,
            objective=args.objective,
            budget=args.budget,
            budget_fraction=args.budget_fraction,
            search=search,
            weight_bits=args.weight_bits,
            activation_bits=args.activation_bits,
            use_wrapping=not args.no_wrapping,
            grid_workers=args.workers,
            grid_cache=cache,
        )
    if args.metrics_out is not None:
        sim_counters().publish(registry)
        write_metrics(registry, args.metrics_out)
        print(f"wrote metrics -> {args.metrics_out}", file=sys.stderr)
    if args.trace_out is not None:
        if args.trace_out.endswith(".jsonl"):
            tracer.write_jsonl(args.trace_out)
        else:
            tracer.write_chrome_trace(args.trace_out)
        print(f"wrote trace ({len(tracer)} spans) -> {args.trace_out}",
              file=sys.stderr)
    stats = outcome.grid_stats
    if stats is not None:
        # stderr, so cold and warm runs produce identical stdout (CI
        # diffs the winner across the two).
        print(f"grid: {stats.simulated} simulated of "
              f"{stats.sim_tasks_unique} unique tasks "
              f"({stats.sim_tasks_total} serial-equivalent, "
              f"{stats.unique_signatures} signatures), "
              f"cache {stats.cache_hits} hits / {stats.cache_misses} misses, "
              f"built in {stats.build_s:.3f}s", file=sys.stderr)
    if not outcome.result.feasible:
        print(f"warning: no design met the {outcome.budget}-crossbar "
              "budget; reporting the closest infeasible one",
              file=sys.stderr)
    if args.json:
        payload = search_result_payload(outcome, cache=cache)
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {path}")
    if args.emit_deployment:
        # The winner (scalar mode) / knee (Pareto mode) as a servable
        # format-2 manifest, compiled by the same bridge `repro serve
        # --from-search` uses — one compile path for the hand-off artifact.
        # Imported lazily: repro.serve pulls this module in via its CLI.
        from ..core.export import write_manifest
        from ..serve.deploy import load_search_result, manifest_from_point

        loaded = load_search_result(search_result_payload(outcome))
        write_manifest(manifest_from_point(loaded, loaded.best),
                       args.emit_deployment)
        print(f"wrote deployment manifest -> {args.emit_deployment}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.search.cli``)."""
    parser = argparse.ArgumentParser(prog="python -m repro.search.cli")
    sub = parser.add_subparsers(dest="command", required=True)
    add_search_parser(sub)
    return run_search_cli(parser.parse_args(argv))


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
