"""repro.search — the design-space search engine (paper section 5.2).

- :mod:`repro.search.grid` — candidate grids, numpy lookup matrices and
  the vectorized population evaluator (bit-for-bit equal to the scalar
  per-genome path);
- :mod:`repro.search.evolve` — Algorithm 1, vectorized: integer-array
  populations, crossover + layer re-roll mutation, reward-plateau early
  stopping, multiprocess-parallel restarts;
- :mod:`repro.search.pareto` — multi-objective mode: the Pareto front of
  latency x energy x crossbars instead of a single scalar reward;
- :mod:`repro.search.cli` — the ``python -m repro search`` subcommand.

``repro.core.search`` re-exports this package's public API, so historical
imports keep resolving.
"""

from .grid import (
    DEFAULT_CANDIDATES,
    OBJECTIVES,
    Candidate,
    CandidateGrid,
    EvalResult,
    GridMatrices,
    PopulationEval,
    build_candidate_grid,
    build_matrices,
    decode_genome,
    encode_genome,
    evaluate_assignment,
    evaluate_population,
    population_rewards,
    uniform_budget,
)
from .evolve import (
    EvoSearchConfig,
    SearchResult,
    evolution_search,
    initial_population,
)
from .pareto import (
    ParetoPoint,
    ParetoResult,
    crowding_distance,
    non_dominated_mask,
    pareto_search,
)

__all__ = [
    "Candidate",
    "CandidateGrid",
    "DEFAULT_CANDIDATES",
    "OBJECTIVES",
    "EvalResult",
    "EvoSearchConfig",
    "GridMatrices",
    "ParetoPoint",
    "ParetoResult",
    "PopulationEval",
    "SearchResult",
    "build_candidate_grid",
    "build_matrices",
    "crowding_distance",
    "decode_genome",
    "encode_genome",
    "evaluate_assignment",
    "evaluate_population",
    "evolution_search",
    "initial_population",
    "non_dominated_mask",
    "pareto_search",
    "population_rewards",
    "uniform_budget",
]
