"""repro.search — the design-space search engine (paper section 5.2).

- :mod:`repro.search.grid` — candidate grids, numpy lookup matrices and
  the vectorized population evaluator (bit-for-bit equal to the scalar
  per-genome path);
- :mod:`repro.search.evolve` — Algorithm 1, vectorized: integer-array
  populations, crossover + layer re-roll mutation, reward-plateau early
  stopping, multiprocess-parallel restarts;
- :mod:`repro.search.pareto` — multi-objective mode: the Pareto front of
  latency x energy x crossbars instead of a single scalar reward;
- :mod:`repro.search.signature` — shape signatures: the content addresses
  behind grid dedup and the persistent cache;
- :mod:`repro.search.gridcache` — the on-disk (signature, candidate)
  grid cache (``~/.cache/repro/grids`` by default);
- :mod:`repro.search.parallel` — the shared process-pool fan-out with
  order-preserving merge and SimCounters repatriation;
- :mod:`repro.search.cli` — the ``python -m repro search`` subcommand.

``repro.core.search`` re-exports this package's public API, so historical
imports keep resolving.
"""

from .grid import (
    DEFAULT_CANDIDATES,
    OBJECTIVES,
    Candidate,
    CandidateGrid,
    EvalResult,
    GridBuildStats,
    GridMatrices,
    PopulationEval,
    build_candidate_grid,
    build_candidate_grid_serial,
    build_matrices,
    decode_genome,
    encode_genome,
    evaluate_assignment,
    evaluate_population,
    population_rewards,
    uniform_budget,
)
from .gridcache import GridCache, GridCacheStats, default_cache_dir
from .parallel import effective_workers, parallel_map
from .signature import grid_context_key, layer_signature
from .evolve import (
    EvoSearchConfig,
    SearchResult,
    evolution_search,
    initial_population,
)
from .pareto import (
    SELECTION_POLICIES,
    ParetoPoint,
    ParetoResult,
    crowding_distance,
    non_dominated_mask,
    pareto_search,
    select_index,
)

__all__ = [
    "Candidate",
    "CandidateGrid",
    "DEFAULT_CANDIDATES",
    "OBJECTIVES",
    "EvalResult",
    "EvoSearchConfig",
    "GridBuildStats",
    "GridCache",
    "GridCacheStats",
    "GridMatrices",
    "ParetoPoint",
    "ParetoResult",
    "PopulationEval",
    "SELECTION_POLICIES",
    "SearchResult",
    "build_candidate_grid",
    "build_candidate_grid_serial",
    "build_matrices",
    "crowding_distance",
    "decode_genome",
    "default_cache_dir",
    "effective_workers",
    "encode_genome",
    "evaluate_assignment",
    "evaluate_population",
    "evolution_search",
    "grid_context_key",
    "initial_population",
    "layer_signature",
    "non_dominated_mask",
    "parallel_map",
    "pareto_search",
    "population_rewards",
    "select_index",
    "uniform_budget",
]
