"""Persistent on-disk candidate-grid cache (content-addressed).

One JSON file per layer *signature* (see :mod:`repro.search.signature`),
holding the simulated ``(crossbars, latency_ns, dynamic_pj)`` triple for
every deployment evaluated so far under that signature.  Entries are
keyed by the *resolved* deployment — ``BASELINE_KEY`` for the keep-conv
cell, :func:`~repro.search.signature.resolved_shape_key` for epitomes —
so partial hits survive candidate-list or network-spec edits: adding a
candidate to the ladder re-simulates only genuinely new shapes, distinct
candidates clamping to the same shape share one cell, and a new network
reuses every layer shape it shares with previously searched ones.

Invalidation is by content addressing, not timestamps: the signature
hashes the precision, wrapping mode, :class:`HardwareConfig`,
:class:`ComponentLUT` and the format version, so any change lands in
different files and old entries are simply never read.  Corrupt or
foreign files are treated as misses — the cache can always be deleted (or
:meth:`GridCache.wipe`-d) with no correctness consequence.

Numeric fidelity: values are serialized with :func:`json.dump`, whose
``repr``-based float formatting round-trips IEEE-754 doubles exactly, so a
warm rebuild is bit-for-bit identical to the cold build that populated it
(pinned by ``tests/search/test_gridcache.py``).

Default location: ``~/.cache/repro/grids`` (override with the
``REPRO_GRID_CACHE_DIR`` environment variable or a ``cache_dir``
argument / ``--cache-dir`` flag).
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "ENV_CACHE_DIR",
    "GRID_CACHE_FILE_FORMAT",
    "GridCache",
    "GridCacheStats",
    "default_cache_dir",
]

ENV_CACHE_DIR = "REPRO_GRID_CACHE_DIR"

# On-disk file format (independent of the signature version, which guards
# the *meaning* of the numbers; this guards the JSON layout).
GRID_CACHE_FILE_FORMAT = 1

# (crossbars, latency_ns, dynamic_energy_pj) — the grid cache cell type.
Cell = Tuple[int, float, float]


def default_cache_dir() -> Path:
    """``$REPRO_GRID_CACHE_DIR`` or ``~/.cache/repro/grids``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "grids"


@dataclass
class GridCacheStats:
    """Per-task hit/miss accounting of one or more builds through a cache.

    Counted at ``(signature, candidate)`` granularity — a *hit* is one
    ``simulate_layer`` call avoided, a *miss* is one performed and stored —
    so operators can read the counts as simulations saved.
    """

    hits: int = 0
    misses: int = 0
    files_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "files_written": self.files_written}


@dataclass
class GridCache:
    """Content-addressed store of simulated grid cells, one file per
    signature.

    The store is merge-on-write: :meth:`store` folds new candidate entries
    into whatever the signature's file already holds, so *successive*
    builds with different candidate ladders accumulate.  Writes are
    atomic (temp file + rename), so readers never see a torn file;
    two processes storing the same signature at the same instant may
    lose one writer's entries to the other (last rename wins) — never a
    correctness issue, the lost cells are simply re-simulated later.
    Write failures (read-only cache dir, full disk) degrade to a warning:
    the build's results are already in memory and must not be discarded
    over a cache store.
    """

    cache_dir: Optional[Union[str, Path]] = None
    stats: GridCacheStats = field(default_factory=GridCacheStats)

    def __post_init__(self):
        self.cache_dir = Path(self.cache_dir) if self.cache_dir \
            else default_cache_dir()

    @property
    def dir(self) -> Path:
        return Path(self.cache_dir)

    def _path(self, signature: str) -> Path:
        return self.dir / f"{signature}.json"

    def load(self, signature: str) -> Dict[str, Cell]:
        """All cached cells for one signature (``{}`` on miss/corruption).

        Does not touch :attr:`stats` — hit/miss accounting happens per
        requested candidate in the build pipeline, which knows how many
        cells it actually needed.
        """
        try:
            with open(self._path(signature), "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict) \
                or payload.get("format") != GRID_CACHE_FILE_FORMAT \
                or payload.get("signature") != signature:
            return {}
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return {}
        cells: Dict[str, Cell] = {}
        for key, value in entries.items():
            if not (isinstance(value, list) and len(value) == 3):
                continue
            try:
                cells[key] = (int(value[0]), float(value[1]),
                              float(value[2]))
            except (TypeError, ValueError):
                continue    # malformed cell: a miss, like any corruption
        return cells

    def store(self, signature: str, entries: Dict[str, Cell]) -> None:
        """Merge ``entries`` into the signature's file (atomic rename).

        Never raises on filesystem trouble — an unwritable cache must not
        crash a search whose simulation work is already done; the store
        degrades to a warning and the entries stay cold.
        """
        if not entries:
            return
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            merged = self.load(signature)
            merged.update(entries)
            payload = {
                "format": GRID_CACHE_FILE_FORMAT,
                "signature": signature,
                "entries": {key: [cell[0], cell[1], cell[2]]
                            for key, cell in merged.items()},
            }
            fd, tmp = tempfile.mkstemp(dir=str(self.dir),
                                       prefix=f".{signature}.",
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, sort_keys=True)
                os.replace(tmp, self._path(signature))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            warnings.warn(f"grid cache write failed ({exc}); results kept "
                          "in memory only", stacklevel=2)
            return
        self.stats.files_written += 1

    def wipe(self) -> int:
        """Delete every cached signature file (and any temp files a
        killed writer left behind); returns how many signature files went.
        """
        removed = 0
        if not self.dir.is_dir():
            return removed
        for path in self.dir.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.dir.glob(".*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
