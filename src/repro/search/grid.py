"""Candidate grids and the vectorized population evaluator.

The design space of section 5.2 is a per-layer choice out of a candidate
set ``C`` (``None`` keeps the conv layer as-is).  A layer's hardware cost
(crossbars, latency, dynamic energy) depends only on its own deployment,
so the whole space is captured by three ``(layers, candidates)`` lookup
matrices.  A genome is then an integer index per layer, a population is an
``(P, L)`` integer array, and scoring a generation is a gather plus a sum
over the layer axis — no per-individual Python loop.

:func:`evaluate_population` accumulates the layer axis in layer order so
its sums are *bit-for-bit identical* to the scalar
:func:`evaluate_assignment` loop (same IEEE-754 operation sequence);
reward orderings of the vectorized and scalar paths therefore agree
exactly, which ``tests/search/test_grid.py`` pins down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.specs import LayerSpec, NetworkSpec
from ..obs.runtime import get_metrics
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import (
    baseline_deployment,
    epitome_deployment_from_plan,
    epitome_deployment_from_shape,
    simulate_layer,
)
from .gridcache import GridCache
from .parallel import effective_workers, parallel_map
from .signature import (
    BASELINE_KEY,
    grid_context_key,
    layer_signature,
    resolved_shape_key,
)

__all__ = [
    "Candidate",
    "DEFAULT_CANDIDATES",
    "CandidateGrid",
    "GridBuildStats",
    "GridMatrices",
    "EvalResult",
    "PopulationEval",
    "build_candidate_grid",
    "build_candidate_grid_serial",
    "evaluate_assignment",
    "evaluate_population",
    "population_rewards",
    "encode_genome",
    "decode_genome",
    "uniform_budget",
]

# A candidate is a (rows, cols) epitome description or None (keep conv).
Candidate = Optional[Tuple[int, int]]

DEFAULT_CANDIDATES: List[Candidate] = [
    None,
    (2048, 512), (2048, 256),
    (1024, 512), (1024, 256), (1024, 128),
    (512, 256), (512, 128),
    (256, 128), (256, 64),
]

OBJECTIVES = ("latency", "energy", "edp")


@dataclass(frozen=True)
class GridMatrices:
    """Per-layer hardware cache encoded as numpy lookup matrices.

    Rows are layers (grid/spec order); columns index each layer's valid
    candidate list.  ``num_options[i]`` columns are meaningful in row
    ``i``; the padding beyond them is never indexed because genomes hold
    in-range option indices.
    """

    layer_names: Tuple[str, ...]
    options: Tuple[Tuple[Candidate, ...], ...]
    num_options: np.ndarray     # (L,) int64
    crossbars: np.ndarray       # (L, K) int64
    latency_ns: np.ndarray      # (L, K) float64
    dynamic_pj: np.ndarray      # (L, K) float64

    @property
    def num_layers(self) -> int:
        return len(self.layer_names)

    def option_index(self, layer: int, candidate: Candidate) -> int:
        return self.options[layer].index(candidate)


@dataclass(frozen=True)
class GridBuildStats:
    """What one :func:`build_candidate_grid` call actually did.

    ``sim_tasks_total`` is the number of ``simulate_layer`` calls the
    serial reference would make; ``sim_tasks_unique`` is what remains
    after shape-signature + resolved-shape dedup; ``simulated`` is how
    many of those were *not* served by the persistent cache.  Cache
    hit/miss counts are per unique task, i.e. simulations avoided/run.
    """

    build_s: float
    layers: int
    unique_signatures: int
    sim_tasks_total: int
    sim_tasks_unique: int
    simulated: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_enabled: bool = False
    workers: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "build_s": self.build_s,
            "layers": self.layers,
            "unique_signatures": self.unique_signatures,
            "sim_tasks_total": self.sim_tasks_total,
            "sim_tasks_unique": self.sim_tasks_unique,
            "simulated": self.simulated,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_enabled": self.cache_enabled,
            "workers": self.workers,
        }


@dataclass
class CandidateGrid:
    """Valid candidates per layer, plus cached per-layer hardware results."""

    spec: NetworkSpec
    candidates: Dict[str, List[Candidate]]
    # (layer name, candidate) -> (crossbars, latency_ns, dynamic_energy_pj)
    cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]]
    # How this grid was built (timing/dedup/cache accounting).  Excluded
    # from equality so differently built but identical grids compare equal.
    build_stats: Optional[GridBuildStats] = field(default=None, compare=False,
                                                  repr=False)

    def __post_init__(self):
        # Memoization slot for matrices(); a plain attribute (not a
        # dataclass field) so it stays out of equality, and dropped from
        # pickles via __getstate__ so cached/shipped grids stay compact.
        self._matrices: Optional[GridMatrices] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_matrices"] = None
        return state

    @property
    def design_space_size(self) -> int:
        size = 1
        for options in self.candidates.values():
            size *= len(options)
        return size

    def matrices(self) -> GridMatrices:
        """The grid's cache as lookup matrices (built once, then cached)."""
        if self._matrices is None:
            self._matrices = build_matrices(self)
        return self._matrices


def _simulate_candidate(payload) -> Tuple[int, float, float]:
    """Simulate one unique (layer shape, resolved epitome) pair.

    Module-level and fed picklable payloads so grid-build sharding can run
    it in worker processes; ``shape is None`` is the keep-conv baseline,
    otherwise it is the designer-resolved ``(eo, ei, eh, ew)`` — resolved
    once in the enumeration stage, so workers skip the designer and the
    patch-schedule construction entirely (closed-form deployment).
    Returns the grid cache cell.
    """
    (layer, shape, weight_bits, activation_bits, use_wrapping,
     config, lut) = payload
    if shape is None:
        dep = baseline_deployment(layer, weight_bits=weight_bits,
                                  activation_bits=activation_bits,
                                  config=config)
    else:
        dep = epitome_deployment_from_shape(
            layer, shape, weight_bits=weight_bits,
            activation_bits=activation_bits,
            use_wrapping=use_wrapping, config=config)
    report = simulate_layer(dep, config, lut)
    return (report.num_crossbars, report.latency_ns, report.energy_pj)


def build_candidate_grid(spec: NetworkSpec,
                         candidates: Sequence[Candidate] = tuple(DEFAULT_CANDIDATES),
                         weight_bits: Optional[int] = None,
                         activation_bits: Optional[int] = None,
                         use_wrapping: bool = False,
                         config: HardwareConfig = DEFAULT_CONFIG,
                         lut: ComponentLUT = DEFAULT_LUT,
                         workers: int = 1,
                         cache: Optional[GridCache] = None) -> CandidateGrid:
    """Enumerate valid candidates per layer and pre-simulate each one.

    Three-stage fast path (bit-for-bit identical to
    :func:`build_candidate_grid_serial`, which tests pin):

    1. **shape-signature dedup** — layers are grouped by their
       simulation-relevant shape signature and candidates by the concrete
       epitome shape they resolve to, so each unique (signature, shape)
       pair is simulated exactly once and fanned back out (ResNet-50:
       407 serial simulations collapse to 115 unique ones);
    2. **multiprocess sharding** — ``workers > 1`` distributes the unique
       simulations across a process pool with an order-preserving merge
       (and repatriates worker :class:`SimCounters`); single-core hosts
       degrade to the serial path automatically;
    3. **persistent cache** — ``cache`` serves previously simulated
       (signature, candidate) cells from disk and stores new ones, so a
       warm rebuild simulates nothing and partial hits survive
       candidate-list or spec edits (see :mod:`repro.search.gridcache`).

    The build's timing/dedup/cache accounting lands on
    ``CandidateGrid.build_stats``.
    """
    from ..core.designer import choose_epitome_shape

    t_start = time.perf_counter()
    context = grid_context_key(weight_bits, activation_bits, use_wrapping,
                               config, lut)

    # --- stage 1: group layers by shape signature -----------------------
    sig_of: Dict[str, str] = {}                  # layer name -> signature
    rep_of: Dict[str, LayerSpec] = {}            # signature -> representative
    sig_order: List[str] = []                    # first-seen signature order
    for layer in spec:
        sig = layer_signature(layer, context)
        sig_of[layer.name] = sig
        if sig not in rep_of:
            rep_of[sig] = layer
            sig_order.append(sig)

    # Per signature: valid candidates (serial order) and each candidate's
    # task key.  Distinct candidates clamping to the same concrete epitome
    # shape share one key — a second dedup level on top of the signature
    # grouping (ResNet-50: 168 signature-unique tasks -> 115 shape-unique).
    options_of: Dict[str, List[Candidate]] = {}
    keymap_of: Dict[str, Dict[Candidate, str]] = {}
    # (signature, task key) -> (representative layer, resolved shape tuple)
    tasks: Dict[Tuple[str, str], Tuple[LayerSpec,
                                       Optional[Tuple[int, ...]]]] = {}
    for sig in sig_order:
        rep = rep_of[sig]
        options: List[Candidate] = [None]
        keymap: Dict[Candidate, str] = {None: BASELINE_KEY}
        tasks.setdefault((sig, BASELINE_KEY), (rep, None))
        if rep.kind == "conv":
            for cand in candidates:
                if cand is None:
                    continue
                shape = choose_epitome_shape(rep, cand[0], cand[1], config)
                if shape is None:
                    continue
                options.append(cand)
                resolved = shape.as_tuple()
                key = resolved_shape_key(resolved)
                keymap[cand] = key
                tasks.setdefault((sig, key), (rep, resolved))
        options_of[sig] = options
        keymap_of[sig] = keymap

    # --- stage 3 (probe): partial hits from the persistent cache --------
    results: Dict[Tuple[str, str], Tuple[int, float, float]] = {}
    hits = misses = 0
    if cache is not None:
        loaded = {sig: cache.load(sig) for sig in sig_order}
        for sig, key in tasks:
            cell = loaded[sig].get(key)
            if cell is not None:
                results[(sig, key)] = cell
                hits += 1
            else:
                misses += 1
        cache.stats.hits += hits
        cache.stats.misses += misses

    todo = [task for task in tasks if task not in results]

    # --- stage 2: simulate the remaining unique tasks -------------------
    payloads = [(tasks[task][0], tasks[task][1], weight_bits,
                 activation_bits, use_wrapping, config, lut)
                for task in todo]
    # A handful of chunks per *effective* worker amortizes IPC without
    # hurting balance (the pool itself caps at cpu_count and task count).
    n_workers = effective_workers(workers, len(payloads))
    chunksize = max(1, len(payloads) // (n_workers * 4))
    fresh = parallel_map(_simulate_candidate, payloads, workers,
                         chunksize=chunksize)
    for task, cell in zip(todo, fresh):
        results[task] = cell

    # --- stage 3 (write-back): persist newly simulated cells ------------
    if cache is not None and todo:
        new_by_sig: Dict[str, Dict[str, Tuple[int, float, float]]] = {}
        for (sig, key), cell in zip(todo, fresh):
            new_by_sig.setdefault(sig, {})[key] = cell
        for sig, entries in new_by_sig.items():
            cache.store(sig, entries)

    # --- fan out to every layer sharing each signature ------------------
    per_layer: Dict[str, List[Candidate]] = {}
    cell_cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]] = {}
    total_tasks = 0
    for layer in spec:
        sig = sig_of[layer.name]
        options = list(options_of[sig])
        keymap = keymap_of[sig]
        per_layer[layer.name] = options
        total_tasks += len(options)
        for cand in options:
            cell_cache[(layer.name, cand)] = results[(sig, keymap[cand])]

    stats = GridBuildStats(
        build_s=time.perf_counter() - t_start,
        layers=len(spec),
        unique_signatures=len(sig_order),
        sim_tasks_total=total_tasks,
        sim_tasks_unique=len(tasks),
        simulated=len(todo),
        cache_hits=hits,
        cache_misses=misses,
        cache_enabled=cache is not None,
        workers=workers,
    )
    registry = get_metrics()
    registry.counter("search.gridcache.hits",
                     help="persistent grid-cache cell hits").inc(hits)
    registry.counter("search.gridcache.misses",
                     help="grid cells simulated fresh").inc(misses)
    registry.counter("search.gridcache.simulated",
                     help="unique candidate simulations run").inc(len(todo))
    return CandidateGrid(spec=spec, candidates=per_layer, cache=cell_cache,
                         build_stats=stats)


def build_candidate_grid_serial(spec: NetworkSpec,
                                candidates: Sequence[Candidate] = tuple(DEFAULT_CANDIDATES),
                                weight_bits: Optional[int] = None,
                                activation_bits: Optional[int] = None,
                                use_wrapping: bool = False,
                                config: HardwareConfig = DEFAULT_CONFIG,
                                lut: ComponentLUT = DEFAULT_LUT
                                ) -> CandidateGrid:
    """The retained serial reference: every (layer, candidate) pair
    simulated from scratch in spec order.

    Kept permanently (like the scalar population evaluator) so the
    deduped/parallel/cached pipeline's bit-for-bit equality stays a
    measured property — ``tests/search/test_gridcache.py`` compares the
    two paths exactly, and ``search.grid_build`` benchmarks this path as
    the cold baseline.
    """
    from ..core.designer import choose_epitome_shape
    from ..core.epitome import build_plan

    per_layer: Dict[str, List[Candidate]] = {}
    cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]] = {}
    for layer in spec:
        options: List[Candidate] = [None]
        report = simulate_layer(baseline_deployment(
            layer, weight_bits=weight_bits, activation_bits=activation_bits,
            config=config), config, lut)
        cache[(layer.name, None)] = (report.num_crossbars, report.latency_ns,
                                     report.energy_pj)
        if layer.kind == "conv":
            for cand in candidates:
                if cand is None:
                    continue
                shape = choose_epitome_shape(layer, cand[0], cand[1], config)
                if shape is None:
                    continue
                plan = build_plan(
                    (layer.out_channels, layer.in_channels, *layer.kernel_size),
                    shape, with_index_map=False)
                dep = epitome_deployment_from_plan(
                    layer, plan, weight_bits=weight_bits,
                    activation_bits=activation_bits,
                    use_wrapping=use_wrapping, config=config)
                report = simulate_layer(dep, config, lut)
                options.append(cand)
                cache[(layer.name, cand)] = (report.num_crossbars,
                                             report.latency_ns,
                                             report.energy_pj)
        per_layer[layer.name] = options
    return CandidateGrid(spec=spec, candidates=per_layer, cache=cache)


def build_matrices(grid: CandidateGrid) -> GridMatrices:
    """Encode a grid's per-layer cache into ``(L, K)`` lookup matrices."""
    layer_names = tuple(layer.name for layer in grid.spec)
    options = tuple(tuple(grid.candidates[name]) for name in layer_names)
    num_options = np.array([len(opts) for opts in options], dtype=np.int64)
    L, K = len(layer_names), int(num_options.max()) if len(layer_names) else 0
    crossbars = np.zeros((L, K), dtype=np.int64)
    latency_ns = np.zeros((L, K), dtype=np.float64)
    dynamic_pj = np.zeros((L, K), dtype=np.float64)
    for li, (name, opts) in enumerate(zip(layer_names, options)):
        for ki, cand in enumerate(opts):
            xb, lat, dyn = grid.cache[(name, cand)]
            crossbars[li, ki] = xb
            latency_ns[li, ki] = lat
            dynamic_pj[li, ki] = dyn
    return GridMatrices(layer_names=layer_names, options=options,
                        num_options=num_options, crossbars=crossbars,
                        latency_ns=latency_ns, dynamic_pj=dynamic_pj)


@dataclass(frozen=True)
class EvalResult:
    """Aggregated hardware numbers for one individual."""

    crossbars: int
    latency_ms: float
    energy_mj: float

    @property
    def edp(self) -> float:
        return self.latency_ms * self.energy_mj


@dataclass(frozen=True)
class PopulationEval:
    """Aggregated hardware numbers for a whole population (one array per
    metric, aligned with the population's row order)."""

    crossbars: np.ndarray       # (P,) int64
    latency_ms: np.ndarray      # (P,) float64
    energy_mj: np.ndarray       # (P,) float64

    def __len__(self) -> int:
        return len(self.crossbars)

    @property
    def edp(self) -> np.ndarray:
        return self.latency_ms * self.energy_mj

    def result(self, i: int) -> EvalResult:
        return EvalResult(crossbars=int(self.crossbars[i]),
                          latency_ms=float(self.latency_ms[i]),
                          energy_mj=float(self.energy_mj[i]))


def evaluate_assignment(grid: CandidateGrid, genome: Sequence[Candidate],
                        lut: ComponentLUT = DEFAULT_LUT) -> EvalResult:
    """Sum cached per-layer results + the network-level static energy."""
    xbars = 0
    latency_ns = 0.0
    dynamic_pj = 0.0
    for layer, cand in zip(grid.spec, genome):
        cell = grid.cache[(layer.name, cand)]
        xbars += cell[0]
        latency_ns += cell[1]
        dynamic_pj += cell[2]
    latency_ms = latency_ns / 1e6
    static_mj = (lut.p_leak_per_xbar_uw * xbars * latency_ms * 1e-6
                 * lut.energy_scale)
    return EvalResult(crossbars=xbars, latency_ms=latency_ms,
                      energy_mj=dynamic_pj / 1e9 + static_mj)


# reprolint: hot-loop -- vectorized evaluator (14-23x over scalar, PR 3)
def evaluate_population(matrices: GridMatrices, genomes: np.ndarray,
                        lut: ComponentLUT = DEFAULT_LUT) -> PopulationEval:
    """Score a ``(P, L)`` index-array population in one pass.

    The accumulation runs layer-by-layer (vectorized across the
    population) in the same left-to-right order as the scalar
    :func:`evaluate_assignment`, so every individual's totals match the
    scalar path bit-for-bit — O(L) numpy gathers instead of O(P*L)
    Python-level dict lookups.
    """
    genomes = np.asarray(genomes)
    if genomes.ndim != 2:
        raise ValueError(f"genomes must be (P, L), got shape {genomes.shape}")
    P, L = genomes.shape
    if L != matrices.num_layers:
        raise ValueError(f"genome length {L} != {matrices.num_layers} layers")
    xbars = np.zeros(P, dtype=np.int64)
    latency_ns = np.zeros(P, dtype=np.float64)
    dynamic_pj = np.zeros(P, dtype=np.float64)
    for li in range(L):
        col = genomes[:, li]
        xbars += matrices.crossbars[li, col]
        latency_ns += matrices.latency_ns[li, col]
        dynamic_pj += matrices.dynamic_pj[li, col]
    latency_ms = latency_ns / 1e6
    static_mj = (lut.p_leak_per_xbar_uw * xbars * latency_ms * 1e-6
                 * lut.energy_scale)
    return PopulationEval(crossbars=xbars, latency_ms=latency_ms,
                          energy_mj=dynamic_pj / 1e9 + static_mj)


def population_rewards(evals: PopulationEval, budget: Optional[int],
                       objective: str) -> np.ndarray:
    """Vectorized Eqs. 6-7: inverse objective, gated to 0 above budget."""
    if objective == "latency":
        value = evals.latency_ms
    elif objective == "energy":
        value = evals.energy_mj
    elif objective == "edp":
        value = evals.edp
    else:
        raise ValueError(f"unknown objective {objective!r}")
    rewards = np.zeros(len(evals), dtype=np.float64)
    np.divide(1.0, value, out=rewards, where=value > 0)
    if budget is not None:
        rewards[evals.crossbars > budget] = 0.0
    return rewards


def uniform_budget(grid: CandidateGrid, rows: int = 1024, cols: int = 256,
                   fraction: float = 0.78,
                   lut: ComponentLUT = DEFAULT_LUT) -> int:
    """Table 1's budget convention: a fraction of the uniform
    ``rows x cols`` design's crossbar demand (layers lacking the candidate
    stay unconverted).  Single source of truth for the CLI, the
    experiment runner and the bench suite."""
    genome = [(rows, cols) if (rows, cols) in grid.candidates[layer.name]
              else None for layer in grid.spec]
    return max(1, int(evaluate_assignment(grid, genome, lut).crossbars
                      * fraction))


def encode_genome(matrices: GridMatrices,
                  genome: Sequence[Candidate]) -> np.ndarray:
    """Candidate tuples -> per-layer option indices (inverse of decode)."""
    if len(genome) != matrices.num_layers:
        raise ValueError(f"genome length {len(genome)} != "
                         f"{matrices.num_layers} layers")
    return np.array([matrices.option_index(li, cand)
                     for li, cand in enumerate(genome)], dtype=np.int64)


def decode_genome(matrices: GridMatrices,
                  indices: np.ndarray) -> List[Candidate]:
    """Per-layer option indices -> candidate tuples."""
    return [matrices.options[li][int(ki)] for li, ki in enumerate(indices)]
