"""Candidate grids and the vectorized population evaluator.

The design space of section 5.2 is a per-layer choice out of a candidate
set ``C`` (``None`` keeps the conv layer as-is).  A layer's hardware cost
(crossbars, latency, dynamic energy) depends only on its own deployment,
so the whole space is captured by three ``(layers, candidates)`` lookup
matrices.  A genome is then an integer index per layer, a population is an
``(P, L)`` integer array, and scoring a generation is a gather plus a sum
over the layer axis — no per-individual Python loop.

:func:`evaluate_population` accumulates the layer axis in layer order so
its sums are *bit-for-bit identical* to the scalar
:func:`evaluate_assignment` loop (same IEEE-754 operation sequence);
reward orderings of the vectorized and scalar paths therefore agree
exactly, which ``tests/search/test_grid.py`` pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.specs import NetworkSpec
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import (
    baseline_deployment,
    epitome_deployment_from_plan,
    simulate_layer,
)

__all__ = [
    "Candidate",
    "DEFAULT_CANDIDATES",
    "CandidateGrid",
    "GridMatrices",
    "EvalResult",
    "PopulationEval",
    "build_candidate_grid",
    "evaluate_assignment",
    "evaluate_population",
    "population_rewards",
    "encode_genome",
    "decode_genome",
    "uniform_budget",
]

# A candidate is a (rows, cols) epitome description or None (keep conv).
Candidate = Optional[Tuple[int, int]]

DEFAULT_CANDIDATES: List[Candidate] = [
    None,
    (2048, 512), (2048, 256),
    (1024, 512), (1024, 256), (1024, 128),
    (512, 256), (512, 128),
    (256, 128), (256, 64),
]

OBJECTIVES = ("latency", "energy", "edp")


@dataclass(frozen=True)
class GridMatrices:
    """Per-layer hardware cache encoded as numpy lookup matrices.

    Rows are layers (grid/spec order); columns index each layer's valid
    candidate list.  ``num_options[i]`` columns are meaningful in row
    ``i``; the padding beyond them is never indexed because genomes hold
    in-range option indices.
    """

    layer_names: Tuple[str, ...]
    options: Tuple[Tuple[Candidate, ...], ...]
    num_options: np.ndarray     # (L,) int64
    crossbars: np.ndarray       # (L, K) int64
    latency_ns: np.ndarray      # (L, K) float64
    dynamic_pj: np.ndarray      # (L, K) float64

    @property
    def num_layers(self) -> int:
        return len(self.layer_names)

    def option_index(self, layer: int, candidate: Candidate) -> int:
        return self.options[layer].index(candidate)


@dataclass
class CandidateGrid:
    """Valid candidates per layer, plus cached per-layer hardware results."""

    spec: NetworkSpec
    candidates: Dict[str, List[Candidate]]
    # (layer name, candidate) -> (crossbars, latency_ns, dynamic_energy_pj)
    cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]]

    @property
    def design_space_size(self) -> int:
        size = 1
        for options in self.candidates.values():
            size *= len(options)
        return size

    def matrices(self) -> GridMatrices:
        """The grid's cache as lookup matrices (built once, then cached)."""
        cached = getattr(self, "_matrices", None)
        if cached is None:
            cached = build_matrices(self)
            object.__setattr__(self, "_matrices", cached)
        return cached


def build_candidate_grid(spec: NetworkSpec,
                         candidates: Sequence[Candidate] = tuple(DEFAULT_CANDIDATES),
                         weight_bits: Optional[int] = None,
                         activation_bits: Optional[int] = None,
                         use_wrapping: bool = False,
                         config: HardwareConfig = DEFAULT_CONFIG,
                         lut: ComponentLUT = DEFAULT_LUT) -> CandidateGrid:
    """Enumerate valid candidates per layer and pre-simulate each one."""
    # Imported here, not at module top: repro.core re-exports this package
    # through its repro.core.search shim, so a module-level import of
    # repro.core.* from here would be circular.
    from ..core.designer import choose_epitome_shape
    from ..core.epitome import build_plan

    per_layer: Dict[str, List[Candidate]] = {}
    cache: Dict[Tuple[str, Candidate], Tuple[int, float, float]] = {}
    for layer in spec:
        options: List[Candidate] = [None]
        report = simulate_layer(baseline_deployment(
            layer, weight_bits=weight_bits, activation_bits=activation_bits,
            config=config), config, lut)
        cache[(layer.name, None)] = (report.num_crossbars, report.latency_ns,
                                     report.energy_pj)
        if layer.kind == "conv":
            for cand in candidates:
                if cand is None:
                    continue
                shape = choose_epitome_shape(layer, cand[0], cand[1], config)
                if shape is None:
                    continue
                plan = build_plan(
                    (layer.out_channels, layer.in_channels, *layer.kernel_size),
                    shape, with_index_map=False)
                dep = epitome_deployment_from_plan(
                    layer, plan, weight_bits=weight_bits,
                    activation_bits=activation_bits,
                    use_wrapping=use_wrapping, config=config)
                report = simulate_layer(dep, config, lut)
                options.append(cand)
                cache[(layer.name, cand)] = (report.num_crossbars,
                                             report.latency_ns,
                                             report.energy_pj)
        per_layer[layer.name] = options
    return CandidateGrid(spec=spec, candidates=per_layer, cache=cache)


def build_matrices(grid: CandidateGrid) -> GridMatrices:
    """Encode a grid's per-layer cache into ``(L, K)`` lookup matrices."""
    layer_names = tuple(layer.name for layer in grid.spec)
    options = tuple(tuple(grid.candidates[name]) for name in layer_names)
    num_options = np.array([len(opts) for opts in options], dtype=np.int64)
    L, K = len(layer_names), int(num_options.max()) if len(layer_names) else 0
    crossbars = np.zeros((L, K), dtype=np.int64)
    latency_ns = np.zeros((L, K), dtype=np.float64)
    dynamic_pj = np.zeros((L, K), dtype=np.float64)
    for li, (name, opts) in enumerate(zip(layer_names, options)):
        for ki, cand in enumerate(opts):
            xb, lat, dyn = grid.cache[(name, cand)]
            crossbars[li, ki] = xb
            latency_ns[li, ki] = lat
            dynamic_pj[li, ki] = dyn
    return GridMatrices(layer_names=layer_names, options=options,
                        num_options=num_options, crossbars=crossbars,
                        latency_ns=latency_ns, dynamic_pj=dynamic_pj)


@dataclass(frozen=True)
class EvalResult:
    """Aggregated hardware numbers for one individual."""

    crossbars: int
    latency_ms: float
    energy_mj: float

    @property
    def edp(self) -> float:
        return self.latency_ms * self.energy_mj


@dataclass(frozen=True)
class PopulationEval:
    """Aggregated hardware numbers for a whole population (one array per
    metric, aligned with the population's row order)."""

    crossbars: np.ndarray       # (P,) int64
    latency_ms: np.ndarray      # (P,) float64
    energy_mj: np.ndarray       # (P,) float64

    def __len__(self) -> int:
        return len(self.crossbars)

    @property
    def edp(self) -> np.ndarray:
        return self.latency_ms * self.energy_mj

    def result(self, i: int) -> EvalResult:
        return EvalResult(crossbars=int(self.crossbars[i]),
                          latency_ms=float(self.latency_ms[i]),
                          energy_mj=float(self.energy_mj[i]))


def evaluate_assignment(grid: CandidateGrid, genome: Sequence[Candidate],
                        lut: ComponentLUT = DEFAULT_LUT) -> EvalResult:
    """Sum cached per-layer results + the network-level static energy."""
    xbars = 0
    latency_ns = 0.0
    dynamic_pj = 0.0
    for layer, cand in zip(grid.spec, genome):
        cell = grid.cache[(layer.name, cand)]
        xbars += cell[0]
        latency_ns += cell[1]
        dynamic_pj += cell[2]
    latency_ms = latency_ns / 1e6
    static_mj = (lut.p_leak_per_xbar_uw * xbars * latency_ms * 1e-6
                 * lut.energy_scale)
    return EvalResult(crossbars=xbars, latency_ms=latency_ms,
                      energy_mj=dynamic_pj / 1e9 + static_mj)


def evaluate_population(matrices: GridMatrices, genomes: np.ndarray,
                        lut: ComponentLUT = DEFAULT_LUT) -> PopulationEval:
    """Score a ``(P, L)`` index-array population in one pass.

    The accumulation runs layer-by-layer (vectorized across the
    population) in the same left-to-right order as the scalar
    :func:`evaluate_assignment`, so every individual's totals match the
    scalar path bit-for-bit — O(L) numpy gathers instead of O(P*L)
    Python-level dict lookups.
    """
    genomes = np.asarray(genomes)
    if genomes.ndim != 2:
        raise ValueError(f"genomes must be (P, L), got shape {genomes.shape}")
    P, L = genomes.shape
    if L != matrices.num_layers:
        raise ValueError(f"genome length {L} != {matrices.num_layers} layers")
    xbars = np.zeros(P, dtype=np.int64)
    latency_ns = np.zeros(P, dtype=np.float64)
    dynamic_pj = np.zeros(P, dtype=np.float64)
    for li in range(L):
        col = genomes[:, li]
        xbars += matrices.crossbars[li, col]
        latency_ns += matrices.latency_ns[li, col]
        dynamic_pj += matrices.dynamic_pj[li, col]
    latency_ms = latency_ns / 1e6
    static_mj = (lut.p_leak_per_xbar_uw * xbars * latency_ms * 1e-6
                 * lut.energy_scale)
    return PopulationEval(crossbars=xbars, latency_ms=latency_ms,
                          energy_mj=dynamic_pj / 1e9 + static_mj)


def population_rewards(evals: PopulationEval, budget: Optional[int],
                       objective: str) -> np.ndarray:
    """Vectorized Eqs. 6-7: inverse objective, gated to 0 above budget."""
    if objective == "latency":
        value = evals.latency_ms
    elif objective == "energy":
        value = evals.energy_mj
    elif objective == "edp":
        value = evals.edp
    else:
        raise ValueError(f"unknown objective {objective!r}")
    rewards = np.zeros(len(evals), dtype=np.float64)
    np.divide(1.0, value, out=rewards, where=value > 0)
    if budget is not None:
        rewards[evals.crossbars > budget] = 0.0
    return rewards


def uniform_budget(grid: CandidateGrid, rows: int = 1024, cols: int = 256,
                   fraction: float = 0.78,
                   lut: ComponentLUT = DEFAULT_LUT) -> int:
    """Table 1's budget convention: a fraction of the uniform
    ``rows x cols`` design's crossbar demand (layers lacking the candidate
    stay unconverted).  Single source of truth for the CLI, the
    experiment runner and the bench suite."""
    genome = [(rows, cols) if (rows, cols) in grid.candidates[layer.name]
              else None for layer in grid.spec]
    return max(1, int(evaluate_assignment(grid, genome, lut).crossbars
                      * fraction))


def encode_genome(matrices: GridMatrices,
                  genome: Sequence[Candidate]) -> np.ndarray:
    """Candidate tuples -> per-layer option indices (inverse of decode)."""
    if len(genome) != matrices.num_layers:
        raise ValueError(f"genome length {len(genome)} != "
                         f"{matrices.num_layers} layers")
    return np.array([matrices.option_index(li, cand)
                     for li, cand in enumerate(genome)], dtype=np.int64)


def decode_genome(matrices: GridMatrices,
                  indices: np.ndarray) -> List[Candidate]:
    """Per-layer option indices -> candidate tuples."""
    return [matrices.options[li][int(ki)] for li, ki in enumerate(indices)]
