"""Accelerator hierarchy and area accounting (chip -> tile -> PE -> crossbar).

The performance model in :mod:`repro.pim.simulator` works per layer; this
module aggregates an allocated network into the physical hierarchy MNSIM
assumes — processing elements holding a fixed number of crossbar arrays,
tiles holding PEs plus their input/output SRAM buffers — and prices the
silicon area, including the extra IFAT/IFRT/OFAT storage the EPIM datapath
adds (section 4.3; "the remaining PIM accelerator components remain
consistent with existing work").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from .config import HardwareConfig, DEFAULT_CONFIG
from .lut import ComponentLUT, DEFAULT_LUT
from .simulator import NetworkReport

__all__ = ["ChipFloorplan", "build_floorplan", "chips_required"]


@dataclass(frozen=True)
class ChipFloorplan:
    """Physical resource summary of a deployed network."""

    num_crossbars: int
    num_pes: int
    num_tiles: int
    num_adcs: int
    num_epitome_layers: int
    area_breakdown_um2: Dict[str, float]

    @property
    def total_area_mm2(self) -> float:
        return sum(self.area_breakdown_um2.values()) / 1e6

    def summary(self) -> str:
        lines = [
            f"crossbars: {self.num_crossbars}",
            f"PEs:       {self.num_pes}",
            f"tiles:     {self.num_tiles}",
            f"ADCs:      {self.num_adcs}",
            f"epitome layers (index tables): {self.num_epitome_layers}",
            f"total area: {self.total_area_mm2:.3f} mm^2",
        ]
        for key, value in sorted(self.area_breakdown_um2.items()):
            lines.append(f"  {key:<14s} {value / 1e6:.4f} mm^2")
        return "\n".join(lines)


def build_floorplan(report: NetworkReport,
                    config: HardwareConfig = DEFAULT_CONFIG,
                    lut: ComponentLUT = DEFAULT_LUT) -> ChipFloorplan:
    """Aggregate a simulated network into tiles/PEs and price the area."""
    num_xbars = report.num_crossbars
    num_pes = math.ceil(num_xbars / config.xbars_per_pe)
    num_tiles = math.ceil(num_pes / config.pes_per_tile)
    num_adcs = num_xbars * config.adcs_per_xbar
    num_epitome = sum(1 for layer in report.layers
                      if layer.deployment.style == "epitome")

    buffers_kb = num_tiles * (config.input_buffer_kb + config.output_buffer_kb)
    area = {
        "crossbars": num_xbars * lut.a_xbar,
        "adcs": num_adcs * lut.a_adc,
        "dac_drivers": num_xbars * config.xbar_rows * lut.a_dac_per_row,
        "buffers": buffers_kb * lut.a_buffer_per_kb,
        "index_tables": num_epitome * lut.a_index_table,
    }
    return ChipFloorplan(
        num_crossbars=num_xbars,
        num_pes=num_pes,
        num_tiles=num_tiles,
        num_adcs=num_adcs,
        num_epitome_layers=num_epitome,
        area_breakdown_um2=area,
    )


def chips_required(report: NetworkReport,
                   config: HardwareConfig = DEFAULT_CONFIG) -> int:
    """Minimum chips a deployment needs at ``config.tiles_per_chip``.

    Uses the placement tile convention (:func:`repro.pim.noc.layer_tiles`,
    layers never share a tile) — the same accounting the serving shard
    planner enforces, so ``plan_sharding(report, chips_required(report))``
    always yields a fitting plan when one exists.
    """
    from .noc import layer_tiles

    budget = config.tiles_per_chip
    tiles = [layer_tiles(layer.num_crossbars, config)
             for layer in report.layers]
    if not tiles:
        return 1
    if max(tiles) > budget:
        # A single layer busts the budget: unplaceable under the
        # layers-don't-split rule; report the area lower bound.
        return max(1, math.ceil(sum(tiles) / budget))
    # Greedy left-to-right fill is optimal for the minimum number of
    # contiguous parts under a per-part capacity.
    chips = 1
    used = 0
    for t in tiles:
        if used + t > budget:
            chips += 1
            used = t
        else:
            used += t
    return chips
