"""Functional crossbar array: bit-sliced, bit-serial integer MVM.

This is the *numerically faithful* half of the simulator (the performance
half is :mod:`repro.pim.simulator`).  A :class:`CrossbarArray` is programmed
with an integer weight matrix, stores it as 2-bit (configurable) cell
slices, and evaluates matrix-vector products the way the analogue fabric
does:

1. inputs are decomposed into ``dac_bits`` chunks and streamed cycle by
   cycle (bit-serial),
2. each cycle every cell slice contributes ``input_chunk * cell_value`` in
   the analogue domain,
3. per-slice column sums are digitised (optionally through a saturating
   ADC) and recombined by shift-and-add over both cell slices and input
   cycles,
4. signed weights are handled with the standard sign-column trick: the
   unsigned two's-complement body is programmed into the slices and the
   weight sign indicator is stored in one extra column whose digitised sum
   corrects the result (exactly — see :meth:`matmul`).

With ``adc_bits=None`` (ideal ADC) and ``noise_std=0`` the result is exactly
equal to the integer matrix product, which is what the datapath equivalence
tests assert.  Device conductance variation can be injected per read to
study robustness (an EPIM ablation in ``benchmarks/bench_noise.py``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .config import HardwareConfig

__all__ = ["CrossbarArray"]


class CrossbarArray:
    """A (multi-array) crossbar storing one integer weight matrix.

    Parameters
    ----------
    config:
        Hardware description (cell bits, DAC bits, ADC model).
    ideal_adc:
        When True the ADC is a perfect digitiser (no clipping) — required
        for the exact-equivalence tests.  When False, per-slice column sums
        saturate at ``2**adc_bits - 1`` after right-shifting, emulating
        limited ADC headroom.
    noise_std:
        Relative Gaussian conductance noise applied to cell values at each
        read (0 disables noise).
    ir_drop_beta:
        First-order IR-drop / sense saturation coefficient.  Wire
        resistance makes large column currents read low; modelled as
        ``measured = ideal * (1 - beta * ideal / full_scale)`` where
        ``full_scale`` is the maximum possible column sum.  0 disables it.
        Because degradation grows with the column current, *partially
        enabled* word lines (the IFRT-gated epitome rounds) are relatively
        less affected than fully-driven arrays — a structural robustness
        property measured in ``benchmarks/bench_ir_drop.py``.
    rng:
        Generator used for noise draws.
    """

    def __init__(self, config: HardwareConfig, ideal_adc: bool = True,
                 noise_std: float = 0.0,
                 ir_drop_beta: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        self.config = config
        self.ideal_adc = ideal_adc
        self.noise_std = noise_std
        self.ir_drop_beta = ir_drop_beta
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._slices: Optional[np.ndarray] = None   # (n_slices, rows, cols)
        self._sign_column: Optional[np.ndarray] = None  # (rows, cols) 0/1
        self.weight_bits: int = 0
        self.rows: int = 0
        self.cols: int = 0

    # ------------------------------------------------------------------
    def program(self, weights: np.ndarray, weight_bits: int) -> None:
        """Program an integer matrix ``(rows, cols)`` of signed weights.

        Weights must fit in ``weight_bits`` signed two's complement, i.e.
        ``-2**(b-1) <= w <= 2**(b-1) - 1``.
        """
        weights = np.asarray(weights)
        if weights.ndim != 2:
            raise ValueError("crossbar weights must be a 2-D matrix")
        if not np.issubdtype(weights.dtype, np.integer):
            raise TypeError("crossbar weights must be integers (quantize first)")
        lo, hi = -(1 << (weight_bits - 1)), (1 << (weight_bits - 1)) - 1
        if weights.min() < lo or weights.max() > hi:
            raise ValueError(
                f"weights out of range for {weight_bits}-bit signed storage "
                f"[{lo}, {hi}]: found [{weights.min()}, {weights.max()}]")

        self.rows, self.cols = weights.shape
        self.weight_bits = weight_bits
        # Two's-complement unsigned body + sign indicator column set.
        unsigned = np.where(weights < 0, weights + (1 << weight_bits), weights)
        unsigned = unsigned.astype(np.int64)
        self._sign_column = (weights < 0).astype(np.int64)

        n_slices = math.ceil(weight_bits / self.config.cell_bits)
        cell_mask = (1 << self.config.cell_bits) - 1
        slices = np.empty((n_slices, self.rows, self.cols), dtype=np.int64)
        for s in range(n_slices):
            slices[s] = (unsigned >> (s * self.config.cell_bits)) & cell_mask
        self._slices = slices

    @property
    def n_slices(self) -> int:
        if self._slices is None:
            raise RuntimeError("crossbar not programmed")
        return self._slices.shape[0]

    # ------------------------------------------------------------------
    def matmul(self, inputs: np.ndarray, activation_bits: int,
               row_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Compute ``inputs @ W`` through the bit-serial analogue pipeline.

        Parameters
        ----------
        inputs:
            Integer array ``(batch, rows)`` of **non-negative** activations
            (quantized, e.g. post-ReLU); must fit in ``activation_bits``.
        activation_bits:
            Bit width of the inputs (sets the number of DAC cycles).
        row_mask:
            Optional boolean word-line enable of length ``rows`` — this is
            the IFRT in hardware: disabled rows drive zero volts so their
            weights do not contribute.

        Returns
        -------
        np.ndarray
            ``(batch, cols)`` signed integer results.
        """
        if self._slices is None:
            raise RuntimeError("crossbar not programmed")
        inputs = np.asarray(inputs)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        if inputs.shape[1] != self.rows:
            raise ValueError(
                f"input width {inputs.shape[1]} != crossbar rows {self.rows}")
        if not np.issubdtype(inputs.dtype, np.integer):
            raise TypeError("crossbar inputs must be integers")
        if inputs.min() < 0:
            raise ValueError("crossbar inputs must be non-negative "
                             "(shift/offset signed activations in software)")
        if inputs.max() >= (1 << activation_bits):
            raise ValueError(f"inputs exceed {activation_bits}-bit range")

        x = inputs.astype(np.int64)
        if row_mask is not None:
            row_mask = np.asarray(row_mask, dtype=bool)
            x = x * row_mask[None, :]

        n_cycles = self.config.cycles_for(activation_bits)
        dac_mask = (1 << self.config.dac_bits) - 1

        body = np.zeros((x.shape[0], self.cols), dtype=np.int64)
        sign_sum = np.zeros((x.shape[0], self.cols), dtype=np.int64)
        for cycle in range(n_cycles):
            chunk = (x >> (cycle * self.config.dac_bits)) & dac_mask
            if not chunk.any():
                continue
            for s in range(self.n_slices):
                col_sums = self._analog_read(chunk, self._slices[s])
                col_sums = self._digitise(col_sums)
                body += col_sums << (s * self.config.cell_bits
                                     + cycle * self.config.dac_bits)
            sign_sums = self._analog_read(chunk, self._sign_column)
            sign_sums = self._digitise(sign_sums)
            sign_sum += sign_sums << (cycle * self.config.dac_bits)

        # Two's-complement correction: w = u - 2^b * sign(w).
        return body - (sign_sum << self.weight_bits)

    # ------------------------------------------------------------------
    def _analog_read(self, chunk: np.ndarray, cells: np.ndarray) -> np.ndarray:
        """One analogue column-sum read with optional conductance noise.

        Independent relative noise of std ``noise_std`` on every cell's
        conductance propagates to a column sum as a Gaussian with variance
        ``noise_std^2 * sum((x_i * g_i)^2)`` — computed exactly here, then
        rounded by the ADC.
        """
        col_sums = chunk @ cells
        analog = col_sums.astype(np.float64)
        if self.ir_drop_beta > 0.0:
            cell_max = (1 << self.config.cell_bits) - 1
            dac_max = (1 << self.config.dac_bits) - 1
            full_scale = max(self.rows * cell_max * dac_max, 1)
            analog = analog * (1.0 - self.ir_drop_beta * analog / full_scale)
        if self.noise_std > 0.0:
            variance = ((chunk.astype(np.float64) ** 2)
                        @ (cells.astype(np.float64) ** 2))
            sigma = self.noise_std * np.sqrt(variance)
            analog = analog + self._rng.normal(0.0, 1.0,
                                               size=analog.shape) * sigma
        if self.ir_drop_beta <= 0.0 and self.noise_std <= 0.0:
            return col_sums
        return np.rint(analog).astype(np.int64)

    def _digitise(self, col_sums: np.ndarray) -> np.ndarray:
        if self.ideal_adc:
            return col_sums
        limit = (1 << self.config.adc_bits) - 1
        return np.clip(col_sums, 0, limit)
