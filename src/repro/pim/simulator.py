"""Behaviour-level performance model (latency / energy / area / utilization).

This is the MNSIM-2.0-style half of the simulator: behaviour counts (output
positions, crossbar activation rounds, ADC conversions, buffer accesses)
multiplied by the per-component costs of :mod:`repro.pim.lut`.

Each layer is described by a :class:`LayerDeployment` — either a baseline
convolution (the whole virtual weight stored; one activation round per
output position, row/column crossbar groups operating in parallel) or an
epitome (only the epitome stored; ``n_ci * n_co`` sequential activation
rounds per position, or ``n_ci`` with output channel wrapping).

The key structural behaviours the model encodes (paper sections 5.1-5.3):

- epitome **latency** grows proportionally with the number of activation
  rounds, i.e. roughly with the layer compression rate (Fig. 4a);
- epitome **energy** grows because every round re-digitises partial sums
  (ADC) and writes them to the output buffer (Fig. 4b and the "output
  buffer written four times more" discussion);
- **channel wrapping** removes the output-channel replication factor from
  both (section 5.3), cutting buffer writes by ``r``;
- crossbar count shrinks by the stored-tensor ratio — the paper's
  compression rate of crossbars (Table 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..models.specs import LayerSpec
from .config import HardwareConfig, DEFAULT_CONFIG
from .lut import ComponentLUT, DEFAULT_LUT
from .mapping import CrossbarAllocation, map_matrix

__all__ = [
    "LayerDeployment",
    "LayerReport",
    "BatchReport",
    "NetworkReport",
    "SimCounters",
    "simulate_layer",
    "simulate_network",
    "baseline_deployment",
    "epitome_deployment_from_plan",
    "epitome_deployment_from_shape",
    "sim_counters",
    "reset_sim_counters",
]


@dataclass
class SimCounters:
    """Lightweight work counters accumulated by :func:`simulate_layer`.

    The benchmark harness reads these so perf numbers report *work done*
    (layers simulated, activation rounds walked, analog cell activations
    modelled, crossbar tiles allocated), not just seconds.  Counting is a
    handful of integer adds per layer — negligible next to the per-layer
    arithmetic — and monotone until :func:`reset_sim_counters`.
    """

    layers: int = 0
    positions: int = 0
    activation_rounds: int = 0
    analog_mac_ops: int = 0
    crossbar_tiles: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "layers": self.layers,
            "positions": self.positions,
            "activation_rounds": self.activation_rounds,
            "analog_mac_ops": self.analog_mac_ops,
            "crossbar_tiles": self.crossbar_tiles,
        }

    def reset(self) -> None:
        self.layers = 0
        self.positions = 0
        self.activation_rounds = 0
        self.analog_mac_ops = 0
        self.crossbar_tiles = 0

    def merge(self, delta: Dict[str, int]) -> None:
        """Fold another process's counter delta into this one.

        Worker processes (grid-build sharding, parallel restarts) measure
        their own before/after deltas and ship them back so the parent's
        counters keep reporting the *total* simulation work — bench
        ``work`` fields would otherwise silently under-report whenever
        ``workers > 1``.
        """
        self.layers += int(delta.get("layers", 0))
        self.positions += int(delta.get("positions", 0))
        self.activation_rounds += int(delta.get("activation_rounds", 0))
        self.analog_mac_ops += int(delta.get("analog_mac_ops", 0))
        self.crossbar_tiles += int(delta.get("crossbar_tiles", 0))

    def publish(self, registry=None) -> None:
        """Mirror the counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` as
        ``pim.simulator.*`` gauges (default: the installed registry).

        Gauges, not counters: these values are process-global and
        monotone only between resets, so last-write-wins snapshots are
        the honest exposition.  CLIs call this once before exporting.
        """
        if registry is None:
            from ..obs.runtime import get_metrics
            registry = get_metrics()
        for name, value in self.as_dict().items():
            registry.gauge(f"pim.simulator.{name}",
                           help=f"simulator work counter: {name}"
                           ).set(value)


_COUNTERS = SimCounters()


def sim_counters() -> SimCounters:
    """The process-global simulator work counters (read-mostly)."""
    return _COUNTERS


def reset_sim_counters() -> SimCounters:
    """Zero the counters and return them (fluent for delta measurement)."""
    _COUNTERS.reset()
    return _COUNTERS


@dataclass(frozen=True)
class LayerDeployment:
    """How one layer is placed on the PIM fabric.

    For ``style == "conv"`` the aggregate execution statistics are derived
    automatically; for ``style == "epitome"`` they are pre-computed from the
    layer's :class:`~repro.core.epitome.EpitomePlan` by
    :func:`epitome_deployment_from_plan` (exact sums over sampled patches,
    including partial edge blocks).

    Attributes
    ----------
    spec:
        The layer's shape record.
    style:
        ``"conv"`` (baseline) or ``"epitome"``.
    weight_bits / activation_bits:
        Deployment precision (``config.fp_equivalent_bits`` is substituted
        for FP32 when ``weight_bits`` is ``None``).
    stored_rows / stored_cols:
        Dimensions of the tensor actually programmed into crossbars.
    exec_rounds:
        Crossbar activation rounds per output position.
    exec_rows / exec_cols / exec_cells:
        Per-position sums over executed rounds of: active word lines,
        produced logical columns (partial sums), active cells
        (rows x logical cols).
    n_co_blocks / n_ci_blocks:
        Epitome tiling factors (1 for baseline).
    use_wrapping:
        Output channel wrapping enabled (epitome only).
    """

    spec: LayerSpec
    style: str
    weight_bits: Optional[int]
    activation_bits: int
    stored_rows: int
    stored_cols: int
    exec_rounds: int
    exec_rows: int
    exec_cols: int
    exec_cells: int
    n_co_blocks: int = 1
    n_ci_blocks: int = 1
    use_wrapping: bool = False

    def resolved_weight_bits(self, config: HardwareConfig) -> int:
        return self.weight_bits if self.weight_bits is not None \
            else config.fp_equivalent_bits


def baseline_deployment(spec: LayerSpec, weight_bits: Optional[int] = None,
                        activation_bits: Optional[int] = None,
                        config: HardwareConfig = DEFAULT_CONFIG
                        ) -> LayerDeployment:
    """Deploy a layer as a plain convolution (or fc matrix)."""
    a_bits = activation_bits if activation_bits is not None \
        else (config.fp_equivalent_bits if weight_bits is None
              else config.default_activation_bits)
    rows = spec.weight_rows
    cols = spec.weight_cols
    return LayerDeployment(
        spec=spec, style="conv", weight_bits=weight_bits,
        activation_bits=a_bits,
        stored_rows=rows, stored_cols=cols,
        exec_rounds=1, exec_rows=rows, exec_cols=cols,
        exec_cells=rows * cols,
    )


def epitome_deployment_from_shape(spec: LayerSpec,
                                  shape: Sequence[int],
                                  weight_bits: Optional[int] = None,
                                  activation_bits: Optional[int] = None,
                                  use_wrapping: bool = False,
                                  config: HardwareConfig = DEFAULT_CONFIG
                                  ) -> LayerDeployment:
    """Closed-form twin of :func:`epitome_deployment_from_plan`.

    The deployment only needs the *sums* of the plan's patch sizes, and
    those have exact closed forms: the channel blocks tile the layer
    exactly, so ``sum(ci_size) == ci`` and ``sum(co_size) == co``
    regardless of partial edge blocks, and sampling offsets never enter.
    Grid construction uses this to skip building the patch schedule
    entirely (~2x of the deduped build); results are bit-for-bit
    identical to the plan-based path, which
    ``tests/search/test_gridcache.py`` pins against the serial reference.

    ``shape`` is the resolved epitome as ``(eo, ei, eh, ew)`` — e.g.
    ``EpitomeShape.as_tuple()`` from the designer.
    """
    a_bits = activation_bits if activation_bits is not None \
        else (config.fp_equivalent_bits if weight_bits is None
              else config.default_activation_bits)
    eo, ei, eh, ew = (int(x) for x in shape)
    co, ci = spec.out_channels, spec.in_channels
    kh, kw = spec.kernel_size
    n_co = math.ceil(co / eo)
    n_ci = math.ceil(ci / ei)
    if use_wrapping:
        # Only the co_block == 0 patches execute (one per ci block).
        co_tile = min(eo, co)
        exec_rounds = n_ci
        exec_rows = ci * kh * kw
        exec_cols = n_ci * co_tile
        exec_cells = ci * kh * kw * co_tile
    else:
        exec_rounds = n_ci * n_co
        exec_rows = n_co * ci * kh * kw
        exec_cols = n_ci * co
        exec_cells = ci * kh * kw * co
    return LayerDeployment(
        spec=spec, style="epitome", weight_bits=weight_bits,
        activation_bits=a_bits,
        stored_rows=ei * eh * ew,
        stored_cols=eo,
        exec_rounds=exec_rounds, exec_rows=exec_rows,
        exec_cols=exec_cols, exec_cells=exec_cells,
        n_co_blocks=n_co, n_ci_blocks=n_ci,
        use_wrapping=use_wrapping,
    )


def epitome_deployment_from_plan(spec: LayerSpec, plan,
                                 weight_bits: Optional[int] = None,
                                 activation_bits: Optional[int] = None,
                                 use_wrapping: bool = False,
                                 config: HardwareConfig = DEFAULT_CONFIG
                                 ) -> LayerDeployment:
    """Deploy a layer as an epitome described by an ``EpitomePlan``."""
    a_bits = activation_bits if activation_bits is not None \
        else (config.fp_equivalent_bits if weight_bits is None
              else config.default_activation_bits)
    kh, kw = plan.kernel_size
    patches = plan.patches
    if use_wrapping:
        patches = [p for p in patches if p.co_block == 0]
    exec_rounds = len(patches)
    exec_rows = sum(p.ci_size * kh * kw for p in patches)
    exec_cols = sum(p.co_size for p in patches)
    exec_cells = sum(p.ci_size * kh * kw * p.co_size for p in patches)
    return LayerDeployment(
        spec=spec, style="epitome", weight_bits=weight_bits,
        activation_bits=a_bits,
        stored_rows=plan.epitome_shape.rows,
        stored_cols=plan.epitome_shape.cols,
        exec_rounds=exec_rounds, exec_rows=exec_rows,
        exec_cols=exec_cols, exec_cells=exec_cells,
        n_co_blocks=plan.n_co_blocks, n_ci_blocks=plan.n_ci_blocks,
        use_wrapping=use_wrapping,
    )


@dataclass
class LayerReport:
    """Per-layer hardware results."""

    deployment: LayerDeployment
    allocation: CrossbarAllocation
    latency_ns: float
    energy_pj: float
    energy_breakdown: Dict[str, float]
    positions: int
    rounds_per_position: int

    @property
    def name(self) -> str:
        return self.deployment.spec.name

    @property
    def num_crossbars(self) -> int:
        return self.allocation.num_crossbars

    @property
    def stored_params(self) -> int:
        return self.deployment.stored_rows * self.deployment.stored_cols


@dataclass(frozen=True)
class BatchReport:
    """Timing/energy of one micro-batch streamed through a layer pipeline.

    Weight-stationary PIM serves a batch by streaming images through the
    already-programmed crossbars: the first image pays the full pipeline
    fill latency, every further image enters one bottleneck-stage interval
    later.  The interval is batch-size-dependent through the per-image
    datapath cost (buffer swap at each stage handoff plus the index-table
    reload on epitome stages) — the peripheral/runtime overhead the
    Neural-PIM line of work flags as dominant once crossbar compute is
    optimized.
    """

    batch_size: int
    latency_ms: float           # first image in -> last image out
    image_interval_ms: float    # steady-state spacing between images
    energy_mj: float            # dynamic x batch + leakage over latency

    @property
    def throughput_fps(self) -> float:
        """Achieved images/second for this batch in isolation."""
        return self.batch_size / self.latency_ms * 1000.0 \
            if self.latency_ms > 0 else float("inf")

    @property
    def amortized_latency_ms(self) -> float:
        return self.latency_ms / self.batch_size

    @property
    def energy_per_image_mj(self) -> float:
        return self.energy_mj / self.batch_size


@dataclass
class NetworkReport:
    """Whole-network hardware results (one Table 1 row).

    Dynamic energy is the sum of per-layer component energies; static
    energy is the idle-periphery leakage of every allocated crossbar over
    the whole inference (``p_leak_per_xbar_uw x num_crossbars x latency``),
    which is what lets a small-footprint epitome deployment beat the
    baseline on energy despite running longer.
    """

    layers: List[LayerReport]
    lut: ComponentLUT = field(default_factory=lambda: DEFAULT_LUT)

    @property
    def num_crossbars(self) -> int:
        return sum(layer.num_crossbars for layer in self.layers)

    @property
    def latency_ms(self) -> float:
        return sum(layer.latency_ns for layer in self.layers) / 1e6

    @property
    def dynamic_energy_mj(self) -> float:
        return sum(layer.energy_pj for layer in self.layers) / 1e9

    @property
    def static_energy_mj(self) -> float:
        # uW * ms = nJ; convert to mJ.
        leak_uw = self.lut.p_leak_per_xbar_uw * self.num_crossbars
        return leak_uw * self.latency_ms * 1e-6 * self.lut.energy_scale

    @property
    def energy_mj(self) -> float:
        return self.dynamic_energy_mj + self.static_energy_mj

    @property
    def edp(self) -> float:
        """Energy-delay product in mJ*ms (Fig. 4c's metric)."""
        return self.latency_ms * self.energy_mj

    @property
    def bottleneck_latency_ms(self) -> float:
        """Slowest layer's latency — the stage time of a layer-pipelined
        dataflow (every layer on its own crossbar groups, images streamed).

        An empty report has no pipeline stage, so its bottleneck is 0 —
        consistent with the sibling sums rather than a bare ``max()``
        ValueError."""
        if not self.layers:
            return 0.0
        return max(layer.latency_ns for layer in self.layers) / 1e6

    @property
    def pipelined_throughput_fps(self) -> float:
        """Steady-state images/second when layers are pipelined.

        Epitome layers multiply their own activation rounds, so they deepen
        the pipeline bottleneck disproportionately — the pipelined view of
        the section 5.1 latency analysis.  An empty network computes
        nothing and therefore serves nothing: 0 fps, matching the 0-valued
        sibling properties.
        """
        bottleneck = self.bottleneck_latency_ms
        return 1000.0 / bottleneck if bottleneck > 0 else 0.0

    @property
    def datapath_overhead_ms(self) -> float:
        """Per-image pipeline handoff cost: every stage swaps its input and
        output buffer banks between consecutive images, and epitome stages
        re-arm their IFAT/IFRT/OFAT walk.  Tiny per stage, but it scales
        with batch size and network depth — the batch-dependent half of the
        serving latency model."""
        ns = sum(2.0 * self.lut.t_buffer_access
                 + (self.lut.t_index_table
                    if layer.deployment.style == "epitome" else 0.0)
                 for layer in self.layers)
        return ns * self.lut.latency_scale / 1e6

    @property
    def image_interval_ms(self) -> float:
        """Steady-state spacing between pipelined images (bottleneck stage
        time plus the per-image datapath overhead)."""
        return self.bottleneck_latency_ms + self.datapath_overhead_ms

    def batch_latency_ms(self, batch_size: int) -> float:
        """First-in to last-out latency of a ``batch_size`` micro-batch.

        Classic pipeline fill + drain: the first image traverses every
        stage (``latency_ms``); each further image exits one
        :attr:`image_interval_ms` later.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.latency_ms + (batch_size - 1) * self.image_interval_ms

    def batch_report(self, batch_size: int) -> BatchReport:
        """Full timing/energy summary for one micro-batch."""
        latency = self.batch_latency_ms(batch_size)
        leak_uw = self.lut.p_leak_per_xbar_uw * self.num_crossbars
        static = leak_uw * latency * 1e-6 * self.lut.energy_scale
        return BatchReport(
            batch_size=batch_size,
            latency_ms=latency,
            image_interval_ms=self.image_interval_ms,
            energy_mj=batch_size * self.dynamic_energy_mj + static,
        )

    @property
    def utilization(self) -> float:
        used = sum(layer.allocation.used_cells for layer in self.layers)
        allocated = sum(layer.allocation.allocated_cells for layer in self.layers)
        return used / allocated if allocated else 0.0

    @property
    def stored_params(self) -> int:
        return sum(layer.stored_params for layer in self.layers)

    def energy_breakdown(self) -> Dict[str, float]:
        total: Dict[str, float] = {}
        for layer in self.layers:
            for key, value in layer.energy_breakdown.items():
                total[key] = total.get(key, 0.0) + value
        total["static_leakage"] = self.static_energy_mj * 1e9
        return total

    def compression_vs(self, baseline: "NetworkReport") -> float:
        """Crossbar compression rate relative to a baseline deployment."""
        return baseline.num_crossbars / self.num_crossbars

    def layer_by_name(self, name: str) -> LayerReport:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")


def simulate_layer(deployment: LayerDeployment,
                   config: HardwareConfig = DEFAULT_CONFIG,
                   lut: ComponentLUT = DEFAULT_LUT) -> LayerReport:
    """Estimate latency/energy/allocation for one deployed layer."""
    spec = deployment.spec
    w_bits = deployment.resolved_weight_bits(config)
    slices = config.slices_for(w_bits)
    cycles = config.cycles_for(deployment.activation_bits)
    positions = spec.output_positions

    allocation = map_matrix(deployment.stored_rows, deployment.stored_cols,
                            w_bits, config)

    # ---- latency ------------------------------------------------------
    # One activation round: bit-serial cycles, each paying DAC drive, the
    # analogue read, the shared-ADC conversion sweep, and the shift-add
    # merge of the weight slices (more slices -> wider merge -> the
    # latency advantage of low-bit deployments in Table 1).
    adc_sweep = config.adc_share * lut.t_adc
    slice_merge = slices * lut.t_slice_merge
    round_latency = cycles * (lut.t_dac + lut.t_xbar + adc_sweep
                              + slice_merge)
    extras = 0.0
    if deployment.style == "epitome":
        extras = lut.t_index_table + lut.t_joint
    latency = positions * deployment.exec_rounds * (round_latency + extras)
    # Row groups beyond one need a partial-sum merge step per position.
    if allocation.row_groups > 1:
        latency += positions * math.ceil(math.log2(allocation.row_groups)) \
            * lut.t_shift_add * deployment.exec_rounds
    latency *= lut.latency_scale

    # ---- energy ---------------------------------------------------------
    breakdown = {
        "xbar": positions * cycles * deployment.exec_cells * slices * lut.e_cell,
        "dac": positions * cycles * deployment.exec_rows * lut.e_dac,
        "adc": positions * cycles * deployment.exec_cols * slices * lut.e_adc,
        "shift_add": positions * cycles * deployment.exec_cols * slices
                     * lut.e_shift_add,
        "buffer_in": positions * deployment.exec_rows * lut.e_buffer_read,
        "buffer_out": positions * deployment.exec_cols * lut.e_buffer_write,
    }
    if deployment.style == "epitome":
        breakdown["joint"] = positions * deployment.exec_cols * lut.e_joint
        breakdown["index_tables"] = (positions * deployment.exec_rounds * 3
                                     * lut.e_index_table)
    breakdown = {key: value * lut.energy_scale
                 for key, value in breakdown.items()}
    energy = sum(breakdown.values())

    _COUNTERS.layers += 1
    _COUNTERS.positions += positions
    _COUNTERS.activation_rounds += positions * deployment.exec_rounds
    _COUNTERS.analog_mac_ops += positions * deployment.exec_cells
    _COUNTERS.crossbar_tiles += allocation.num_crossbars

    return LayerReport(
        deployment=deployment,
        allocation=allocation,
        latency_ns=latency,
        energy_pj=energy,
        energy_breakdown=breakdown,
        positions=positions,
        rounds_per_position=deployment.exec_rounds,
    )


def simulate_network(deployments: Sequence[LayerDeployment],
                     config: HardwareConfig = DEFAULT_CONFIG,
                     lut: ComponentLUT = DEFAULT_LUT) -> NetworkReport:
    """Simulate every layer and aggregate into a :class:`NetworkReport`."""
    return NetworkReport(layers=[simulate_layer(dep, config, lut)
                                 for dep in deployments],
                         lut=lut)
