"""Hardware configuration of the modelled PIM accelerator.

Mirrors the experimental setup of the paper (section 6.1): memristor
crossbars with well-explored **2-bit cells**, 256x256 arrays, bit-serial
1-bit DACs and shared 8-bit SAR ADCs — the MNSIM 2.0 / ISAAC-class design
point.  Weights of ``w`` bits are bit-sliced across ``ceil(w / cell_bits)``
adjacent bit-line columns; activations of ``a`` bits are streamed over
``ceil(a / dac_bits)`` input cycles and recombined by shift-and-add.

"FP32" deployments are mapped as 32-bit fixed point (16 cell slices), the
convention MNSIM uses for unquantized models; quantized models use their
actual bit widths (the paper's W9/W7/W5/W3 rows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["HardwareConfig", "DEFAULT_CONFIG", "weight_slices", "input_cycles"]


@dataclass(frozen=True)
class HardwareConfig:
    """Static description of the PIM fabric.

    Attributes
    ----------
    xbar_rows / xbar_cols:
        Crossbar array dimensions (word lines x bit lines).
    cell_bits:
        Bits stored per memristor cell (2 in the paper).
    dac_bits:
        Input DAC resolution; activations are bit-serial over
        ``ceil(a_bits / dac_bits)`` cycles.
    adc_bits:
        Output ADC resolution.
    adc_share:
        Bit-line columns multiplexed onto one ADC; a read round therefore
        needs ``adc_share`` sequential conversions per ADC.
    fp_equivalent_bits:
        Fixed-point width used to map un-quantized (FP32) weights.
    input_buffer_kb / output_buffer_kb:
        Per-tile SRAM buffer sizes (accounting only).
    xbars_per_pe / pes_per_tile:
        Hierarchy used for area/allocation accounting.
    tiles_per_chip:
        Tile budget of one physical chip; deployments needing more tiles
        must be sharded layer-wise across chips (see
        :mod:`repro.serve.sharding`).
    """

    xbar_rows: int = 256
    xbar_cols: int = 256
    cell_bits: int = 2
    dac_bits: int = 1
    adc_bits: int = 8
    adc_share: int = 8
    fp_equivalent_bits: int = 32
    default_activation_bits: int = 9
    input_buffer_kb: int = 64
    output_buffer_kb: int = 64
    xbars_per_pe: int = 8
    pes_per_tile: int = 4
    tiles_per_chip: int = 32

    def __post_init__(self):
        if self.xbar_rows < 1 or self.xbar_cols < 1:
            raise ValueError("crossbar dimensions must be positive")
        if self.cell_bits < 1:
            raise ValueError("cell_bits must be >= 1")
        if self.dac_bits < 1:
            raise ValueError("dac_bits must be >= 1")
        if self.xbar_cols % self.adc_share != 0:
            raise ValueError("adc_share must divide xbar_cols")
        if self.tiles_per_chip < 1:
            raise ValueError("tiles_per_chip must be >= 1")

    @property
    def cells_per_xbar(self) -> int:
        return self.xbar_rows * self.xbar_cols

    @property
    def adcs_per_xbar(self) -> int:
        return self.xbar_cols // self.adc_share

    def slices_for(self, weight_bits: int) -> int:
        """Bit-line columns needed per logical weight column."""
        return weight_slices(weight_bits, self.cell_bits)

    def cycles_for(self, activation_bits: int) -> int:
        """Bit-serial input cycles per activation round."""
        return input_cycles(activation_bits, self.dac_bits)

    def with_(self, **kwargs) -> "HardwareConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def weight_slices(weight_bits: int, cell_bits: int) -> int:
    """Number of cell columns a ``weight_bits``-bit weight occupies."""
    if weight_bits < 1:
        raise ValueError("weight_bits must be >= 1")
    return math.ceil(weight_bits / cell_bits)


def input_cycles(activation_bits: int, dac_bits: int) -> int:
    """Number of bit-serial cycles an ``activation_bits``-bit input needs."""
    if activation_bits < 1:
        raise ValueError("activation_bits must be >= 1")
    return math.ceil(activation_bits / dac_bits)


DEFAULT_CONFIG = HardwareConfig()
