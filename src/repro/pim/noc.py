"""Network-on-chip model: tile placement and inter-layer traffic.

MNSIM-class simulators price not only the crossbar arithmetic but the
movement of feature maps between the tiles holding consecutive layers.
This module adds that missing dimension:

1. **Placement** — each layer's crossbars are packed onto PEs/tiles in
   layer order (the standard MNSIM floorplan); tiles sit on a square mesh.
2. **Traffic** — layer ``i``'s output feature map travels from its tile
   centroid to layer ``i+1``'s, paying Manhattan-distance hops per value.
3. **Cost** — per-hop energy and link-bandwidth latency from the component
   LUT.

A structural consequence worth measuring (see ``benchmarks/bench_noc.py``):
epitome deployments occupy far fewer tiles, so their mesh is smaller and
mean hop distances shrink — communication energy falls with the crossbar
compression even though the feature-map volume is unchanged.

Behaviour-level simplifications (documented contract): traffic follows the
sequential layer order (residual shortcuts ride along the main path), and
links are modelled by bandwidth, not contention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from .config import DEFAULT_CONFIG, HardwareConfig
from .lut import DEFAULT_LUT, ComponentLUT
from .simulator import NetworkReport

__all__ = ["TilePlacement", "NocReport", "layer_tiles", "place_tiles",
           "analyze_noc"]


def layer_tiles(num_crossbars: int,
                config: HardwareConfig = DEFAULT_CONFIG) -> int:
    """Tiles one layer occupies: layers never share a tile (the MNSIM
    placement convention), so even a single-crossbar layer takes one.

    This is the capacity convention shared by :func:`place_tiles`, the
    serving shard planner and :func:`repro.pim.accelerator.chips_required`.
    """
    per_tile = config.xbars_per_pe * config.pes_per_tile
    return max(1, math.ceil(num_crossbars / per_tile))


@dataclass(frozen=True)
class TilePlacement:
    """Where one layer's crossbars live on the tile mesh."""

    layer_name: str
    first_tile: int
    num_tiles: int
    centroid: Tuple[float, float]


@dataclass
class NocReport:
    """Inter-tile communication summary for one deployed network."""

    mesh_side: int
    total_tiles: int
    placements: List[TilePlacement]
    # per layer-transition: (src, dst, values, hops)
    transitions: List[Tuple[str, str, int, float]]
    energy_pj: float
    latency_ns: float

    @property
    def energy_mj(self) -> float:
        return self.energy_pj / 1e9

    @property
    def latency_ms(self) -> float:
        return self.latency_ns / 1e6

    @property
    def total_values(self) -> int:
        return sum(values for _, _, values, _ in self.transitions)

    @property
    def mean_hops(self) -> float:
        total = self.total_values
        if total == 0:
            return 0.0
        weighted = sum(values * hops
                       for _, _, values, hops in self.transitions)
        return weighted / total

    def summary(self) -> str:
        lines = [f"NoC: {self.total_tiles} tiles on a "
                 f"{self.mesh_side}x{self.mesh_side} mesh, "
                 f"{self.total_values / 1e6:.2f} M values moved, "
                 f"mean {self.mean_hops:.2f} hops",
                 f"energy {self.energy_mj:.3f} mJ, "
                 f"latency {self.latency_ms:.3f} ms"]
        return "\n".join(lines)


def _tile_coords(index: int, side: int) -> Tuple[int, int]:
    """Serpentine (boustrophedon) mesh coordinates.

    Consecutive tile indices are always physically adjacent — rows are
    traversed alternately left-to-right and right-to-left — so a layer
    placed after another sits next to it regardless of row boundaries.
    """
    row = index // side
    col = index % side
    if row % 2 == 1:
        col = side - 1 - col
    return col, row


def place_tiles(report: NetworkReport,
                config: HardwareConfig = DEFAULT_CONFIG
                ) -> Tuple[List[TilePlacement], int, int]:
    """Pack every layer's crossbars onto tiles in layer order.

    Returns ``(placements, total_tiles, mesh_side)``.  A tile holds
    ``xbars_per_pe * pes_per_tile`` crossbars; layers never share a tile
    (the MNSIM convention, consistent with the one-layer-per-crossbar
    mapping rule).
    """
    placements: List[TilePlacement] = []
    cursor = 0
    for layer in report.layers:
        tiles = layer_tiles(layer.num_crossbars, config)
        placements.append(TilePlacement(
            layer_name=layer.name, first_tile=cursor, num_tiles=tiles,
            centroid=(0.0, 0.0)))   # placeholder, fixed below
        cursor += tiles
    total_tiles = cursor
    side = max(1, math.ceil(math.sqrt(total_tiles)))

    placed: List[TilePlacement] = []
    for placement in placements:
        xs, ys = [], []
        for t in range(placement.first_tile,
                       placement.first_tile + placement.num_tiles):
            x, y = _tile_coords(t, side)
            xs.append(x)
            ys.append(y)
        centroid = (sum(xs) / len(xs), sum(ys) / len(ys))
        placed.append(TilePlacement(
            layer_name=placement.layer_name,
            first_tile=placement.first_tile,
            num_tiles=placement.num_tiles,
            centroid=centroid))
    return placed, total_tiles, side


def analyze_noc(report: NetworkReport,
                config: HardwareConfig = DEFAULT_CONFIG,
                lut: ComponentLUT = DEFAULT_LUT) -> NocReport:
    """Compute inter-layer NoC traffic, energy and latency for a network."""
    placements, total_tiles, side = place_tiles(report, config)

    transitions: List[Tuple[str, str, int, float]] = []
    energy = 0.0
    latency = 0.0
    for src, dst in zip(placements, placements[1:]):
        src_layer = next(l for l in report.layers if l.name == src.layer_name)
        # values produced by src = positions x logical output channels
        values = src_layer.positions * src_layer.deployment.spec.out_channels
        hops = (abs(src.centroid[0] - dst.centroid[0])
                + abs(src.centroid[1] - dst.centroid[1]))
        hops = max(hops, 1.0) if src.first_tile != dst.first_tile else hops
        transitions.append((src.layer_name, dst.layer_name, values, hops))
        energy += values * hops * lut.e_noc
        latency += values * hops / lut.noc_bandwidth_values_per_ns

    return NocReport(
        mesh_side=side,
        total_tiles=total_tiles,
        placements=placements,
        transitions=transitions,
        energy_pj=energy * lut.energy_scale,
        latency_ns=latency * lut.latency_scale,
    )
