"""repro.pim — MNSIM-style behaviour-level PIM accelerator simulator.

Two complementary halves:

- *functional*: :mod:`repro.pim.crossbar` (bit-sliced integer MVM with
  optional device noise / ADC saturation) and :mod:`repro.pim.datapath`
  (IFAT/IFRT/OFAT tables + joint module), which compute real values and are
  tested for exact equivalence with software convolution;
- *performance*: :mod:`repro.pim.mapping`, :mod:`repro.pim.simulator` and
  :mod:`repro.pim.accelerator`, which turn behaviour counts into crossbar
  allocations, latency, energy and area via the component LUT
  (:mod:`repro.pim.lut`).
"""

from .accelerator import ChipFloorplan, build_floorplan
from .config import DEFAULT_CONFIG, HardwareConfig, input_cycles, weight_slices
from .crossbar import CrossbarArray
from .datapath import (
    IndexTables,
    build_index_tables,
    epitome_to_matrix,
    execute_epitome_conv,
)
from .lut import DEFAULT_LUT, ComponentLUT
from .mapping import CrossbarAllocation, map_conv_layer, map_matrix
from .noc import NocReport, TilePlacement, analyze_noc, place_tiles
from .simulator import (
    LayerDeployment,
    LayerReport,
    NetworkReport,
    SimCounters,
    baseline_deployment,
    epitome_deployment_from_plan,
    reset_sim_counters,
    sim_counters,
    simulate_layer,
    simulate_network,
)

__all__ = [
    "HardwareConfig",
    "DEFAULT_CONFIG",
    "weight_slices",
    "input_cycles",
    "ComponentLUT",
    "DEFAULT_LUT",
    "CrossbarAllocation",
    "map_matrix",
    "map_conv_layer",
    "CrossbarArray",
    "IndexTables",
    "build_index_tables",
    "epitome_to_matrix",
    "execute_epitome_conv",
    "LayerDeployment",
    "LayerReport",
    "NetworkReport",
    "SimCounters",
    "baseline_deployment",
    "epitome_deployment_from_plan",
    "sim_counters",
    "reset_sim_counters",
    "simulate_layer",
    "simulate_network",
    "ChipFloorplan",
    "build_floorplan",
    "NocReport",
    "TilePlacement",
    "analyze_noc",
    "place_tiles",
]
