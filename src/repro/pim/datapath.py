"""EPIM datapath: the IFAT / IFRT / OFAT index tables and the joint module.

Section 4.3 of the paper modifies the PIM datapath with three index tables
so that epitome patches can be driven through the crossbars without runtime
address computation:

- **IFAT** (Input Feature Address Table): one ``(start, stop)`` pair per
  activation round, locating the input-feature slab the round consumes in
  the input buffer;
- **IFRT** (Input Feature Row Table): one word-line enable sequence (length
  = crossbar rows) per sampled patch — rows not in the patch are driven to
  zero volts;
- **OFAT** (Output Feature Address Table): one ``(start, stop)`` pair per
  patch locating its partial result in the output feature map; the **joint
  module** adds partials with identical pairs and concatenates sequential
  ones.

:func:`build_index_tables` derives all three from an
:class:`repro.core.epitome.EpitomePlan`; :func:`execute_epitome_conv` then
drives a real integer input through address controller -> IFAT/IFRT ->
functional crossbars -> OFAT/joint module.  With an ideal ADC the result is
**exactly** the convolution of the reconstructed virtual weight — the
equivalence the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.functional import conv_output_size, im2col
from .config import HardwareConfig
from .crossbar import CrossbarArray

__all__ = ["IndexTables", "build_index_tables", "execute_epitome_conv",
           "epitome_to_matrix"]


@dataclass
class IndexTables:
    """The three EPIM index tables for one epitome layer.

    ``ifat[p] = (start, stop)`` — input-buffer address slab (flattened
    ``(ci, h, w)`` order) for patch ``p``;
    ``ifrt[p]`` — boolean word-line enables over the epitome's
    ``ei*eh*ew`` crossbar rows;
    ``ofat[p] = (co_start, co_stop)`` — output-channel range the patch's
    partial sums belong to.
    """

    ifat: np.ndarray    # (n_patches, 2) int64
    ifrt: np.ndarray    # (n_patches, epitome_rows) bool
    ofat: np.ndarray    # (n_patches, 2) int64

    @property
    def n_patches(self) -> int:
        return self.ifat.shape[0]

    def summary(self) -> str:
        lines = [f"IndexTables: {self.n_patches} patches, "
                 f"{self.ifrt.shape[1]} word lines"]
        for p in range(self.n_patches):
            enabled = int(self.ifrt[p].sum())
            lines.append(
                f"  patch {p:3d}: IFAT=[{self.ifat[p, 0]}, {self.ifat[p, 1]})"
                f"  IFRT={enabled} rows on"
                f"  OFAT=[{self.ofat[p, 0]}, {self.ofat[p, 1]})")
        return "\n".join(lines)


def build_index_tables(plan, input_size: Tuple[int, int]) -> IndexTables:
    """Build IFAT/IFRT/OFAT from an epitome plan.

    Parameters
    ----------
    plan:
        An :class:`repro.core.epitome.EpitomePlan` (duck-typed: needs
        ``patches``, ``epitome_shape``, ``kernel_size``).
    input_size:
        ``(h, w)`` of the input feature map, used to compute IFAT byte
        offsets in the flattened input buffer.
    """
    h, w = input_size
    kernel = plan.kernel_size
    shape = plan.epitome_shape
    n = len(plan.patches)
    ifat = np.zeros((n, 2), dtype=np.int64)
    ifrt = np.zeros((n, shape.rows), dtype=bool)
    ofat = np.zeros((n, 2), dtype=np.int64)
    for p, patch in enumerate(plan.patches):
        # Input slab: channels [ci_start, ci_start + ci_size) of the buffer.
        ifat[p, 0] = patch.ci_start * h * w
        ifat[p, 1] = (patch.ci_start + patch.ci_size) * h * w
        ifrt[p, patch.word_lines(shape, kernel)] = True
        ofat[p, 0] = patch.co_start
        ofat[p, 1] = patch.co_start + patch.co_size
    return IndexTables(ifat=ifat, ifrt=ifrt, ofat=ofat)


def epitome_to_matrix(epitome: np.ndarray) -> np.ndarray:
    """Arrange an epitome ``E[eo, ei, eh, ew]`` as a crossbar matrix.

    Word lines follow ``(ei, eh, ew)`` raster order, bit lines are ``eo`` —
    the MNSIM mapping of section 4.1 applied to the epitome tensor.
    Returns ``(ei*eh*ew, eo)``.
    """
    eo = epitome.shape[0]
    return epitome.reshape(eo, -1).T.copy()


def _virtual_row_indices(patch, kernel: Tuple[int, int]) -> np.ndarray:
    """im2col row indices the patch consumes, in (ci, kh, kw) raster order."""
    kh, kw = kernel
    ci_idx = np.arange(patch.ci_start, patch.ci_start + patch.ci_size)
    k_idx = np.arange(kh * kw)
    return (ci_idx[:, None] * (kh * kw) + k_idx[None, :]).reshape(-1)


def execute_epitome_conv(x_int: np.ndarray, epitome_int: np.ndarray, plan,
                         stride: int, padding: int, config: HardwareConfig,
                         activation_bits: int,
                         weight_bits: int,
                         use_wrapping: bool = False,
                         ideal_adc: bool = True,
                         noise_std: float = 0.0,
                         ir_drop_beta: float = 0.0,
                         rng: Optional[np.random.Generator] = None,
                         ) -> np.ndarray:
    """Run one epitome convolution through the functional EPIM datapath.

    Parameters
    ----------
    x_int:
        Integer input ``(n, ci, h, w)``, non-negative (quantized
        activations).
    epitome_int:
        Integer epitome tensor ``(eo, ei, eh, ew)``.
    plan:
        The :class:`~repro.core.epitome.EpitomePlan` of the layer.
    use_wrapping:
        Output channel wrapping (section 5.3): only the first
        output-channel tile's patches are executed; the joint module
        replicates the results across the remaining tiles (valid because
        tiles are identical by construction — Eq. 8/9).
    ideal_adc / noise_std / rng:
        Passed to the functional :class:`CrossbarArray`.

    Returns
    -------
    np.ndarray
        ``(n, co, oh, ow)`` int64 outputs, exactly equal to
        ``conv2d(x_int, plan.reconstruct(epitome_int))`` when the ADC is
        ideal and noise is off.
    """
    n, ci, h, w = x_int.shape
    co = plan.virtual_shape[0]
    kh, kw = plan.kernel_size
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)

    xbar = CrossbarArray(config, ideal_adc=ideal_adc, noise_std=noise_std,
                         ir_drop_beta=ir_drop_beta, rng=rng)
    xbar.program(epitome_to_matrix(epitome_int), weight_bits)

    cols = im2col(x_int.astype(np.int64), (kh, kw), (stride, stride),
                  (padding, padding))            # (n, ci*kh*kw, oh*ow)
    cols = cols.transpose(0, 2, 1).reshape(n * oh * ow, ci * kh * kw)

    out = np.zeros((n * oh * ow, co), dtype=np.int64)
    shape = plan.epitome_shape
    patches = plan.patches
    if use_wrapping:
        patches = [p for p in patches if p.co_block == 0]

    for patch in patches:
        word_lines = patch.word_lines(shape, (kh, kw))
        virt_rows = _virtual_row_indices(patch, (kh, kw))
        # Address controller + IFAT/IFRT: place the selected inputs on the
        # enabled word lines, everything else at zero volts.
        drive = np.zeros((cols.shape[0], shape.rows), dtype=np.int64)
        drive[:, word_lines] = cols[:, virt_rows]
        mask = np.zeros(shape.rows, dtype=bool)
        mask[word_lines] = True
        partial = xbar.matmul(drive, activation_bits, row_mask=mask)
        # OFAT + joint module: accumulate into the patch's channel range.
        out[:, patch.co_start:patch.co_start + patch.co_size] += \
            partial[:, :patch.co_size]

    if use_wrapping:
        # Joint module replication (Eq. 9): OFM[x + c] = OFM[x].
        eo = shape.out_channels
        first_tile = out[:, :eo].copy()
        for b in range(1, plan.n_co_blocks):
            start = b * eo
            size = min(eo, co - start)
            out[:, start:start + size] = first_tile[:, :size]

    return out.reshape(n, oh, ow, co).transpose(0, 3, 1, 2)
