"""Component latency / energy / area look-up table.

MNSIM 2.0 (the paper's simulation substrate) estimates performance by
multiplying *behaviour counts* (crossbar activation rounds, ADC conversions,
buffer accesses, ...) by per-component costs stored in a look-up table.  This
module is that table.

The constants below are drawn from the 45 nm-class numbers used by the
MNSIM / ISAAC / PRIME line of work (1-bit DAC drivers, 8-bit SAR ADCs at
~1.2 GS/s, 256x256 RRAM reads, SRAM buffers), then scaled by two global
calibration factors so that the modelled ResNet-50 FP32 baseline lands in
the same decade as the paper's Table 1 row (139.8 ms / 214.0 mJ).  Absolute
ms/mJ are NOT claims of device accuracy — the reproduction contract is that
*relative* numbers (who wins, by what factor) are structural, and those are
independent of the two scale factors.  EXPERIMENTS.md records both paper and
measured values side by side.

All latencies are nanoseconds, energies picojoules, areas um^2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ComponentLUT", "DEFAULT_LUT"]


@dataclass(frozen=True)
class ComponentLUT:
    """Per-operation costs of each datapath component.

    Latency entries are per *event* (one DAC cycle, one crossbar read round,
    one ADC conversion, ...); energy entries are per event as well, with the
    crossbar read given per *active cell* so partially-enabled word lines
    (IFRT-gated epitome rounds) cost proportionally less.
    """

    # --- timing (ns) ---------------------------------------------------
    t_dac: float = 1.0            # one bit-serial input cycle (driver settle)
    t_xbar: float = 10.0          # analogue MVM read round
    t_adc: float = 1.0            # one ADC conversion
    t_shift_add: float = 1.0      # shift-and-add of one cycle's partials
    t_buffer_access: float = 2.0  # SRAM read or write of one value
    t_joint: float = 2.0          # joint-module merge of one patch result
    t_index_table: float = 1.0    # IFAT/IFRT/OFAT lookup per round
    t_slice_merge: float = 2.5    # shift-add merge per weight slice per cycle
    latency_scale: float = 1.21   # calibrated: ResNet-50 FP32 baseline = 139.8 ms

    # --- energy (pJ) ---------------------------------------------------
    e_cell: float = 0.002         # per active cell per input cycle (2 fJ)
    e_dac: float = 0.5            # per active row per input cycle
    e_adc: float = 6.5            # per conversion (8-bit SAR + S&H + mux)
    e_shift_add: float = 0.05     # per column per cycle
    e_buffer_read: float = 5.0    # per value read from SRAM buffer
    e_buffer_write: float = 10.0  # per value written to SRAM buffer
    e_joint: float = 0.5          # per merged value in the joint module
    e_index_table: float = 0.1    # per table lookup
    e_noc: float = 1.5            # per value per mesh hop (router + link)
    noc_bandwidth_values_per_ns: float = 16.0   # per-link throughput
    energy_scale: float = 1.747   # calibrated: ResNet-50 FP32 baseline = 214 mJ

    # --- static power ----------------------------------------------------
    # Idle periphery (ADC bias, drivers, decoders) leaks for the whole
    # inference; with thousands of allocated arrays this is a first-order
    # term, and it is why fewer-crossbar deployments (epitome) can win on
    # energy even when they run longer (Table 1, FP32 rows).  Balanced
    # against e_adc so the EPIM-FP32 energy margin over the baseline lands
    # near the paper's ~9%.
    p_leak_per_xbar_uw: float = 90.0

    # --- area (um^2) -----------------------------------------------------
    a_xbar: float = 2500.0        # one 256x256 RRAM array + drivers
    a_adc: float = 3000.0         # one 8-bit SAR ADC
    a_dac_per_row: float = 0.2    # 1-bit driver per word line
    a_buffer_per_kb: float = 5000.0
    a_index_table: float = 800.0  # IFAT+IFRT+OFAT storage per epitome layer

    def scaled(self, latency_scale: float = None, energy_scale: float = None
               ) -> "ComponentLUT":
        """Return a LUT with replaced calibration factors."""
        kwargs = {}
        if latency_scale is not None:
            kwargs["latency_scale"] = latency_scale
        if energy_scale is not None:
            kwargs["energy_scale"] = energy_scale
        return replace(self, **kwargs)


DEFAULT_LUT = ComponentLUT()
