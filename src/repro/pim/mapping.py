"""Weight-to-crossbar mapping and allocation accounting.

Follows the MNSIM mapping the paper adopts (section 4.1): for a convolution
``W[co, ci, kh, kw]`` the flattened ``ci*kh*kw`` dimension maps to crossbar
**word lines** (rows) and ``co`` maps to **bit lines** (columns), with each
``w``-bit weight bit-sliced across ``ceil(w / cell_bits)`` adjacent cell
columns.  A tensor larger than one array is partitioned into a grid of
``row_groups x col_groups`` crossbars; one crossbar holds (part of) exactly
one layer, so fragmentation at the edges is real and reported as memristor
utilization (Table 1's last column).

Baseline layers store the full virtual weight; epitome layers store only the
epitome (rows ``ei*eh*ew``, columns ``eo``) — that difference is the paper's
crossbar compression rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from .config import HardwareConfig

__all__ = ["CrossbarAllocation", "map_matrix", "map_conv_layer"]


@dataclass(frozen=True)
class CrossbarAllocation:
    """Result of mapping one stored matrix onto the crossbar fabric.

    Attributes
    ----------
    stored_rows:
        Word lines demanded (``ci*kh*kw`` for a conv, ``ei*eh*ew`` for an
        epitome).
    logical_cols:
        Output columns before bit slicing (``co`` / ``eo``).
    weight_bits / slices:
        Precision and resulting cell columns per logical column.
    row_groups / col_groups / num_crossbars:
        Grid of arrays allocated.
    used_cells / allocated_cells:
        Occupancy accounting; ``utilization = used / allocated``.
    """

    stored_rows: int
    logical_cols: int
    weight_bits: int
    slices: int
    row_groups: int
    col_groups: int
    num_crossbars: int
    used_cells: int
    allocated_cells: int

    @property
    def physical_cols(self) -> int:
        return self.logical_cols * self.slices

    @property
    def utilization(self) -> float:
        if self.allocated_cells == 0:
            return 0.0
        return self.used_cells / self.allocated_cells


def map_matrix(stored_rows: int, logical_cols: int, weight_bits: int,
               config: HardwareConfig) -> CrossbarAllocation:
    """Allocate crossbars for a ``stored_rows x logical_cols`` weight matrix.

    Parameters
    ----------
    stored_rows:
        Word-line demand of the stored tensor.
    logical_cols:
        Logical output columns; each expands into
        ``ceil(weight_bits / cell_bits)`` physical bit lines.
    weight_bits:
        Fixed-point weight precision (use
        ``config.fp_equivalent_bits`` for FP32 deployments).
    """
    if stored_rows < 1 or logical_cols < 1:
        raise ValueError("matrix dimensions must be positive")
    slices = config.slices_for(weight_bits)
    physical_cols = logical_cols * slices
    row_groups = math.ceil(stored_rows / config.xbar_rows)
    col_groups = math.ceil(physical_cols / config.xbar_cols)
    num_crossbars = row_groups * col_groups
    used = stored_rows * physical_cols
    allocated = num_crossbars * config.cells_per_xbar
    return CrossbarAllocation(
        stored_rows=stored_rows,
        logical_cols=logical_cols,
        weight_bits=weight_bits,
        slices=slices,
        row_groups=row_groups,
        col_groups=col_groups,
        num_crossbars=num_crossbars,
        used_cells=used,
        allocated_cells=allocated,
    )


def map_conv_layer(in_channels: int, out_channels: int,
                   kernel_size: Tuple[int, int], weight_bits: int,
                   config: HardwareConfig) -> CrossbarAllocation:
    """Map a full (non-epitome) convolution: rows = ``ci*kh*kw``, cols = ``co``."""
    kh, kw = kernel_size
    return map_matrix(in_channels * kh * kw, out_channels, weight_bits, config)
