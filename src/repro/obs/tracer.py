"""Span-based tracer with Chrome trace-event and JSONL export.

A :class:`Span` is one named interval on a named track — a request's
queue wait, a batch execution on ``replica0``, one generation of an
evolutionary search.  The serving engine runs on *simulated* milliseconds
and records spans with explicit timestamps (:meth:`Tracer.record`); the
search runs on wall clock and uses the :meth:`Tracer.span` context
manager, which stamps times relative to the tracer's creation.  One
tracer therefore holds a single consistent timebase — use one tracer per
run, not one per subsystem.

Exports:

- :meth:`Tracer.to_chrome_trace` — the Chrome trace-event JSON object
  format (complete ``"X"`` events plus ``"M"`` thread-name metadata),
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
- :meth:`Tracer.write_jsonl` — one span object per line, for ``jq`` and
  log pipelines.

The default tracer is :class:`NullTracer` (see :mod:`repro.obs.runtime`):
every record is a no-op and instrumented hot loops guard attribute
construction behind ``tracer.enabled``, so tracing costs nothing until a
real tracer is installed.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["Span", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class Span:
    """One complete interval: name, category, track and [start, end] ms."""

    name: str
    category: str
    start_ms: float
    end_ms: float
    track: str = "main"
    args: Optional[Dict] = None

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms

    def as_dict(self) -> Dict:
        out = {
            "name": self.name,
            "cat": self.category,
            "track": self.track,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "dur_ms": self.duration_ms,
        }
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Collects spans; ``enabled`` is True so instrumentation emits.

    Recording is the hot path (one or more calls per served request), so
    spans are kept as raw tuples and only materialized into
    :class:`Span` objects on access/export — the ``obs.overhead``
    benchmark holds instrumented serving to <5% over uninstrumented, and
    per-record dataclass construction alone would blow that budget.
    """

    enabled = True

    def __init__(self):
        self._events: List[tuple] = []
        self._sources: List = []
        self._t0 = time.perf_counter()

    def __len__(self) -> int:
        self._flush_sources()
        return len(self._events)

    @property
    def spans(self) -> List[Span]:
        """The recorded spans, materialized (export-time, not hot).

        A non-dict ``args`` payload is an identity scalar recorded on
        the cheap emission path (see :meth:`extend`) and comes out as
        ``{"id": value}``.
        """
        self._flush_sources()
        return [Span(name=name, category=category, start_ms=start_ms,
                     end_ms=end_ms, track=track,
                     args=args if args is None or isinstance(args, dict)
                     else {"id": args})
                for name, category, start_ms, end_ms, track, args
                in self._events]

    def _flush_sources(self) -> None:
        """Materialize every pending lazy source into the event list."""
        while self._sources:
            source = self._sources.pop(0)
            self._events.extend(source())

    # ---- recording ----------------------------------------------------
    def record(self, name: str, category: str, start_ms: float,
               end_ms: float, track: str = "main",
               args: Optional[Dict] = None) -> None:
        """Record a complete span with explicit (e.g. simulated) times."""
        if end_ms < start_ms:
            start_ms, end_ms = end_ms, start_ms
        self._events.append((name, category, start_ms, end_ms, track, args))

    def extend(self, events) -> None:
        """Bulk-record pre-built event tuples
        ``(name, category, start_ms, end_ms, track, args)``.

        The fastest emission path for hot loops: build one list
        comprehension per batch and hand it over whole.  Unlike
        :meth:`record`, no per-event normalization happens — callers
        must supply ``start_ms <= end_ms``.  ``args`` may be a dict, or
        a bare scalar (exported as ``{"id": value}``) when building a
        per-event dict would cost more than the event itself — the
        serving engine tags request spans with just the request id this
        way.
        """
        self._events.extend(events)

    def add_source(self, source) -> None:
        """Register a zero-argument callable returning event tuples
        (the :meth:`extend` shape), evaluated lazily on first export.

        This is how a producer that already keeps a complete record of
        what happened (the serving engine's telemetry) traces at *no*
        hot-loop cost at all: it hands over one closure per run and the
        spans are synthesized when somebody actually looks at them.
        The closure must be stable — it is called once, at an arbitrary
        later point, and its result is appended to the span list.
        """
        self._sources.append(source)

    def now_ms(self) -> float:
        """Wall-clock ms since tracer creation (the span() timebase)."""
        return (time.perf_counter() - self._t0) * 1000.0

    @contextmanager
    def span(self, name: str, category: str = "default",
             track: str = "main", args: Optional[Dict] = None):
        """Wall-clock span context manager (search-side instrumentation)."""
        start = self.now_ms()
        try:
            yield self
        finally:
            self.record(name, category, start, self.now_ms(),
                        track=track, args=args)

    # ---- export -------------------------------------------------------
    def to_chrome_trace(self) -> Dict:
        """Chrome trace-event JSON (object format, ``X`` complete events).

        Tracks map to thread ids (one ``M``/``thread_name`` metadata event
        each); timestamps are microseconds as the format requires.  Events
        are sorted by start time so per-track ``ts`` is monotone.
        """
        spans = self.spans
        tracks = sorted({span.track for span in spans})
        tids = {track: i for i, track in enumerate(tracks)}
        events: List[Dict] = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tids[t],
             "args": {"name": t}} for t in tracks]
        for span in sorted(spans,
                           key=lambda s: (s.start_ms, s.end_ms, s.name)):
            event = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start_ms * 1000.0,
                "dur": span.duration_ms * 1000.0,
                "pid": 0,
                "tid": tids[span.track],
            }
            if span.args:
                event["args"] = span.args
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace()) + "\n")
        return path

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """One span per line, start-time ordered."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        ordered = sorted(self.spans,
                         key=lambda s: (s.start_ms, s.end_ms, s.name))
        with open(path, "w", encoding="utf-8") as fh:
            for span in ordered:
                fh.write(json.dumps(span.as_dict()) + "\n")
        return path


class NullTracer(Tracer):
    """The zero-cost default: records nothing, exports empty."""

    enabled = False

    def record(self, name: str, category: str, start_ms: float,
               end_ms: float, track: str = "main",
               args: Optional[Dict] = None) -> None:
        return None

    def extend(self, events) -> None:
        return None

    def add_source(self, source) -> None:
        return None

    @contextmanager
    def span(self, name: str, category: str = "default",
             track: str = "main", args: Optional[Dict] = None):
        yield self
