"""Process-wide metrics registry: counters, gauges and histograms.

Every subsystem publishes into one :class:`MetricsRegistry` under dotted,
namespaced keys (``serve.engine.latency_ms``, ``search.gridcache.hits``,
``pim.simulator.activation_rounds`` — the catalog lives in
docs/observability.md), and the exporters in :mod:`repro.obs.export`
serialize the whole registry as Prometheus text or JSONL.

Histograms keep **no per-observation state**: a fixed cumulative bucket
vector plus :class:`P2Quantile` streaming estimators (Jain & Chlamtac's
P² algorithm — five markers per tracked quantile, O(1) memory and update
cost), so a million-request replay publishes latency percentiles without
retaining a million records.  ``observe_many`` takes the bucket counts
through numpy and caps the quantile-marker updates at
:data:`P2_SAMPLE_CAP` stride-sampled values per call, keeping bulk
publication O(buckets + cap) regardless of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "P2_SAMPLE_CAP",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricsRegistry",
]

# Default histogram upper bounds (ms-scale latencies); +inf is implicit.
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                   200.0, 500.0, 1000.0, 2000.0, 5000.0)

# Streaming quantiles every histogram tracks.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

# Per-``observe_many`` cap on values fed to the P² markers (stride
# sampled); bucket counts always see every value.
P2_SAMPLE_CAP = 8192


class P2Quantile:
    """Streaming quantile estimator (the P² algorithm, Jain & Chlamtac
    1985): five markers whose heights approximate the q-quantile without
    storing observations.  Exact until five observations have arrived.
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired",
                 "_increments")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                         3.0 + 2.0 * q, 5.0]
        self._increments = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        self.count += 1
        h = self._heights
        if self.count <= 5:
            h.append(float(x))
            if self.count == 5:
                h.sort()
            return
        # Locate the cell containing x, clamping the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        pos = self._positions
        for i in range(k + 1, 5):
            pos[i] += 1.0
        des = self._desired
        for i in range(5):
            des[i] += self._increments[i]
        # Adjust the three interior markers by parabolic interpolation,
        # falling back to linear when P² would break monotonicity.
        for i in (1, 2, 3):
            d = des[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
                    (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step
    def observe_bulk(self, values: np.ndarray) -> None:
        """Feed a batch of observations without a per-value Python loop.

        While the estimator still holds raw samples (count <= 5) the
        batch is pooled with them and the five markers initialized from
        the pool's *exact* quantiles — the state P² would converge
        toward.  Once the markers are summaries (count > 5), the batch's
        exact quantile sketch is merged in by averaging the two
        piecewise-linear CDFs weighted by observation count and
        re-reading the marker heights off the merged curve.  Either way
        the update is O(n log n) vectorized and O(1) memory; the
        publish-once pattern (fresh registry per run) hits the exact
        path.  Batches smaller than five stream one at a time.
        """
        arr = np.asarray(values, dtype=np.float64).ravel()
        n = int(arr.size)
        if n == 0:
            return
        if n < 5:
            for v in arr.tolist():
                self.observe(v)
            return
        probs = np.asarray(self._increments)  # (0, q/2, q, (1+q)/2, 1)
        if self.count <= 5:
            # Heights are still the raw first observations: pool & redo.
            pooled = np.concatenate([np.asarray(self._heights), arr])
            heights = np.quantile(pooled, probs)
        else:
            batch = np.quantile(arr, probs)
            mine = np.asarray(self._heights)
            knots = np.union1d(mine, batch)
            merged_cdf = (self.count * np.interp(knots, mine, probs)
                          + n * np.interp(knots, batch, probs)) \
                / (self.count + n)
            heights = np.interp(probs, merged_cdf, knots)
        total = self.count + n
        self._heights = [float(v) for v in heights]
        self._positions = [1.0 + p * (total - 1) for p in probs]
        self._desired = list(self._positions)
        self.count = total

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step) * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step) * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """Current estimate (NaN before the first observation)."""
        if self.count == 0:
            return float("nan")
        if self.count <= 5:
            ordered = sorted(self._heights)
            return float(np.percentile(np.array(ordered), self.q * 100.0))
        return self._heights[2]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with streaming quantile markers.

    ``buckets`` are inclusive upper bounds in ascending order; an implicit
    +inf bucket catches the overflow.  ``quantile(q)`` returns the P²
    estimate for tracked quantiles and falls back to linear interpolation
    over the bucket counts otherwise.
    """

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "_quantiles")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES,
                 help: str = ""):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and ascending")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)    # last = +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._quantiles = {q: P2Quantile(q) for q in quantiles}

    def observe(self, value: float) -> None:
        value = float(value)
        i = int(np.searchsorted(self.buckets, value, side="left"))
        self.bucket_counts[i] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for est in self._quantiles.values():
            est.observe(value)

    def observe_many(self, values: Union[Sequence[float], np.ndarray]) -> None:
        """Bulk observation: vectorized bucket/sum/min/max accounting, with
        the P² markers fed at most :data:`P2_SAMPLE_CAP` stride-sampled
        values (the estimator is already approximate; the stride keeps a
        1M-value publish from looping a million times in Python)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        idx = np.searchsorted(self.buckets, arr, side="left")
        counts = np.bincount(idx, minlength=len(self.bucket_counts))
        for i, c in enumerate(counts):
            self.bucket_counts[i] += int(c)
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        if arr.size > P2_SAMPLE_CAP:
            arr = arr[:: int(np.ceil(arr.size / P2_SAMPLE_CAP))]
        for est in self._quantiles.values():
            est.observe_bulk(arr)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def tracked_quantiles(self) -> Dict[float, float]:
        return {q: est.value() for q, est in sorted(self._quantiles.items())}

    def quantile(self, q: float) -> float:
        """P² estimate for tracked quantiles; bucket interpolation else."""
        if q in self._quantiles:
            return self._quantiles[q].value()
        if self.count == 0:
            return float("nan")
        target = q * self.count
        cumulative = 0
        lower = self.min
        for i, upper in enumerate(self.buckets):
            cell = self.bucket_counts[i]
            if cumulative + cell >= target:
                frac = (target - cumulative) / cell if cell else 0.0
                lo = max(lower, self.min)
                hi = min(upper, self.max)
                return lo + frac * max(0.0, hi - lo)
            cumulative += cell
            lower = upper
        return self.max

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +inf last — the
        Prometheus histogram exposition shape."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, cell in zip(self.buckets, self.bucket_counts):
            running += cell
            out.append((upper, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out


Metric = Union[Counter, Gauge, Histogram]


@dataclass
class MetricsRegistry:
    """Name -> metric mapping with get-or-create accessors.

    Re-requesting a name returns the existing instance; requesting it as a
    different type is an error (two subsystems silently sharing one key as
    different kinds would corrupt both).
    """

    _metrics: Dict[str, Metric] = field(default_factory=dict)

    def _get_or_create(self, name: str, kind, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"requested as {kind.__name__}")
            return metric
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter,
                                   lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES,
                  help: str = "") -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets=buckets,
                                               quantiles=quantiles,
                                               help=help))

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def clear(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> Dict[str, float]:
        """Flat scalar view: counters/gauges by name; histograms expanded
        to ``name.count/sum/mean/p50/p95/p99`` (NaN-free where possible)."""
        out: Dict[str, float] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[f"{metric.name}.count"] = float(metric.count)
                out[f"{metric.name}.sum"] = metric.sum
                out[f"{metric.name}.mean"] = metric.mean
                for q, value in metric.tracked_quantiles().items():
                    out[f"{metric.name}.p{int(round(q * 100))}"] = value
            else:
                out[metric.name] = metric.value
        return out
