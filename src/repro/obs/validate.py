"""Validators for the observability artifacts the CLIs emit.

Three formats, each validated structurally (not just "is it JSON"):

- **Chrome trace-event JSON** (``--trace-out t.json``): a top-level
  object with a ``traceEvents`` list (or a bare event list).  Complete
  ``X`` events need a numeric ``ts`` and non-negative ``dur``; duration
  ``B``/``E`` events must nest properly per ``(pid, tid)`` track; per
  track, ``ts`` must be non-decreasing in file order (what the in-repo
  tracer guarantees and Perfetto's importer is happiest with).
- **Prometheus text** (``--metrics-out m.prom``): must parse under
  :func:`repro.obs.export.parse_prometheus_text`; histogram families
  must have non-decreasing cumulative buckets, a ``+Inf`` bucket, and a
  ``_count`` equal to it.  When the ``serve_faults_*`` family is present
  (a fault-injected serve run, docs/scenarios.md) the per-kind counters
  must sum to ``serve_faults_injected``; when ``serve_resilience_*`` is
  present (a resilience-armed run, docs/resilience.md) breaker episode
  and retry-budget accounting must balance too.
- **JSONL** (``--metrics-out m.jsonl``, span JSONL): every non-empty
  line must be individually ``json.loads``-able.

Each validator returns a list of human-readable problems (empty = valid);
:func:`validate_file` sniffs the format from the suffix/content and is
what ``repro obs validate`` calls.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .export import PrometheusParseError, parse_prometheus_text

__all__ = [
    "validate_chrome_trace",
    "validate_prometheus",
    "validate_jsonl",
    "validate_file",
    "sniff_format",
]

_PHASES_OK = {"X", "B", "E", "M", "i", "I", "C"}


def validate_chrome_trace(payload) -> List[str]:
    """Structural problems of a parsed Chrome trace (empty list = valid)."""
    problems: List[str] = []
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object has no 'traceEvents' list"]
    elif isinstance(payload, list):
        events = payload
    else:
        return [f"expected an object or array, got {type(payload).__name__}"]

    last_ts: Dict[Tuple, float] = {}
    open_stacks: Dict[Tuple, List[str]] = {}
    timed = 0
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(f"{where}: missing 'ph' phase")
            continue
        if phase not in _PHASES_OK:
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        if "name" not in event:
            problems.append(f"{where}: missing 'name'")
        if phase == "M":
            continue        # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or math.isnan(float(ts)) or float(ts) < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number, "
                            f"got {ts!r}")
            continue
        timed += 1
        track = (event.get("pid", 0), event.get("tid", 0))
        previous = last_ts.get(track)
        if previous is not None and float(ts) < previous:
            problems.append(
                f"{where}: ts {ts} goes backwards on track pid/tid "
                f"{track} (previous {previous})")
        last_ts[track] = float(ts)
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or math.isnan(float(dur)) or float(dur) < 0:
                problems.append(f"{where}: X event needs a non-negative "
                                f"'dur', got {dur!r}")
        elif phase == "B":
            open_stacks.setdefault(track, []).append(
                str(event.get("name", "")))
        elif phase == "E":
            stack = open_stacks.get(track)
            if not stack:
                problems.append(f"{where}: E event with no open B on "
                                f"track pid/tid {track}")
            else:
                stack.pop()
    for track, stack in open_stacks.items():
        for name in stack:
            problems.append(f"unclosed B event {name!r} on track "
                            f"pid/tid {track}")
    if timed == 0 and not problems:
        problems.append("trace has no timed events")
    return problems


def validate_prometheus(text: str) -> List[str]:
    """Parse + histogram-consistency problems (empty list = valid)."""
    try:
        families = parse_prometheus_text(text)
    except PrometheusParseError as exc:
        return [str(exc)]
    problems: List[str] = []
    if not any(family["samples"] for family in families.values()):
        problems.append("no samples found")
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        buckets = [(s[1].get("le"), s[2]) for s in family["samples"]
                   if s[0] == f"{name}_bucket"]
        counts = [s[2] for s in family["samples"] if s[0] == f"{name}_count"]
        if not buckets:
            problems.append(f"histogram {name}: no _bucket samples")
            continue
        if buckets[-1][0] != "+Inf":
            problems.append(f"histogram {name}: last bucket must be "
                            f'le="+Inf", got le={buckets[-1][0]!r}')
        values = [v for _, v in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            problems.append(f"histogram {name}: cumulative bucket counts "
                            "decrease")
        if counts and values and counts[0] != values[-1]:
            problems.append(f"histogram {name}: _count {counts[0]} != "
                            f"+Inf bucket {values[-1]}")
    problems.extend(_faults_consistency(families))
    problems.extend(_resilience_consistency(families))
    return problems


def _family_total(families: Dict, metric: str):
    """Sum of a family's plain samples, or None when it is absent."""
    family = families.get(metric)
    if family is None:
        return None
    return sum(sample[2] for sample in family["samples"]
               if sample[0] == metric)


def _faults_consistency(families: Dict) -> List[str]:
    """Cross-family invariant of fault-injected serve runs: the per-kind
    ``serve_faults_*`` counters partition ``serve_faults_injected``."""

    def total(metric: str):
        return _family_total(families, metric)

    injected = total("serve_faults_injected")
    if injected is None:
        return []
    problems: List[str] = []
    kinds = {"serve_faults_chip_kills": total("serve_faults_chip_kills"),
             "serve_faults_stragglers": total("serve_faults_stragglers"),
             "serve_faults_cache_wipes": total("serve_faults_cache_wipes")}
    missing = sorted(name for name, value in kinds.items() if value is None)
    if missing:
        problems.append(
            "serve_faults_injected present but per-kind counter(s) "
            f"missing: {', '.join(missing)}")
    else:
        by_kind = sum(kinds.values())
        if by_kind != injected:
            problems.append(
                f"serve_faults_injected ({injected:g}) != sum of per-kind "
                f"fault counters ({by_kind:g})")
    failovers = total("serve_faults_failovers")
    kills = kinds.get("serve_faults_chip_kills")
    if failovers is not None and kills is not None and failovers > kills:
        problems.append(
            f"serve_faults_failovers ({failovers:g}) exceeds "
            f"serve_faults_chip_kills ({kills:g}) — a failover without "
            "a kill")
    return problems


def _resilience_consistency(families: Dict) -> List[str]:
    """Cross-family invariants of resilience-armed serve runs (the
    ``serve_resilience_*`` family, docs/resilience.md): breaker episode
    accounting must balance, retries must fit their budget, and the
    faults-side retry counter must agree with the resilience side."""

    def total(metric: str):
        return _family_total(families, metric)

    opens = total("serve_resilience_breaker_opens")
    if opens is None:
        return []
    problems: List[str] = []
    probes = total("serve_resilience_breaker_probes")
    closes = total("serve_resilience_breaker_closes")
    if probes is not None and probes > opens:
        problems.append(
            f"serve_resilience_breaker_probes ({probes:g}) exceeds "
            f"breaker_opens ({opens:g}) — a probe without an open episode")
    if closes is not None and probes is not None and closes > probes:
        problems.append(
            f"serve_resilience_breaker_closes ({closes:g}) exceeds "
            f"breaker_probes ({probes:g}) — a close without a probe")
    scheduled = total("serve_resilience_retries_scheduled")
    budget = total("serve_resilience_retry_budget")
    if scheduled is not None and budget is not None and scheduled > budget:
        problems.append(
            f"serve_resilience_retries_scheduled ({scheduled:g}) exceeds "
            f"the run retry_budget ({budget:g})")
    fault_retries = _family_total(families, "serve_faults_retries")
    if scheduled is not None and fault_retries is not None \
            and fault_retries != scheduled:
        problems.append(
            f"serve_faults_retries ({fault_retries:g}) != "
            f"serve_resilience_retries_scheduled ({scheduled:g}) — the "
            "failover and budget books disagree")
    entries = total("serve_resilience_brownout_entries")
    exits = total("serve_resilience_brownout_exits")
    if entries is not None and exits is not None and exits > entries:
        problems.append(
            f"serve_resilience_brownout_exits ({exits:g}) exceeds "
            f"brownout_entries ({entries:g}) — an exit without an entry")
    return problems


def validate_jsonl(text: str) -> List[str]:
    """Problems with a JSONL payload (empty list = valid)."""
    problems: List[str] = []
    seen = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        seen += 1
        try:
            json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc.msg})")
    if seen == 0:
        problems.append("no JSON lines found")
    return problems


def sniff_format(path: Path, text: str) -> str:
    """``chrome-trace`` | ``jsonl`` | ``prometheus``, from suffix then
    content."""
    if path.suffix == ".jsonl":
        return "jsonl"
    if path.suffix in (".prom", ".txt"):
        return "prometheus"
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        try:
            json.loads(text)
            return "chrome-trace"
        except json.JSONDecodeError:
            # Many JSON objects on separate lines: JSONL.
            return "jsonl"
    return "prometheus"


def validate_file(path: Union[str, Path]) -> Tuple[str, List[str]]:
    """Validate one artifact; returns ``(format, problems)``."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return ("unreadable", [f"cannot read {path}: {exc}"])
    kind = sniff_format(path, text)
    if kind == "chrome-trace":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            return (kind, [f"not valid JSON: {exc}"])
        return (kind, validate_chrome_trace(payload))
    if kind == "jsonl":
        return (kind, validate_jsonl(text))
    return (kind, validate_prometheus(text))
