"""Metric exporters: Prometheus text exposition and JSONL.

``prometheus_text`` renders a whole :class:`MetricsRegistry` in the
Prometheus text exposition format (v0.0.4): ``# HELP`` / ``# TYPE``
headers, histograms as cumulative ``_bucket{le="..."}`` series plus
``_sum`` / ``_count``.  Dotted metric names are sanitized to the
``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset (dots become underscores).

``parse_prometheus_text`` is the minimal in-repo parser the validator and
the exporter round-trip tests use — it understands exactly what the
exporter emits (plus arbitrary label sets), not the full exposition
grammar.

``metrics_jsonl`` writes one metric object per line; histograms carry
their bucket vector and streaming quantiles, so the JSONL view is richer
than the scrape view (quantiles are deliberately *not* exported to
Prometheus — mixing histogram and summary series under one family is
invalid exposition).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "sanitize_metric_name",
    "prometheus_text",
    "parse_prometheus_text",
    "PrometheusParseError",
    "metrics_jsonl",
    "write_metrics",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """Dotted registry name -> Prometheus-legal name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(float(bound))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = sanitize_metric_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for upper, cumulative in metric.cumulative_buckets():
                lines.append(f'{name}_bucket{{le="{_format_le(upper)}"}} '
                             f"{cumulative}")
            lines.append(f"{name}_sum {_format_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


class PrometheusParseError(ValueError):
    """A line the minimal parser cannot accept (carries the line number)."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _parse_number(token: str) -> float:
    token = token.strip()
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    return float(token)


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Parse exposition text into ``{family: {"type", "help", "samples"}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)`` tuples.
    Histogram ``_bucket``/``_sum``/``_count`` samples are grouped under
    their family name (the ``# TYPE`` subject).  Raises
    :class:`PrometheusParseError` on any malformed line.
    """
    families: Dict[str, Dict] = {}

    def family_for(sample_name: str) -> Dict:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)] \
                if sample_name.endswith(suffix) else None
            if trimmed and families.get(trimmed, {}).get("type") \
                    == "histogram":
                base = trimmed
                break
        return families.setdefault(
            base, {"type": "untyped", "help": "", "samples": []})

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    raise PrometheusParseError(
                        lineno, f"malformed {parts[1]} comment: {raw!r}")
                name = parts[2]
                entry = families.setdefault(
                    name, {"type": "untyped", "help": "", "samples": []})
                if parts[1] == "TYPE":
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        raise PrometheusParseError(
                            lineno, f"unknown metric type {kind!r}")
                    entry["type"] = kind
                else:
                    entry["help"] = parts[3] if len(parts) > 3 else ""
            continue        # other comments are legal and skipped
        match = _LINE.match(line)
        if not match:
            raise PrometheusParseError(lineno, f"unparseable sample: {raw!r}")
        labels: Dict[str, str] = {}
        label_blob = match.group("labels")
        if label_blob:
            consumed = 0
            for lm in _LABEL.finditer(label_blob):
                labels[lm.group(1)] = lm.group(2).replace('\\"', '"') \
                    .replace("\\\\", "\\").replace("\\n", "\n")
                consumed += len(lm.group(0))
            stripped = re.sub(r"[,\s]", "", label_blob)
            if consumed < len(stripped):
                raise PrometheusParseError(
                    lineno, f"malformed labels: {{{label_blob}}}")
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            raise PrometheusParseError(
                lineno,
                f"non-numeric value {match.group('value')!r}") from None
        family = family_for(match.group("name"))
        family["samples"].append((match.group("name"), labels, value))
    return families


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per metric per line (richer than the scrape view)."""
    lines: List[str] = []

    def scrub(value: float):
        return None if (isinstance(value, float)
                        and (math.isnan(value)
                             or math.isinf(value))) else value

    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            payload = {
                "name": metric.name,
                "type": "histogram",
                "count": metric.count,
                "sum": metric.sum,
                "min": scrub(metric.min),
                "max": scrub(metric.max),
                "mean": scrub(metric.mean),
                "buckets": [["+Inf" if math.isinf(upper) else upper,
                             cumulative]
                            for upper, cumulative
                            in metric.cumulative_buckets()],
                "quantiles": {f"p{int(round(q * 100))}": scrub(v)
                              for q, v in
                              metric.tracked_quantiles().items()},
            }
        else:
            payload = {
                "name": metric.name,
                "type": ("counter" if isinstance(metric, Counter)
                         else "gauge"),
                "value": scrub(metric.value),
            }
        if metric.help:
            payload["help"] = metric.help
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry,
                  path: Union[str, Path]) -> Path:
    """Write the registry to ``path``, format chosen by suffix:
    ``.jsonl`` -> JSONL, anything else (``.prom``, ``.txt``, ...) ->
    Prometheus text."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".jsonl":
        path.write_text(metrics_jsonl(registry))
    else:
        path.write_text(prometheus_text(registry))
    return path
