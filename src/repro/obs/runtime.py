"""Process-wide observability context: the installed tracer and registry.

Instrumented code (serve engine/scheduler/cache, search loops, the PIM
simulator counters) resolves its sinks here at call time::

    from ..obs.runtime import get_metrics, get_tracer

so a CLI (or test) can swap in a fresh registry / real tracer for one run
and everything downstream publishes into it without threading parameters
through every layer.  The defaults are a no-op :class:`NullTracer` and a
single always-on :class:`MetricsRegistry` (counters are a float add; the
expensive publication paths are bulk, post-run).

Worker processes spawned by the search fan-out inherit whatever was
installed at fork time, but their increments stay in the worker — only
:class:`repro.pim.simulator.SimCounters` deltas are merged back (see
``repro.search.parallel``).  Cross-process metric aggregation is a
documented non-goal for now.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .metrics import MetricsRegistry
from .tracer import NullTracer, Tracer

__all__ = [
    "get_metrics",
    "set_metrics",
    "get_tracer",
    "set_tracer",
    "use_metrics",
    "use_tracer",
    "reset",
]

_NULL_TRACER = NullTracer()
_tracer: Tracer = _NULL_TRACER
_metrics = MetricsRegistry()


def get_tracer() -> Tracer:
    """The installed tracer (a no-op :class:`NullTracer` by default)."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` process-wide (None restores the no-op default);
    returns the previously installed tracer."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else _NULL_TRACER
    return previous


def get_metrics() -> MetricsRegistry:
    """The installed process-wide metrics registry."""
    return _metrics


def set_metrics(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` process-wide (None installs a fresh empty
    one); returns the previously installed registry."""
    global _metrics
    previous = _metrics
    _metrics = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scoped tracer install (tests, single CLI runs)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Scoped registry install (tests, single CLI runs)."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


def reset() -> None:
    """Restore the no-op tracer and a fresh registry (test isolation)."""
    set_tracer(None)
    set_metrics(None)
