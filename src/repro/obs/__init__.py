"""repro.obs — unified observability: metrics, tracing, SLO reporting.

The cross-subsystem instrumentation layer (docs/observability.md):

- :mod:`repro.obs.metrics` — process-wide registry of counters, gauges
  and histograms (fixed buckets + P² streaming quantiles, no
  per-observation retention);
- :mod:`repro.obs.tracer` — span tracer exporting Chrome trace-event
  JSON (Perfetto-loadable) and JSONL; no-op by default;
- :mod:`repro.obs.runtime` — the installed tracer/registry the
  instrumented subsystems (serve, search, pim) resolve at call time;
- :mod:`repro.obs.slo` — SLO definitions and attainment reports;
- :mod:`repro.obs.export` — Prometheus text and JSONL exporters (and the
  minimal Prometheus parser);
- :mod:`repro.obs.validate` / :mod:`repro.obs.cli` — structural
  validators behind ``python -m repro obs validate``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)
from .runtime import (
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
    use_metrics,
    use_tracer,
)
from .slo import DEFAULT_AVAILABILITY, SLO, SLOReport
from .tracer import NullTracer, Span, Tracer
from .export import (
    metrics_jsonl,
    parse_prometheus_text,
    prometheus_text,
    write_metrics,
)
from .validate import (
    validate_chrome_trace,
    validate_file,
    validate_jsonl,
    validate_prometheus,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_AVAILABILITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "P2Quantile",
    "NullTracer",
    "Span",
    "Tracer",
    "SLO",
    "SLOReport",
    "get_metrics",
    "get_tracer",
    "set_metrics",
    "set_tracer",
    "use_metrics",
    "use_tracer",
    "metrics_jsonl",
    "parse_prometheus_text",
    "prometheus_text",
    "write_metrics",
    "validate_chrome_trace",
    "validate_file",
    "validate_jsonl",
    "validate_prometheus",
]
