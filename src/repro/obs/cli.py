"""``python -m repro obs`` — validate and summarize observability artifacts.

Examples::

    # validate a trace + metrics pair a serve run wrote
    python -m repro serve --num-requests 200 \
        --trace-out t.json --metrics-out m.prom
    python -m repro obs validate t.json m.prom

    # human-readable view of an exported metrics file
    python -m repro obs summarize m.prom
    python -m repro obs summarize m.jsonl

``validate`` exits 0 only when every file passes its structural
validator (Chrome trace-event schema, Prometheus text exposition, or
JSONL — see :mod:`repro.obs.validate`); CI pipes every smoke artifact
through it.  ``summarize`` renders a metrics file (either export format)
as the repo's standard table.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .export import parse_prometheus_text
from .validate import validate_file

__all__ = ["add_obs_parser", "run_obs", "main"]


def add_obs_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``obs`` subcommand on an existing subparser set."""
    p = subparsers.add_parser(
        "obs", help="observability artifacts: validate / summarize")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    val = obs_sub.add_parser(
        "validate",
        help="structurally validate trace/metrics files (exit 0 = all ok)")
    val.add_argument("files", nargs="+", metavar="FILE",
                     help="Chrome trace JSON, Prometheus text, or JSONL")

    summ = obs_sub.add_parser(
        "summarize", help="render an exported metrics file as a table")
    summ.add_argument("file", metavar="FILE",
                      help="metrics file (.prom/.txt or .jsonl)")
    return p


def _cmd_validate(paths: List[str]) -> int:
    failures = 0
    for raw in paths:
        kind, problems = validate_file(raw)
        if problems:
            failures += 1
            print(f"{raw}: INVALID ({kind})")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{raw}: ok ({kind})")
    if failures:
        print(f"{failures} of {len(paths)} file(s) failed validation",
              file=sys.stderr)
        return 1
    return 0


def _rows_from_prometheus(text: str) -> List[dict]:
    rows = []
    for name, family in sorted(parse_prometheus_text(text).items()):
        if family["type"] == "histogram":
            count = sum(v for s, _, v in family["samples"]
                        if s == f"{name}_count")
            total = sum(v for s, _, v in family["samples"]
                        if s == f"{name}_sum")
            mean = total / count if count else float("nan")
            rows.append({"metric": name, "type": "histogram",
                         "value": f"count={count:g} mean={mean:.4g}"})
        else:
            for sample_name, labels, value in family["samples"]:
                label = "".join(f'{{{k}="{v}"}}'
                                for k, v in sorted(labels.items()))
                rows.append({"metric": sample_name + label,
                             "type": family["type"], "value": f"{value:g}"})
    return rows


def _rows_from_jsonl(text: str) -> List[dict]:
    rows = []
    for line in text.splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        if payload.get("type") == "histogram":
            quantiles = payload.get("quantiles") or {}
            parts = [f"count={payload.get('count')}"]
            parts += [f"{k}={v:.4g}" for k, v in sorted(quantiles.items())
                      if isinstance(v, (int, float))]
            value = " ".join(parts)
        else:
            value = f"{payload.get('value')}"
        rows.append({"metric": payload.get("name", "?"),
                     "type": payload.get("type", "?"), "value": value})
    return rows


def _cmd_summarize(raw: str) -> int:
    from ..analysis.tables import Table

    path = Path(raw)
    kind, problems = validate_file(path)
    if problems:
        print(f"error: {raw} failed validation ({kind}): {problems[0]}",
              file=sys.stderr)
        return 2
    if kind == "chrome-trace":
        print(f"error: {raw} is a trace, not a metrics file; "
              "load it in Perfetto (https://ui.perfetto.dev)",
              file=sys.stderr)
        return 2
    text = path.read_text()
    rows = (_rows_from_jsonl(text) if kind == "jsonl"
            else _rows_from_prometheus(text))
    table = Table(["metric", "type", "value"],
                  title=f"metrics: {path.name} ({kind})")
    for row in rows:
        table.add_dict_row(row)
    print(table.render())
    return 0


def run_obs(args) -> int:
    """Dispatch a parsed ``obs`` namespace (wired from repro.analysis.cli)."""
    if args.obs_command == "validate":
        return _cmd_validate(args.files)
    if args.obs_command == "summarize":
        return _cmd_summarize(args.file)
    raise ValueError(f"unknown obs command {args.obs_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.obs.cli``)."""
    parser = argparse.ArgumentParser(prog="python -m repro.obs.cli")
    sub = parser.add_subparsers(dest="command", required=True)
    add_obs_parser(sub)
    return run_obs(parser.parse_args(argv))


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
