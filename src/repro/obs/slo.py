"""SLO definitions and attainment evaluation.

An :class:`SLO` names two operator targets:

- ``p99_ms`` — the end-to-end p99 latency ceiling (simulated ms for the
  serving replays);
- ``availability`` — the minimum fraction of offered requests that must
  complete (shed requests count against it; the serving engine's bounded
  queue rejects under overload).

:meth:`SLO.evaluate` takes the *observed* numbers (from a
:class:`~repro.serve.telemetry.TelemetryCollector`, or from a registry
:class:`~repro.obs.metrics.Histogram` via :meth:`SLO.evaluate_histogram`
when per-request records were never retained) and returns an
:class:`SLOReport` with per-target verdicts and the overall attainment.
Either target may be ``None`` (not enforced); an SLO with no targets is
vacuously attained.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["SLO", "SLOReport", "DEFAULT_AVAILABILITY"]

# Default availability target used by the serve CLI when only a latency
# target is derived: at most 1% of offered traffic shed.
DEFAULT_AVAILABILITY = 0.99


@dataclass(frozen=True)
class SLOReport:
    """Attainment of one SLO against one run's observations."""

    name: str
    p99_target_ms: Optional[float]
    p99_observed_ms: Optional[float]
    p99_attained: Optional[bool]
    availability_target: Optional[float]
    availability_observed: Optional[float]
    availability_attained: Optional[bool]

    @property
    def attained(self) -> bool:
        """True when every *enforced* target is met (an unmeasurable
        observation — NaN/None — counts as a miss, never a silent pass)."""
        verdicts = [v for v in (self.p99_attained,
                                self.availability_attained)
                    if v is not None]
        return all(verdicts) if verdicts else True

    def as_dict(self) -> Dict[str, Optional[float]]:
        """Flat JSON-safe dict (bools as 0.0/1.0, NaN as None) for the
        serve CLI summary and A/B rows."""
        def scrub(value):
            if value is None:
                return None
            if isinstance(value, bool):
                return 1.0 if value else 0.0
            value = float(value)
            return None if math.isnan(value) else value

        return {
            "slo_name": self.name,
            "slo_p99_target_ms": scrub(self.p99_target_ms),
            "slo_p99_observed_ms": scrub(self.p99_observed_ms),
            "slo_p99_attained": scrub(self.p99_attained),
            "slo_availability_target": scrub(self.availability_target),
            "slo_availability_observed": scrub(self.availability_observed),
            "slo_availability_attained": scrub(self.availability_attained),
            "slo_attained": scrub(self.attained),
        }


@dataclass(frozen=True)
class SLO:
    """A named pair of serving targets; ``None`` disables a target."""

    p99_ms: Optional[float] = None
    availability: Optional[float] = None
    name: str = "default"

    def __post_init__(self):
        if self.p99_ms is not None and self.p99_ms <= 0:
            raise ValueError("p99_ms target must be > 0")
        if self.availability is not None \
                and not 0.0 < self.availability <= 1.0:
            raise ValueError("availability target must be in (0, 1]")

    def evaluate(self, p99_ms: Optional[float] = None,
                 availability: Optional[float] = None) -> SLOReport:
        """Attainment against observed p99 / availability numbers.

        An enforced target with a missing or NaN observation is a miss:
        "we could not measure it" must never read as "we met it".
        """
        def verdict(target, observed, meet) -> Optional[bool]:
            if target is None:
                return None
            if observed is None or math.isnan(observed):
                return False
            return meet(observed, target)

        return SLOReport(
            name=self.name,
            p99_target_ms=self.p99_ms,
            p99_observed_ms=p99_ms,
            p99_attained=verdict(self.p99_ms, p99_ms,
                                 lambda obs, tgt: obs <= tgt),
            availability_target=self.availability,
            availability_observed=availability,
            availability_attained=verdict(self.availability, availability,
                                          lambda obs, tgt: obs >= tgt),
        )

    def evaluate_histogram(self, histogram,
                           availability: Optional[float] = None
                           ) -> SLOReport:
        """Attainment from a :class:`~repro.obs.metrics.Histogram`'s
        streaming p99 — the record-free path for huge replays."""
        return self.evaluate(p99_ms=histogram.quantile(0.99),
                             availability=availability)
