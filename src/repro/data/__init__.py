"""repro.data — deterministic synthetic datasets (the ImageNet stand-in).

See DESIGN.md section 2 for why a procedural texture task preserves the
accuracy *rankings* that the paper's ImageNet experiments measure.
"""

from .synthetic import (
    SyntheticImageConfig,
    SyntheticImageDataset,
    make_synthetic_classification,
)

__all__ = [
    "SyntheticImageConfig",
    "SyntheticImageDataset",
    "make_synthetic_classification",
]
