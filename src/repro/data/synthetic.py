"""Deterministic synthetic image datasets — the offline ImageNet stand-in.

The paper's accuracy numbers come from ImageNet, which is unavailable here.
Per the substitution rule (DESIGN.md section 2) we generate a *learnable*
classification task that preserves what the experiments actually measure:
the accuracy RANKING across configurations (FP32 > epitome FP32 > low-bit
quantized; epitome-aware quantization > naive quantization; epitome >
aggressive pruning at matched compression).

Each class is a procedural texture: a class-specific mixture of oriented
sinusoidal gratings and a Gaussian colour blob, perturbed per-sample by
random phase, shift, amplitude jitter and additive noise.  Difficulty is
controlled by ``noise`` and ``phase_jitter``; at the defaults a ResNet-20
reaches high-90s train / low-90s validation accuracy in a few epochs, leaving
visible head-room for quantization-induced degradation — the regime the
paper's tables live in.

Everything is seeded: identical arguments produce bit-identical datasets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn.data import ArrayDataset

__all__ = ["SyntheticImageConfig", "SyntheticImageDataset", "make_synthetic_classification"]


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of the procedural texture task."""

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    gratings_per_class: int = 3
    noise: float = 0.35
    phase_jitter: float = 1.0
    amplitude_jitter: float = 0.25
    seed: int = 1234


class SyntheticImageDataset(ArrayDataset):
    """Materialised synthetic dataset with ``images (N, C, H, W)`` float32.

    Parameters
    ----------
    num_samples:
        Total samples, distributed uniformly over classes.
    config:
        Task definition; the *class prototypes* are derived from
        ``config.seed`` so train and validation splits of the same task must
        share a config.
    split_seed:
        Seed for the per-sample randomness (phase, jitter, noise); use
        different values for train and validation.
    """

    def __init__(self, num_samples: int, config: SyntheticImageConfig,
                 split_seed: int = 0):
        self.config = config
        proto_rng = np.random.default_rng(config.seed)
        prototypes = _class_prototypes(config, proto_rng)
        sample_rng = np.random.default_rng((config.seed, split_seed))
        images, labels = _render_samples(num_samples, config, prototypes, sample_rng)
        super().__init__(images, labels)


def _class_prototypes(config: SyntheticImageConfig,
                      rng: np.random.Generator) -> dict:
    """Draw per-class grating banks and colour blobs."""
    k = config.num_classes
    g = config.gratings_per_class
    return {
        # orientation in radians, spatial frequency in cycles/image, weight
        "theta": rng.uniform(0.0, math.pi, size=(k, g)),
        "freq": rng.uniform(2.0, 6.0, size=(k, g)),
        "weight": rng.uniform(0.5, 1.0, size=(k, g)),
        # colour response of each channel to each grating
        "color": rng.uniform(-1.0, 1.0, size=(k, g, config.channels)),
        # blob centre (relative coords) and width
        "blob_xy": rng.uniform(0.25, 0.75, size=(k, 2)),
        "blob_sigma": rng.uniform(0.15, 0.3, size=(k,)),
        "blob_color": rng.uniform(-1.0, 1.0, size=(k, config.channels)),
    }


def _render_samples(num_samples: int, config: SyntheticImageConfig,
                    proto: dict, rng: np.random.Generator
                    ) -> Tuple[np.ndarray, np.ndarray]:
    size = config.image_size
    coords = (np.arange(size) + 0.5) / size
    yy, xx = np.meshgrid(coords, coords, indexing="ij")

    labels = np.arange(num_samples) % config.num_classes
    rng.shuffle(labels)
    images = np.empty((num_samples, config.channels, size, size), dtype=np.float32)

    for i, label in enumerate(labels):
        img = np.zeros((config.channels, size, size), dtype=np.float64)
        for j in range(config.gratings_per_class):
            theta = proto["theta"][label, j]
            freq = proto["freq"][label, j]
            phase = rng.uniform(0.0, 2.0 * math.pi) * config.phase_jitter
            amp = proto["weight"][label, j] * (
                1.0 + config.amplitude_jitter * rng.standard_normal())
            wave = np.sin(
                2.0 * math.pi * freq * (xx * math.cos(theta) + yy * math.sin(theta))
                + phase)
            for c in range(config.channels):
                img[c] += amp * proto["color"][label, j, c] * wave
        # class-specific colour blob with a small random shift
        bx, by = proto["blob_xy"][label] + rng.uniform(-0.08, 0.08, size=2)
        sigma = proto["blob_sigma"][label]
        blob = np.exp(-((xx - bx) ** 2 + (yy - by) ** 2) / (2.0 * sigma ** 2))
        for c in range(config.channels):
            img[c] += proto["blob_color"][label, c] * blob
        img += config.noise * rng.standard_normal(img.shape)
        images[i] = img.astype(np.float32)

    # normalise the whole dataset to zero mean / unit variance per channel
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True) + 1e-8
    images = (images - mean) / std
    return images, labels.astype(np.int64)


def make_synthetic_classification(
        num_train: int = 2000, num_val: int = 500,
        num_classes: int = 10, image_size: int = 32,
        noise: float = 0.35, seed: int = 1234,
        ) -> Tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Build matched train/validation splits of the synthetic task.

    Returns ``(train_dataset, val_dataset)`` sharing class prototypes but
    with independent per-sample randomness.
    """
    config = SyntheticImageConfig(num_classes=num_classes,
                                  image_size=image_size, noise=noise,
                                  seed=seed)
    train = SyntheticImageDataset(num_train, config, split_seed=1)
    val = SyntheticImageDataset(num_val, config, split_seed=2)
    return train, val
