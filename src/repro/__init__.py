"""EPIM reproduction — Efficient Processing-In-Memory Accelerators based on Epitome.

Full from-scratch reproduction of Wang et al., DAC 2024 (arXiv:2311.07620):

- :mod:`repro.nn` — numpy autograd deep-learning framework (PyTorch stand-in),
- :mod:`repro.models` — ResNet family (runnable nets + exact layer-shape specs),
- :mod:`repro.data` — deterministic synthetic datasets (ImageNet stand-in),
- :mod:`repro.pim` — MNSIM-style behaviour-level PIM simulator,
- :mod:`repro.quant` — quantization + HAWQ-style mixed precision,
- :mod:`repro.core` — the paper's contribution: epitome operator, designer,
  channel wrapping, epitome-aware quantization, evolutionary layer-wise design,
- :mod:`repro.search` — vectorized multi-objective design-space search
  (Algorithm 1, Pareto front, parallel restarts),
- :mod:`repro.baselines` — PIM-Prune and element pruning baselines,
- :mod:`repro.analysis` — experiment runners regenerating every table/figure,
- :mod:`repro.serve` — batched multi-chip inference serving runtime,
- :mod:`repro.bench` — unified benchmark harness + perf-trajectory tooling.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "data",
    "pim",
    "quant",
    "core",
    "search",
    "baselines",
    "analysis",
    "serve",
    "bench",
]
