"""Scenario contract: seeded, reproducible trace generation.

A :class:`Scenario` turns ``(num_requests, rate_rps, seed)`` into a
request trace.  Profile scenarios describe traffic as a *rate
multiplier* ``m(u)`` over a nominal span (``u`` in ``[0, 1)``, tiled
periodically if the arrivals run long); generation inverts the
cumulative intensity, the standard construction for an inhomogeneous
Poisson process:

1. normalize the multiplier grid to mean 1, so the scenario's declared
   mean rate *is* ``rate_rps`` by construction;
2. draw ``n`` unit-rate exponential gaps from an explicit
   ``np.random.default_rng(seed)`` (never global numpy state) and cumsum
   them into unit-rate Poisson event times;
3. map those times through the inverse cumulative intensity
   ``Lambda^-1`` (piecewise-linear on the grid), yielding arrival
   times that are monotone by construction because the multiplier is
   floored strictly above zero.

Everything a scenario randomizes — arrival gaps, MMPP state dwells,
multi-model tags — flows from that single seeded generator, so the same
``(scenario, n, rate, seed)`` tuple always produces an identical trace
(the CI scenario matrix asserts this end to end).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..trace import Request, TraceArrays, arrays_from_requests

__all__ = ["Scenario", "ProfileScenario", "PROFILE_GRID", "RATE_FLOOR"]

# Resolution of the piecewise-linear rate profile over one span.
PROFILE_GRID = 2048

# Multipliers are floored here so the cumulative intensity is strictly
# increasing — the inversion then cannot produce backwards arrivals.
RATE_FLOOR = 0.02


class Scenario:
    """A named, seeded workload generator."""

    def __init__(self, name: str, description: str):
        if not name:
            raise ValueError("scenario name must be non-empty")
        self.name = name
        self.description = description

    def to_trace(self, num_requests: int, rate_rps: float, seed: int = 0,
                 start_ms: float = 0.0) -> List[Request]:
        """Generate a reproducible trace at a mean offered load of
        ``rate_rps`` requests/second."""
        raise NotImplementedError

    def to_trace_arrays(self, num_requests: int, rate_rps: float,
                        seed: int = 0, start_ms: float = 0.0) -> TraceArrays:
        """Columnar form of the same trace (no per-request objects).

        The default converts the object trace, so every registered
        scenario supports array output; :class:`ProfileScenario`
        overrides it to build the columns natively and derives
        ``to_trace`` *from them* — the array path is the source of
        truth, not a parallel implementation that could drift.
        """
        return arrays_from_requests(
            self.to_trace(num_requests, rate_rps, seed=seed,
                          start_ms=start_ms))

    def describe(self) -> str:
        return f"{self.name}: {self.description}"

    def __repr__(self) -> str:            # pragma: no cover - debug aid
        return f"<Scenario {self.name!r}>"


class ProfileScenario(Scenario):
    """A scenario defined by a rate-multiplier profile over one span.

    Subclasses either override :meth:`profile` (a deterministic shape —
    diurnal curve, flash crowd) or :meth:`multiplier_grid` directly when
    the profile itself is random (MMPP state dwells).  The grid is
    always re-normalized to mean 1 before inversion, so the *declared*
    mean rate is honored no matter how wild the shape is.
    """

    def profile(self, u: np.ndarray) -> np.ndarray:
        """Rate multiplier at span fractions ``u`` (shape-preserving)."""
        return np.ones_like(u)

    def multiplier_grid(self, rng: np.random.Generator) -> np.ndarray:
        """The normalized multiplier sampled on :data:`PROFILE_GRID`
        midpoints.  ``rng`` is unused for deterministic profiles."""
        u = (np.arange(PROFILE_GRID) + 0.5) / PROFILE_GRID
        return self._normalize(np.asarray(self.profile(u), dtype=float))

    @staticmethod
    def _normalize(multiplier: np.ndarray) -> np.ndarray:
        multiplier = np.maximum(multiplier, RATE_FLOOR)
        return multiplier / multiplier.mean()

    # ------------------------------------------------------------------
    def annotate(self, num_requests: int, rng: np.random.Generator
                 ) -> Tuple[np.ndarray, Optional[List[str]]]:
        """Per-request ``(priorities, models)`` labels.

        The base profile serves one anonymous model at priority 0; the
        multi-model mix overrides this to tag each request.  Drawn from
        the same ``rng`` as the arrivals, *after* them, so labels never
        perturb arrival reproducibility.
        """
        return np.zeros(num_requests, dtype=int), None

    def to_trace_arrays(self, num_requests: int, rate_rps: float,
                        seed: int = 0, start_ms: float = 0.0) -> TraceArrays:
        """Invert the cumulative intensity straight into columns.

        This is the native generation path: ``to_trace`` materializes
        these arrays, so the object and column forms of one
        ``(scenario, n, rate, seed)`` cell are identical floats by
        construction (the property tests assert it anyway).
        """
        if num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if rate_rps <= 0:
            raise ValueError("rate_rps must be > 0")
        rng = np.random.default_rng(seed)
        multiplier = self.multiplier_grid(rng)

        # Unit-rate Poisson event times; each tiled span absorbs an
        # expected num_requests of them, so cover ceil(tau_max / n)
        # spans (+1 so interpolation never clamps at the grid edge).
        tau = np.cumsum(rng.exponential(1.0, size=num_requests))
        spans = int(np.ceil(tau[-1] / num_requests)) + 1
        span_ms = num_requests / rate_rps * 1000.0
        tiled = np.tile(multiplier, spans)
        # Cumulative expected arrivals at each grid boundary: one grid
        # cell contributes (num_requests / PROFILE_GRID) * m arrivals.
        cum = np.concatenate(
            [[0.0], np.cumsum(tiled) * (num_requests / PROFILE_GRID)])
        t_grid = np.linspace(0.0, spans * span_ms, tiled.size + 1)
        arrivals = start_ms + np.interp(tau, cum, t_grid)

        priorities, models = self.annotate(num_requests, rng)
        return TraceArrays(
            arrival_ms=arrivals,
            request_id=np.arange(num_requests, dtype=np.int64),
            priority=np.asarray(priorities, dtype=np.int64),
            model=tuple(models) if models is not None else None)

    def to_trace(self, num_requests: int, rate_rps: float, seed: int = 0,
                 start_ms: float = 0.0) -> List[Request]:
        return self.to_trace_arrays(num_requests, rate_rps, seed=seed,
                                    start_ms=start_ms).materialize()
