"""repro.serve.scenarios — named load scenarios + fault injection.

The serving stack's original load model was a single homogeneous Poisson
trace.  Real PIM benchmarking work (Gomez-Luna et al., arXiv:2105.03814,
arXiv:2110.01709) stresses that workload *diversity*, not peak numbers,
characterizes a system — so this package provides:

- :mod:`~repro.serve.scenarios.base` — the :class:`Scenario` contract:
  seeded, reproducible trace generation via inhomogeneous-Poisson
  inversion of a rate profile (``to_trace(n, rate, seed)``);
- :mod:`~repro.serve.scenarios.catalog` — the built-in registry entries:
  ``steady-poisson``, ``diurnal``, ``flash-crowd``, ``bursty-mmpp``,
  ``multi-model-mix``;
- :mod:`~repro.serve.scenarios.registry` — name -> scenario lookup
  (``repro serve scenarios list`` renders it);
- :mod:`~repro.serve.scenarios.faults` — the fault-spec grammar
  (``chip-kill@t=0.5,straggler@t=0.2:factor=3``) and the timed
  :class:`FaultPlan` the engine replays against the fleet.

See docs/scenarios.md for the taxonomy, the fault grammar, and the
failover semantics the engine implements.
"""

from .base import ProfileScenario, Scenario
from .catalog import BUILTIN_SCENARIOS
from .faults import (
    DEFAULT_STRAGGLER_FACTOR,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpecError,
    ResolvedFault,
    parse_faults,
)
from .registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_table,
)

__all__ = [
    "Scenario",
    "ProfileScenario",
    "BUILTIN_SCENARIOS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_table",
    "FAULT_KINDS",
    "DEFAULT_STRAGGLER_FACTOR",
    "FaultSpecError",
    "FaultEvent",
    "ResolvedFault",
    "FaultPlan",
    "parse_faults",
]
