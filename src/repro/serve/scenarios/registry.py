"""Scenario registry: name -> :class:`~repro.serve.scenarios.base.Scenario`.

The CLI resolves ``--scenario NAME`` here and ``repro serve scenarios
list`` renders the table.  Registration is open — downstream code (or a
test) can :func:`register_scenario` its own instances; the built-ins in
:mod:`~repro.serve.scenarios.catalog` self-register on package import.
"""

from __future__ import annotations

from typing import Dict, List

from .base import Scenario

__all__ = ["register_scenario", "get_scenario", "list_scenarios",
           "scenario_table"]

_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register a scenario under its name; re-registering an existing
    name requires ``replace=True`` (silent shadowing would make
    ``--scenario`` runs irreproducible across imports)."""
    if not isinstance(scenario, Scenario):
        raise TypeError(f"expected a Scenario, got "
                        f"{type(scenario).__name__}")
    if scenario.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {scenario.name!r} is already "
                         "registered (pass replace=True to override)")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, failing with the available choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(list_scenarios()) or '(none)'}") from None


def list_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def scenario_table() -> str:
    """The ``repro serve scenarios list`` rendering."""
    from ...analysis.tables import Table

    table = Table(["scenario", "description"],
                  title="registered load scenarios "
                        "(repro serve --scenario NAME)")
    for name in list_scenarios():
        table.add_row(name, _REGISTRY[name].description)
    return table.render()
