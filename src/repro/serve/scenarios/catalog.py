"""The built-in scenario catalog (registered on import).

Shapes are chosen so the default serve run (500 requests at 0.7x fleet
capacity) shows each scenario's signature behavior: the diurnal curve
breathes, the flash crowd sheds against the bounded queue, the MMPP
bursts stress batch formation, and the multi-model mix exercises the
priority scheduler.  All of them honor their declared mean rate — the
profile grid is normalized to mean 1 before inversion (see
:mod:`~repro.serve.scenarios.base`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .base import PROFILE_GRID, ProfileScenario
from .registry import register_scenario

__all__ = [
    "BUILTIN_SCENARIOS",
    "SteadyPoisson",
    "Diurnal",
    "FlashCrowd",
    "BurstyMMPP",
    "MultiModelMix",
]


class SteadyPoisson(ProfileScenario):
    """Homogeneous Poisson arrivals — the classic open-loop baseline."""

    def __init__(self):
        super().__init__(
            "steady-poisson",
            "homogeneous Poisson arrivals at the declared rate")


class Diurnal(ProfileScenario):
    """A day-curve: sinusoidal load swinging around the mean.

    One full period spans the nominal trace; the trough bottoms out at
    ``1 - amplitude`` and the peak reaches ``1 + amplitude`` of the mean
    rate — the shape capacity planners provision against.
    """

    def __init__(self, amplitude: float = 0.65):
        if not 0.0 < amplitude < 1.0:
            raise ValueError("amplitude must be in (0, 1)")
        self.amplitude = amplitude
        super().__init__(
            "diurnal",
            f"sinusoidal day-curve, peak {1 + amplitude:.2f}x / trough "
            f"{1 - amplitude:.2f}x the mean rate")

    def profile(self, u: np.ndarray) -> np.ndarray:
        # Peak at 1/4 span ("midday"), trough at 3/4 span.
        return 1.0 + self.amplitude * np.sin(2.0 * np.pi * u)


class FlashCrowd(ProfileScenario):
    """Baseline traffic with a sudden spike — the thundering herd.

    Inside ``window`` (fractions of the span) the rate jumps to ``peak``
    times the baseline; normalization then folds the spike into the
    declared mean, so the spike's *absolute* rate exceeds the mean by
    ``peak / raw_mean``.  With the defaults the spike offers ~4x the
    mean rate for 16% of the span — enough to drive a 0.7-loaded fleet
    deep into load shedding, which is the point: availability under a
    flash crowd is what the bounded queue exists to defend.
    """

    def __init__(self, peak: float = 16.0,
                 window: Tuple[float, float] = (0.42, 0.58)):
        if peak <= 1.0:
            raise ValueError("peak must be > 1")
        lo, hi = window
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("window must satisfy 0 <= lo < hi <= 1")
        self.peak = peak
        self.window = (lo, hi)
        super().__init__(
            "flash-crowd",
            f"{peak:.0f}x spike over span fraction [{lo:.2f}, {hi:.2f})")

    def profile(self, u: np.ndarray) -> np.ndarray:
        lo, hi = self.window
        return np.where((u >= lo) & (u < hi), self.peak, 1.0)


class BurstyMMPP(ProfileScenario):
    """Markov-modulated Poisson process: two-state bursty arrivals.

    The rate alternates between a quiet and a burst state with
    exponentially distributed dwell times (mean ``span / mean_switches``
    each).  The realized piecewise profile is random per seed but
    normalized to mean 1 after sampling, so the declared rate still
    holds for every draw.
    """

    def __init__(self, quiet: float = 0.35, burst: float = 3.5,
                 mean_switches: int = 12):
        if not 0.0 < quiet < burst:
            raise ValueError("need 0 < quiet < burst")
        if mean_switches < 2:
            raise ValueError("mean_switches must be >= 2")
        self.quiet = quiet
        self.burst = burst
        self.mean_switches = mean_switches
        super().__init__(
            "bursty-mmpp",
            f"2-state MMPP, {quiet:.2f}x/{burst:.2f}x rates, "
            f"~{mean_switches} switches per span")

    def multiplier_grid(self, rng: np.random.Generator) -> np.ndarray:
        grid = np.empty(PROFILE_GRID)
        mean_dwell = PROFILE_GRID / self.mean_switches
        state = int(rng.integers(0, 2))
        pos = 0
        while pos < PROFILE_GRID:
            dwell = max(1, int(round(rng.exponential(mean_dwell))))
            level = self.burst if state else self.quiet
            grid[pos:pos + dwell] = level
            pos += dwell
            state = 1 - state
        return self._normalize(grid)


class MultiModelMix(ProfileScenario):
    """Steady arrivals serving a weighted mix of model classes.

    Each request is tagged with a model drawn from ``mix`` and the
    priority of its class (interactive small models outrank batch-sized
    ones), exercising the priority scheduler and the per-model
    accounting of the multi-tenant roadmap item.  Arrivals themselves
    are homogeneous — the diversity here is *what* is asked for, not
    when.
    """

    DEFAULT_MIX: Sequence[Tuple[str, float, int]] = (
        ("resnet18", 0.60, 1),      # interactive: small + urgent
        ("resnet34", 0.25, 0),
        ("resnet50", 0.15, 0),      # batch: big + patient
    )

    def __init__(self, mix: Optional[Sequence[Tuple[str, float, int]]] = None):
        mix = tuple(mix) if mix is not None else tuple(self.DEFAULT_MIX)
        if not mix:
            raise ValueError("mix must be non-empty")
        weights = np.array([w for _, w, _ in mix], dtype=float)
        if (weights <= 0).any():
            raise ValueError("mix weights must be > 0")
        self.mix = mix
        self._weights = weights / weights.sum()
        share = ", ".join(f"{name} {w:.0%}"
                          for (name, _, _), w in zip(mix, self._weights))
        super().__init__("multi-model-mix",
                         f"steady arrivals over a model mix ({share})")

    def annotate(self, num_requests: int, rng: np.random.Generator
                 ) -> Tuple[np.ndarray, Optional[List[str]]]:
        choice = rng.choice(len(self.mix), size=num_requests,
                            p=self._weights)
        priorities = np.array([self.mix[c][2] for c in choice], dtype=int)
        models = [self.mix[c][0] for c in choice]
        return priorities, models


BUILTIN_SCENARIOS = (
    SteadyPoisson(),
    Diurnal(),
    FlashCrowd(),
    BurstyMMPP(),
    MultiModelMix(),
)

for _scenario in BUILTIN_SCENARIOS:
    register_scenario(_scenario)
