"""Fault injection: timed adverse events against the serving fleet.

A fault spec is a comma-separated list of events::

    chip-kill@t=0.5
    straggler@t=0.2:chip=1:factor=3:until=0.8
    cache-wipe@t=0.4:stall_ms=25
    chip-kill@t=0.5,chip-kill@t=0.7:chip=1

Grammar: ``kind@t=WHEN[:key=value]...``.  ``t`` is a fraction of the
trace's arrival span (0 = first arrival, 1 = last); ``t_ms`` pins an
absolute simulated time instead.  Supported kinds and options:

- ``chip-kill`` — the chip (and with it the whole replica group holding
  it) fails permanently at ``t``.  Options: ``chip`` (default 0).
- ``straggler`` — the chip's replica group degrades: service times are
  multiplied by ``factor`` (default 4.0) from ``t`` until ``until``
  (fraction; default: the rest of the run).  Options: ``chip``,
  ``factor``, ``until`` / ``until_ms``.
- ``cache-wipe`` — the compile/grid caches are wiped; every replica's
  next dispatch pays a recompile stall of ``stall_ms`` (default: 20x
  the deployment's fill latency, the engine derives it).

:func:`parse_faults` turns the spec into a :class:`FaultPlan`;
:meth:`FaultPlan.resolve` maps fractions onto a concrete trace span and
returns time-ordered :class:`ResolvedFault` events the engine replays
(see docs/scenarios.md for the failover semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "DEFAULT_STRAGGLER_FACTOR",
    "FaultSpecError",
    "FaultEvent",
    "ResolvedFault",
    "FaultPlan",
    "parse_faults",
]

FAULT_KINDS = ("chip-kill", "straggler", "cache-wipe")

DEFAULT_STRAGGLER_FACTOR = 4.0

_GRAMMAR = "kind@t=FRAC[:chip=K][:factor=F][:until=FRAC][:stall_ms=MS]"


class FaultSpecError(ValueError):
    """A fault spec that cannot be parsed or validated."""


@dataclass(frozen=True)
class FaultEvent:
    """One declared fault, times still relative to the trace span.

    Exactly one of ``at`` (span fraction) / ``at_ms`` (absolute
    simulated ms) is set; same for ``until`` / ``until_ms`` on
    stragglers.
    """

    kind: str
    at: Optional[float] = None
    at_ms: Optional[float] = None
    chip: int = 0
    factor: float = DEFAULT_STRAGGLER_FACTOR
    until: Optional[float] = None
    until_ms: Optional[float] = None
    stall_ms: Optional[float] = None

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; one of "
                f"{', '.join(FAULT_KINDS)}")
        if (self.at is None) == (self.at_ms is None):
            raise FaultSpecError(
                f"{self.kind}: exactly one of t / t_ms must be given")
        if self.at is not None and self.at < 0:
            raise FaultSpecError(f"{self.kind}: t must be >= 0")
        if self.at_ms is not None and self.at_ms < 0:
            raise FaultSpecError(f"{self.kind}: t_ms must be >= 0")
        if self.chip < 0:
            raise FaultSpecError(f"{self.kind}: chip must be >= 0")
        if self.factor <= 1.0 and self.kind == "straggler":
            raise FaultSpecError(
                "straggler: factor must be > 1 (a factor <= 1 is not "
                "a degradation)")
        if self.until is not None and self.until_ms is not None:
            raise FaultSpecError(
                "straggler: until and until_ms are exclusive")
        # An until that cannot come after t is rejected at declaration
        # time when both share a base; mixed bases (until_ms against a
        # fractional t) are only comparable after resolve() pins them.
        if self.until is not None and self.at is not None \
                and self.until <= self.at:
            raise FaultSpecError(
                f"straggler: until ({self.until:g}) must come after "
                f"t ({self.at:g})")
        if self.until_ms is not None and self.at_ms is not None \
                and self.until_ms <= self.at_ms:
            raise FaultSpecError(
                f"straggler: until_ms ({self.until_ms:g}) must come "
                f"after t_ms ({self.at_ms:g})")
        if self.stall_ms is not None and self.stall_ms <= 0:
            raise FaultSpecError("cache-wipe: stall_ms must be > 0")

    def window(self) -> Optional[Tuple[str, float, float]]:
        """The straggler's ``(base, start, end)`` degradation window when
        start and end live on the same base (``"frac"`` fractions or
        ``"ms"`` absolute); None for non-stragglers and mixed-base events
        (those are only comparable once :meth:`FaultPlan.resolve` pins
        them).  An open-ended window runs to +inf."""
        if self.kind != "straggler":
            return None
        if self.at is not None and self.until_ms is None:
            return ("frac", self.at,
                    self.until if self.until is not None else float("inf"))
        if self.at_ms is not None and self.until is None:
            return ("ms", self.at_ms, self.until_ms
                    if self.until_ms is not None else float("inf"))
        return None

    def describe(self) -> str:
        when = (f"t={self.at:g}" if self.at is not None
                else f"t_ms={self.at_ms:g}")
        extra = ""
        if self.kind == "chip-kill":
            extra = f" chip={self.chip}"
        elif self.kind == "straggler":
            ends = (f" until={self.until:g}" if self.until is not None
                    else (f" until_ms={self.until_ms:g}"
                          if self.until_ms is not None else ""))
            extra = f" chip={self.chip} factor={self.factor:g}{ends}"
        elif self.stall_ms is not None:
            extra = f" stall_ms={self.stall_ms:g}"
        return f"{self.kind}@{when}{extra}"


@dataclass(frozen=True)
class ResolvedFault:
    """A fault pinned to absolute simulated milliseconds."""

    kind: str
    at_ms: float
    chip: int
    factor: float
    until_ms: Optional[float]
    stall_ms: Optional[float]


class FaultPlan:
    """An ordered set of declared faults, replayable onto any trace."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        # Overlapping straggler windows on one chip would silently
        # clobber each other's factor/until in the engine; reject them
        # here for same-base declarations (mixed fraction/ms pairs are
        # re-checked in resolve() once pinned to a trace span).
        by_chip: Dict[Tuple[int, str], List[Tuple[float, float,
                                                  FaultEvent]]] = {}
        for event in self.events:
            win = event.window()
            if win is not None:
                base, start, end = win
                by_chip.setdefault((event.chip, base), []).append(
                    (start, end, event))
        for (chip, _), windows in by_chip.items():
            windows.sort(key=lambda w: w[0])
            for (s1, e1, ev1), (s2, e2, ev2) in zip(windows, windows[1:]):
                if s2 < e1:
                    raise FaultSpecError(
                        f"overlapping straggler windows on chip {chip}: "
                        f"{ev1.describe()!r} is still active when "
                        f"{ev2.describe()!r} fires — the second would "
                        "silently clobber the first; stagger the windows "
                        "or use different chips")

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        # An empty plan still engages the engine's fault-aware path —
        # truthiness reflects "was a plan supplied", not event count.
        return True

    def __eq__(self, other) -> bool:
        return (isinstance(other, FaultPlan)
                and self.events == other.events)

    def resolve(self, span_start_ms: float, span_end_ms: float
                ) -> List[ResolvedFault]:
        """Pin fractional times onto ``[span_start_ms, span_end_ms]``
        and return the events sorted by firing time.

        Fractions above 1 land past the last arrival — legal (the tail
        of the run is still simulated time), so a plan can model a
        fault during drain.
        """
        span = max(0.0, span_end_ms - span_start_ms)
        resolved = []
        for event in self.events:
            at_ms = (event.at_ms if event.at_ms is not None
                     else span_start_ms + event.at * span)
            until_ms = event.until_ms
            if event.until is not None:
                until_ms = span_start_ms + event.until * span
            if until_ms is not None and until_ms <= at_ms:
                raise FaultSpecError(
                    f"{event.kind}: until ({until_ms:g} ms) must come "
                    f"after t ({at_ms:g} ms)")
            resolved.append(ResolvedFault(
                kind=event.kind, at_ms=at_ms, chip=event.chip,
                factor=event.factor, until_ms=until_ms,
                stall_ms=event.stall_ms))
        ordered = sorted(resolved, key=lambda f: f.at_ms)
        # Same overlap rule as __init__, now that every window is pinned
        # to absolute ms — this is what catches mixed-base declarations
        # (and fraction windows a degenerate span collapses together).
        last_end: Dict[int, Tuple[float, ResolvedFault]] = {}
        for fault in ordered:
            if fault.kind != "straggler":
                continue
            prev = last_end.get(fault.chip)
            if prev is not None and fault.at_ms < prev[0]:
                raise FaultSpecError(
                    f"overlapping straggler windows on chip {fault.chip}: "
                    f"one is still active at {fault.at_ms:g} ms when the "
                    "next fires — the second would silently clobber the "
                    "first; stagger the windows or use different chips")
            end = (fault.until_ms if fault.until_ms is not None
                   else float("inf"))
            if prev is None or end > prev[0]:
                last_end[fault.chip] = (end, fault)
        return ordered

    def describe(self) -> str:
        if not self.events:
            return "(no faults)"
        return ", ".join(event.describe() for event in self.events)


_FLOAT_KEYS = ("t", "t_ms", "factor", "until", "until_ms", "stall_ms")
_ALLOWED_KEYS = {
    "chip-kill": {"t", "t_ms", "chip"},
    "straggler": {"t", "t_ms", "chip", "factor", "until", "until_ms"},
    "cache-wipe": {"t", "t_ms", "stall_ms"},
}


def _parse_options(kind: str, parts: List[str], where: str) -> Dict:
    options: Dict = {}
    for part in parts:
        if "=" not in part:
            raise FaultSpecError(
                f"{where}: option {part!r} is not key=value "
                f"(grammar: {_GRAMMAR})")
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _ALLOWED_KEYS[kind]:
            raise FaultSpecError(
                f"{where}: {kind} does not take {key!r} (allowed: "
                f"{', '.join(sorted(_ALLOWED_KEYS[kind]))})")
        if key in options:
            raise FaultSpecError(f"{where}: duplicate option {key!r}")
        try:
            options[key] = (float(raw) if key in _FLOAT_KEYS
                            else int(raw))
        except ValueError:
            raise FaultSpecError(
                f"{where}: {key}={raw!r} is not a number") from None
    return options


def parse_faults(spec: str) -> FaultPlan:
    """Parse a fault spec string (see the module grammar) into a
    :class:`FaultPlan`; raises :class:`FaultSpecError` on any problem."""
    if not isinstance(spec, str) or not spec.strip():
        raise FaultSpecError(
            f"empty fault spec (grammar: {_GRAMMAR}, events separated "
            "by commas)")
    events = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise FaultSpecError("empty event in fault spec (stray comma?)")
        kind, sep, rest = chunk.partition("@")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; one of "
                f"{', '.join(FAULT_KINDS)}")
        if not sep or not rest:
            raise FaultSpecError(
                f"{chunk!r}: missing @t=... firing time "
                f"(grammar: {_GRAMMAR})")
        options = _parse_options(kind, rest.split(":"), chunk)
        if "t" not in options and "t_ms" not in options:
            raise FaultSpecError(
                f"{chunk!r}: an event needs t= or t_ms= "
                f"(grammar: {_GRAMMAR})")
        kwargs = {"kind": kind,
                  "at": options.get("t"),
                  "at_ms": options.get("t_ms")}
        if "chip" in options:
            kwargs["chip"] = options["chip"]
        if "factor" in options:
            kwargs["factor"] = options["factor"]
        if "until" in options:
            kwargs["until"] = options["until"]
        if "until_ms" in options:
            kwargs["until_ms"] = options["until_ms"]
        if "stall_ms" in options:
            kwargs["stall_ms"] = options["stall_ms"]
        events.append(FaultEvent(**kwargs))
    return FaultPlan(events)
