"""repro.serve — batched multi-chip inference serving on the EPIM simulator.

The serving layer turns one-shot ``simulate_network()`` calls into an
endpoint that answers request traffic:

- :mod:`repro.serve.trace` — request records + Poisson trace synthesis;
- :mod:`repro.serve.scheduler` — bounded-queue micro-batching (FIFO /
  priority, batch-size and window knobs);
- :mod:`repro.serve.sharding` — replica and layer-wise placement of a
  deployment across N chips, chosen for pipelined throughput under the
  per-chip tile budget;
- :mod:`repro.serve.cache` — LRU cache of compiled deployments keyed by
  (model spec, hardware config) fingerprints;
- :mod:`repro.serve.engine` — the discrete-event serving loop;
- :mod:`repro.serve.vectorized` — the whole-trace array replay engine
  (byte-identical summaries at web scale, docs/vectorized-replay.md);
- :mod:`repro.serve.deploy` — deploy ``repro search --json`` results:
  operating-point selection off a Pareto front (latency-opt / energy-opt /
  knee / index) and the A/B offered-load sweep;
- :mod:`repro.serve.scenarios` — named load scenarios (diurnal, flash
  crowd, bursty MMPP, multi-model mix) and the fault-injection layer
  (chip kills with replicated-shard failover, stragglers, cache wipes);
- :mod:`repro.serve.resilience` — adaptive admission control, failover
  retry budgets, per-replica circuit breakers, brownout down-shifts to
  a degraded Pareto point, and the seeded chaos harness;
- :mod:`repro.serve.telemetry` — latency percentiles, queue depth, chip
  utilization, rolling throughput, fault/failover accounting;
- :mod:`repro.serve.cli` — ``python -m repro serve`` trace replay.
"""

from .cache import (
    DeploymentCache,
    compile_deployment,
    deployment_key,
    hardware_fingerprint,
    spec_fingerprint,
)
from .engine import ENGINES, ServingConfig, ServingEngine
from .deploy import (
    AB_LOAD_FACTORS,
    LoadedSearchResult,
    OperatingPoint,
    SearchResultError,
    ab_offered_load_sweep,
    brownout_plan_from_search,
    engine_from_search,
    load_search_result,
    manifest_from_point,
    render_ab,
    report_from_point,
)
from .resilience import (
    AdmissionPolicy,
    BreakerPolicy,
    BrownoutPlan,
    BrownoutPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from .scenarios import (
    FaultPlan,
    Scenario,
    get_scenario,
    list_scenarios,
    parse_faults,
    register_scenario,
)
from .scheduler import Batch, MicroBatchScheduler, SchedulerConfig
from .sharding import (
    ChipShard,
    ShardPlan,
    partition_layers,
    plan_sharding,
    recommended_chips,
)
from .telemetry import RequestRecord, TelemetryCollector
from .trace import (
    Request,
    TraceArrays,
    arrays_from_requests,
    load_trace,
    save_trace,
    synthetic_trace,
    synthetic_trace_arrays,
)
from .vectorized import replay_vectorized

__all__ = [
    "Request",
    "TraceArrays",
    "arrays_from_requests",
    "synthetic_trace",
    "synthetic_trace_arrays",
    "replay_vectorized",
    "ENGINES",
    "save_trace",
    "load_trace",
    "SchedulerConfig",
    "Batch",
    "MicroBatchScheduler",
    "ChipShard",
    "ShardPlan",
    "plan_sharding",
    "partition_layers",
    "recommended_chips",
    "DeploymentCache",
    "compile_deployment",
    "deployment_key",
    "spec_fingerprint",
    "hardware_fingerprint",
    "RequestRecord",
    "TelemetryCollector",
    "ServingConfig",
    "ServingEngine",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "FaultPlan",
    "parse_faults",
    "AB_LOAD_FACTORS",
    "LoadedSearchResult",
    "OperatingPoint",
    "SearchResultError",
    "ab_offered_load_sweep",
    "brownout_plan_from_search",
    "engine_from_search",
    "load_search_result",
    "manifest_from_point",
    "render_ab",
    "report_from_point",
    "ResilienceConfig",
    "AdmissionPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "BrownoutPolicy",
    "BrownoutPlan",
]
