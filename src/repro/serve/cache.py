"""LRU cache of compiled deployments.

Running the epitome designer + crossbar mapping + performance model for a
network is the expensive part of bringing a model online; a serving tier
that hosts many models (or re-deploys the same model across hardware
variants) should pay it once per distinct (model spec, hardware config)
pair.  Keys are content fingerprints — a hash over every layer shape, the
epitome assignment and precision, plus every field of the
:class:`~repro.pim.config.HardwareConfig` — so logically identical deploys
hit regardless of object identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import OrderedDict
from typing import Callable, Dict, Optional

from ..core.designer import EpitomeAssignment, build_deployments
from ..models.specs import NetworkSpec
from ..obs.runtime import get_metrics
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import NetworkReport, simulate_network

__all__ = ["spec_fingerprint", "hardware_fingerprint", "deployment_key",
           "compile_deployment", "DeploymentCache"]


def compile_deployment(spec: NetworkSpec,
                       assignment: Optional[EpitomeAssignment] = None,
                       weight_bits: Optional[int] = None,
                       activation_bits: Optional[int] = None,
                       use_wrapping: bool = False,
                       config: HardwareConfig = DEFAULT_CONFIG,
                       lut: ComponentLUT = DEFAULT_LUT) -> NetworkReport:
    """The designer compile path: per-layer deployments + simulation.

    The single recipe behind both the cached (:meth:`DeploymentCache.deploy`)
    and uncached (:meth:`repro.serve.engine.ServingEngine.from_spec`)
    paths, so the two can never diverge.
    """
    deployments = build_deployments(
        spec, assignment, weight_bits=weight_bits,
        activation_bits=activation_bits,
        use_wrapping=use_wrapping, config=config)
    return simulate_network(deployments, config, lut)


def _digest(payload) -> str:
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def spec_fingerprint(spec: NetworkSpec) -> str:
    """Content hash of a network's layers — names and shapes, in order.

    Layer names are part of the identity: the cached
    :class:`~repro.pim.simulator.NetworkReport` embeds them, and epitome
    assignments are keyed by them.  Independent of object identity: two
    separately-built specs with the same layers hash alike."""
    payload = [[layer.name, layer.kind, layer.in_channels,
                layer.out_channels, list(layer.kernel_size), layer.stride,
                list(layer.in_size), list(layer.out_size)]
               for layer in spec]
    return _digest(payload)


def hardware_fingerprint(config: HardwareConfig) -> str:
    """Content hash over every HardwareConfig field."""
    return _digest(dataclasses.asdict(config))


def deployment_key(spec: NetworkSpec,
                   config: HardwareConfig = DEFAULT_CONFIG,
                   assignment: Optional[EpitomeAssignment] = None,
                   weight_bits: Optional[int] = None,
                   activation_bits: Optional[int] = None,
                   use_wrapping: bool = False,
                   lut: ComponentLUT = DEFAULT_LUT) -> str:
    """Cache key for one fully-specified deployment request.

    Every input that shapes the simulated report participates — the spec,
    all hardware fields, the epitome assignment, precision, wrapping, and
    the component LUT (a LUT sweep must not hit stale timings).
    """
    payload = {
        "spec": spec_fingerprint(spec),
        "hardware": hardware_fingerprint(config),
        "lut": _digest(dataclasses.asdict(lut)),
        "assignment": sorted(
            (name, list(choice) if choice is not None else None)
            for name, choice in (assignment or {}).items()),
        "weight_bits": weight_bits,
        "activation_bits": activation_bits,
        "use_wrapping": use_wrapping,
    }
    return _digest(payload)


class DeploymentCache:
    """Bounded LRU of compiled :class:`NetworkReport` deployments."""

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, NetworkReport]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._entries)}

    # ------------------------------------------------------------------
    def get_or_build(self, key: str,
                     builder: Callable[[], NetworkReport]) -> NetworkReport:
        """Return the cached report for ``key``, building on first use.

        A hit refreshes recency; when full, the least-recently-used entry
        is evicted.  Outcomes are mirrored into the installed metrics
        registry under ``serve.cache.*`` — deploys are rare next to
        requests, so the per-call counter increment is noise.
        """
        registry = get_metrics()
        if key in self._entries:
            self.hits += 1
            registry.counter("serve.cache.hits",
                             help="deployment-cache key hits").inc()
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        registry.counter("serve.cache.misses",
                         help="deployment-cache compiles").inc()
        report = builder()
        self._entries[key] = report
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            registry.counter("serve.cache.evictions",
                             help="LRU evictions").inc()
        return report

    def deploy(self, spec: NetworkSpec,
               assignment: Optional[EpitomeAssignment] = None,
               weight_bits: Optional[int] = None,
               activation_bits: Optional[int] = None,
               use_wrapping: bool = False,
               config: HardwareConfig = DEFAULT_CONFIG,
               lut: ComponentLUT = DEFAULT_LUT) -> NetworkReport:
        """Designer-path deploy with caching: run
        :func:`compile_deployment`, skipping it entirely on a key hit."""
        key = deployment_key(spec, config, assignment, weight_bits,
                             activation_bits, use_wrapping, lut)
        return self.get_or_build(key, lambda: compile_deployment(
            spec, assignment, weight_bits=weight_bits,
            activation_bits=activation_bits, use_wrapping=use_wrapping,
            config=config, lut=lut))

    def clear(self) -> None:
        self._entries.clear()
