"""Request traces: the workload a serving run replays.

A trace is an ordered list of :class:`Request` records — arrival time in
simulated milliseconds, plus an optional priority class.  Synthetic traces
use Poisson arrivals (exponential inter-arrival gaps at a configured
offered load), the standard open-loop model for serving benchmarks; traces
round-trip through JSON so a run is exactly reproducible from a file
(``python -m repro serve --requests trace.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

__all__ = ["Request", "synthetic_trace", "save_trace", "load_trace"]


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes
    ----------
    request_id:
        Unique id within the trace.
    arrival_ms:
        Simulated arrival time (milliseconds from trace start).
    priority:
        Larger = more urgent; only consulted by the ``"priority"``
        scheduling policy.
    model:
        Model class tag for multi-model request mixes (see
        :mod:`repro.serve.scenarios`); empty for single-model traces.
        Pure accounting today — the engine serves whatever deployment
        it holds — but it round-trips through trace files so recorded
        mixes replay faithfully.
    """

    request_id: int
    arrival_ms: float
    priority: int = 0
    model: str = ""

    def __post_init__(self):
        if self.arrival_ms < 0:
            raise ValueError("arrival_ms must be >= 0")


def synthetic_trace(num_requests: int, rate_rps: float, seed: int = 0,
                    priority_levels: int = 1,
                    start_ms: float = 0.0) -> List[Request]:
    """Poisson arrival trace at an offered load of ``rate_rps`` req/s.

    ``priority_levels > 1`` draws each request's priority uniformly from
    ``0..priority_levels-1`` (higher is more urgent).
    """
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if priority_levels < 1:
        raise ValueError("priority_levels must be >= 1")
    rng = np.random.default_rng(seed)
    gaps_ms = rng.exponential(1000.0 / rate_rps, size=num_requests)
    arrivals = start_ms + np.cumsum(gaps_ms)
    if priority_levels > 1:
        priorities = rng.integers(0, priority_levels, size=num_requests)
    else:
        priorities = np.zeros(num_requests, dtype=int)
    return [Request(request_id=i, arrival_ms=float(arrivals[i]),
                    priority=int(priorities[i]))
            for i in range(num_requests)]


def save_trace(requests: Sequence[Request], path: Union[str, Path]) -> None:
    """Write a trace as JSON (``{"requests": [...]}``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    def entry(r: Request) -> Dict:
        out = {"id": r.request_id, "arrival_ms": r.arrival_ms,
               "priority": r.priority}
        if r.model:
            out["model"] = r.model
        return out

    payload: Dict = {"requests": [entry(r) for r in requests]}
    path.write_text(json.dumps(payload, indent=2))


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a trace written by :func:`save_trace` (extra keys ignored)."""
    payload = json.loads(Path(path).read_text())
    requests = [Request(request_id=int(entry["id"]),
                        arrival_ms=float(entry["arrival_ms"]),
                        priority=int(entry.get("priority", 0)),
                        model=str(entry.get("model", "")))
                for entry in payload["requests"]]
    return sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
