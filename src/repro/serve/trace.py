"""Request traces: the workload a serving run replays.

A trace is an ordered list of :class:`Request` records — arrival time in
simulated milliseconds, plus an optional priority class.  Synthetic traces
use Poisson arrivals (exponential inter-arrival gaps at a configured
offered load), the standard open-loop model for serving benchmarks; traces
round-trip through JSON so a run is exactly reproducible from a file
(``python -m repro serve --requests trace.json``).

Web-scale traces additionally exist in *columnar* form:
:class:`TraceArrays` holds the same workload as parallel NumPy columns so
a million-request trace never materializes a million ``Request`` objects.
:meth:`TraceArrays.materialize` produces the exact object trace the
column form describes (bit-identical arrival floats), which is the
contract the engine-equivalence test harness pins: every generator
builds the arrays first and derives the object trace *from them*, so the
two forms cannot drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Request", "TraceArrays", "arrays_from_requests",
           "synthetic_trace", "synthetic_trace_arrays",
           "save_trace", "load_trace"]


@dataclass(frozen=True)
class Request:
    """One inference request.

    Attributes
    ----------
    request_id:
        Unique id within the trace.
    arrival_ms:
        Simulated arrival time (milliseconds from trace start).
    priority:
        Larger = more urgent; only consulted by the ``"priority"``
        scheduling policy.
    model:
        Model class tag for multi-model request mixes (see
        :mod:`repro.serve.scenarios`); empty for single-model traces.
        Pure accounting today — the engine serves whatever deployment
        it holds — but it round-trips through trace files so recorded
        mixes replay faithfully.
    """

    request_id: int
    arrival_ms: float
    priority: int = 0
    model: str = ""

    def __post_init__(self):
        if self.arrival_ms < 0:
            raise ValueError("arrival_ms must be >= 0")


@dataclass(frozen=True)
class TraceArrays:
    """A request trace as parallel columns (no per-request objects).

    The columnar twin of a ``List[Request]``: ``arrival_ms[k]``,
    ``request_id[k]`` and ``priority[k]`` describe request ``k``;
    ``model`` is ``None`` for single-model traces (every request serves
    the deployment's one network) or a per-request tag tuple for mixes.
    Rows are ordered by ``(arrival_ms, request_id)`` — the replay order
    both engines use — when produced by the in-repo generators;
    :func:`arrays_from_requests` enforces it for arbitrary input.

    The vectorized replay engine consumes this form directly; the scalar
    engine (and anything else wanting objects) goes through
    :meth:`materialize`, which yields exactly the ``Request`` list the
    object-based generators used to build — same floats, same ints.
    """

    arrival_ms: np.ndarray              # float64, nondecreasing
    request_id: np.ndarray              # int64, unique within the trace
    priority: np.ndarray                # int64
    model: Optional[Tuple[str, ...]] = None

    def __post_init__(self):
        n = self.arrival_ms.shape[0]
        if self.request_id.shape[0] != n or self.priority.shape[0] != n:
            raise ValueError("trace columns must share one length")
        if self.model is not None and len(self.model) != n:
            raise ValueError("model column must match the trace length")

    def __len__(self) -> int:
        return int(self.arrival_ms.shape[0])

    def materialize(self) -> List[Request]:
        """Expand the columns into the equivalent ``Request`` list.

        Bit-identical to the object path by construction: each field
        goes through the same ``float()``/``int()`` conversion the
        object-based generators applied element-wise.
        """
        ids = self.request_id.tolist()
        arrivals = self.arrival_ms.tolist()
        priorities = self.priority.tolist()
        if self.model is None:
            return [Request(request_id=ids[k], arrival_ms=arrivals[k],
                            priority=priorities[k])
                    for k in range(len(ids))]
        return [Request(request_id=ids[k], arrival_ms=arrivals[k],
                        priority=priorities[k], model=self.model[k])
                for k in range(len(ids))]


def arrays_from_requests(requests: Sequence[Request]) -> TraceArrays:
    """Column form of an existing object trace, sorted by
    ``(arrival_ms, request_id)`` — the replay order the engine imposes,
    so replaying the arrays is replaying the list."""
    ordered = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
    arrival = np.array([r.arrival_ms for r in ordered], dtype=np.float64)
    ids = np.array([r.request_id for r in ordered], dtype=np.int64)
    priority = np.array([r.priority for r in ordered], dtype=np.int64)
    model: Optional[Tuple[str, ...]] = None
    if any(r.model for r in ordered):
        model = tuple(r.model for r in ordered)
    return TraceArrays(arrival_ms=arrival, request_id=ids,
                       priority=priority, model=model)


def synthetic_trace_arrays(num_requests: int, rate_rps: float, seed: int = 0,
                           priority_levels: int = 1,
                           start_ms: float = 0.0) -> TraceArrays:
    """Columnar Poisson trace — :func:`synthetic_trace` without the
    per-request objects (same RNG stream, same floats)."""
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    if priority_levels < 1:
        raise ValueError("priority_levels must be >= 1")
    rng = np.random.default_rng(seed)
    gaps_ms = rng.exponential(1000.0 / rate_rps, size=num_requests)
    arrivals = start_ms + np.cumsum(gaps_ms)
    if priority_levels > 1:
        priorities = rng.integers(0, priority_levels, size=num_requests)
    else:
        priorities = np.zeros(num_requests, dtype=int)
    return TraceArrays(arrival_ms=arrivals,
                       request_id=np.arange(num_requests, dtype=np.int64),
                       priority=priorities.astype(np.int64))


def synthetic_trace(num_requests: int, rate_rps: float, seed: int = 0,
                    priority_levels: int = 1,
                    start_ms: float = 0.0) -> List[Request]:
    """Poisson arrival trace at an offered load of ``rate_rps`` req/s.

    ``priority_levels > 1`` draws each request's priority uniformly from
    ``0..priority_levels-1`` (higher is more urgent).  Materialized from
    :func:`synthetic_trace_arrays`, so the object and column forms of
    the same ``(n, rate, seed)`` tuple are identical by construction.
    """
    return synthetic_trace_arrays(
        num_requests, rate_rps, seed=seed,
        priority_levels=priority_levels, start_ms=start_ms).materialize()


def save_trace(requests: Sequence[Request], path: Union[str, Path]) -> None:
    """Write a trace as JSON (``{"requests": [...]}``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    def entry(r: Request) -> Dict:
        out = {"id": r.request_id, "arrival_ms": r.arrival_ms,
               "priority": r.priority}
        if r.model:
            out["model"] = r.model
        return out

    payload: Dict = {"requests": [entry(r) for r in requests]}
    path.write_text(json.dumps(payload, indent=2))


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a trace written by :func:`save_trace` (extra keys ignored)."""
    payload = json.loads(Path(path).read_text())
    requests = [Request(request_id=int(entry["id"]),
                        arrival_ms=float(entry["arrival_ms"]),
                        priority=int(entry.get("priority", 0)),
                        model=str(entry.get("model", "")))
                for entry in payload["requests"]]
    return sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
