"""Deploy search results as serving fleets: the ``search -> serve`` bridge.

``python -m repro search --json result.json`` writes a versioned payload
(schema ``repro-search-result`` v1, see docs/search-to-serve.md); this
module turns that artifact into running fleets:

- :func:`load_search_result` parses and validates the payload (winner or
  whole Pareto front) into :class:`LoadedSearchResult`, failing loudly on
  malformed or wrong-version inputs;
- :meth:`LoadedSearchResult.select` picks an operating point off the front
  by policy — ``latency-opt`` for interactive fleets, ``energy-opt`` for
  batch, ``knee`` (min EDP) as the balanced default, or an explicit
  ``index`` (the same policies as :meth:`repro.search.ParetoResult.select`);
- :func:`engine_from_search` compiles the chosen per-layer assignment at
  the search's recorded precision and instantiates a
  :class:`~repro.serve.engine.ServingEngine`, provisioning chips from the
  assignment's crossbar demand when the caller does not pin a fleet size;
- :func:`ab_offered_load_sweep` replays *identical* Poisson traces against
  two (or more) deployed operating points and reports per-policy p50/p99
  latency, achieved throughput and energy per request — the A/B an
  operator runs before routing interactive vs batch traffic.

Everything goes through the format-2 manifest compile path, so the fleet
serves exactly the artifact a production hand-off would replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.tables import Table
from ..core.designer import EpitomeAssignment, build_deployments
from ..core.export import export_deployments
from ..models.specs import get_network_spec
from ..obs.slo import SLO
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import NetworkReport, simulate_network
from ..search.cli import SEARCH_RESULT_SCHEMA, SEARCH_RESULT_VERSION
from ..search.pareto import select_index
from .engine import ServingConfig, ServingEngine
from .scheduler import SchedulerConfig
from .sharding import recommended_chips
from .trace import Request, synthetic_trace

__all__ = [
    "SEARCH_RESULT_SCHEMA",
    "SUPPORTED_SCHEMA_VERSIONS",
    "AB_LOAD_FACTORS",
    "SearchResultError",
    "OperatingPoint",
    "LoadedSearchResult",
    "load_search_result",
    "manifest_from_point",
    "report_from_point",
    "engine_from_search",
    "brownout_plan_from_search",
    "ab_offered_load_sweep",
    "render_ab",
]

# The contract constants live with the producer (repro.search.cli writes
# the payload); this consumer re-exports them so neither side can drift.
SUPPORTED_SCHEMA_VERSIONS = (SEARCH_RESULT_VERSION,)

# Offered loads for the A/B sweep, as fractions of the *slowest* fleet's
# capacity: a comfortable region and a loaded-but-stable one.  Both fleets
# see the same absolute request rate — the comparison is only fair if the
# traffic is identical.
AB_LOAD_FACTORS = (0.5, 0.8)


class SearchResultError(ValueError):
    """A search-result payload that cannot be deployed (malformed,
    missing fields, or an unsupported schema version)."""


@dataclass(frozen=True)
class OperatingPoint:
    """One deployable design off a search result: the per-layer epitome
    assignment plus the search-side metrics it was picked by."""

    label: str                      # "best" or "front[i]"
    assignment: EpitomeAssignment   # layer name -> (rows, cols), conv skipped
    crossbars: int
    latency_ms: float
    energy_mj: float

    @property
    def edp(self) -> float:
        return self.latency_ms * self.energy_mj


@dataclass(frozen=True)
class LoadedSearchResult:
    """A parsed ``repro search --json`` artifact, ready to deploy."""

    model: str
    objective: str
    budget: Optional[int]
    feasible: bool
    weight_bits: Optional[int]
    activation_bits: Optional[int]
    use_wrapping: bool
    layers: Tuple[str, ...]
    best: OperatingPoint
    front: Optional[Tuple[OperatingPoint, ...]]

    @property
    def points(self) -> Tuple[OperatingPoint, ...]:
        """Selectable operating points: the front, or just the winner for
        scalar-objective results."""
        return self.front if self.front else (self.best,)

    def select(self, policy: str = "knee",
               index: Optional[int] = None) -> OperatingPoint:
        """Pick an operating point by policy (latency-opt | energy-opt |
        knee | index; see :func:`repro.search.select_index`)."""
        points = self.points
        metrics = [(p.latency_ms, p.energy_mj, p.edp) for p in points]
        try:
            return points[select_index(metrics, policy, index)]
        except ValueError as exc:
            raise SearchResultError(str(exc)) from None


def _require(payload: Mapping, key: str, context: str) -> object:
    if key not in payload:
        raise SearchResultError(
            f"search result {context} is missing required key {key!r}")
    return payload[key]


def _parse_candidate(raw, where: str):
    if raw is None:
        return None
    if (not isinstance(raw, (list, tuple)) or len(raw) != 2
            or not all(isinstance(v, int) for v in raw)):
        raise SearchResultError(
            f"{where}: candidate must be null or a [rows, cols] pair, "
            f"got {raw!r}")
    return (raw[0], raw[1])


def _parse_point(entry: Mapping, label: str,
                 layers: Sequence[str]) -> OperatingPoint:
    if not isinstance(entry, Mapping):
        raise SearchResultError(
            f"{label}: must be an object, got {type(entry).__name__}")
    genome = _require(entry, "genome", label)
    if not isinstance(genome, (list, tuple)):
        raise SearchResultError(
            f"{label}: 'genome' must be a list, "
            f"got {type(genome).__name__}")
    if len(genome) != len(layers):
        raise SearchResultError(
            f"{label}: genome has {len(genome)} entries for "
            f"{len(layers)} layers")
    assignment = {}
    for name, raw in zip(layers, genome):
        cand = _parse_candidate(raw, f"{label} layer {name!r}")
        if cand is not None:
            assignment[name] = cand
    try:
        return OperatingPoint(
            label=label,
            assignment=assignment,
            crossbars=int(_require(entry, "crossbars", label)),
            latency_ms=float(_require(entry, "latency_ms", label)),
            energy_mj=float(_require(entry, "energy_mj", label)),
        )
    except (TypeError, ValueError) as exc:
        raise SearchResultError(f"{label}: non-numeric metric: {exc}") \
            from None


def load_search_result(source: Union[str, Path, Mapping]
                       ) -> LoadedSearchResult:
    """Parse a ``repro search --json`` payload (dict, or path to one).

    Validates the schema marker and version before touching any field, so
    a file from a future incompatible ``repro`` (or a deployment manifest
    passed by mistake) fails with an actionable message instead of a
    KeyError deep in the compile path.
    """
    context = "payload"
    if not isinstance(source, Mapping):
        context = str(source)
        try:
            payload = json.loads(Path(source).read_text())
        except OSError as exc:
            raise SearchResultError(
                f"cannot read search result {context}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise SearchResultError(
                f"{context} is not valid JSON: {exc}") from None
    else:
        payload = source
    if not isinstance(payload, Mapping):
        raise SearchResultError(
            f"search result {context} must be a JSON object, "
            f"got {type(payload).__name__}")

    schema = payload.get("schema")
    if schema != SEARCH_RESULT_SCHEMA:
        raise SearchResultError(
            f"{context} is not a {SEARCH_RESULT_SCHEMA} payload "
            f"(schema={schema!r}); write one with "
            "`python -m repro search --json result.json`")
    version = payload.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SearchResultError(
            f"{context} has schema_version {version!r}; this build "
            f"supports {sorted(SUPPORTED_SCHEMA_VERSIONS)} — re-run the "
            "search with a matching repro version")

    model = _require(payload, "model", context)
    layers = _require(payload, "layers", context)
    if not isinstance(layers, list) or not layers:
        raise SearchResultError(
            f"{context}: 'layers' must be a non-empty list of layer names")
    precision = _require(payload, "precision", context)
    if not isinstance(precision, Mapping):
        raise SearchResultError(
            f"{context}: 'precision' must be an object with "
            f"weight_bits/activation_bits/use_wrapping, "
            f"got {type(precision).__name__}")
    best = _parse_point(_require(payload, "best", context), "best", layers)

    front = None
    if payload.get("front") is not None:
        front = tuple(
            _parse_point(entry, f"front[{i}]", layers)
            for i, entry in enumerate(payload["front"]))
        if not front:
            raise SearchResultError(f"{context}: 'front' is empty")

    budget = payload.get("budget")
    return LoadedSearchResult(
        model=str(model),
        objective=str(payload.get("objective", "")),
        budget=int(budget) if budget is not None else None,
        feasible=bool(payload.get("feasible", True)),
        weight_bits=precision.get("weight_bits"),
        activation_bits=precision.get("activation_bits"),
        use_wrapping=bool(precision.get("use_wrapping", True)),
        layers=tuple(layers),
        best=best,
        front=front,
    )


# ----------------------------------------------------------------------
# Deployment
# ----------------------------------------------------------------------

def manifest_from_point(result: LoadedSearchResult, point: OperatingPoint,
                        config: HardwareConfig = DEFAULT_CONFIG) -> Dict:
    """Compile an operating point into a format-2 deployment manifest at
    the search's recorded precision — the servable hand-off artifact."""
    spec = get_network_spec(result.model)
    deployments = build_deployments(
        spec, point.assignment,
        weight_bits=result.weight_bits,
        activation_bits=result.activation_bits,
        use_wrapping=result.use_wrapping,
        config=config)
    return export_deployments(deployments, config,
                              name=f"{result.model}@{point.label}")


def _report_from_manifest(manifest: Dict,
                          lut: ComponentLUT = DEFAULT_LUT) -> NetworkReport:
    from ..core.export import deployments_from_manifest

    deployments, hardware = deployments_from_manifest(manifest)
    return simulate_network(deployments, hardware, lut)


def report_from_point(result: LoadedSearchResult, point: OperatingPoint,
                      config: HardwareConfig = DEFAULT_CONFIG,
                      lut: ComponentLUT = DEFAULT_LUT) -> NetworkReport:
    """Simulate an operating point's deployment (via the manifest path, so
    serve-side numbers come from the same artifact production replays)."""
    return _report_from_manifest(manifest_from_point(result, point, config),
                                 lut)


def engine_from_search(source: Union[str, Path, Mapping, LoadedSearchResult],
                       policy: str = "knee",
                       index: Optional[int] = None,
                       num_chips: Optional[int] = None,
                       replicas: int = 1,
                       mode: str = "auto",
                       scheduler: Optional[SchedulerConfig] = None,
                       config: HardwareConfig = DEFAULT_CONFIG,
                       lut: ComponentLUT = DEFAULT_LUT,
                       resilience=None,
                       brownout_policy: Optional[str] = None,
                       brownout_index: Optional[int] = None,
                       engine: str = "auto"
                       ) -> ServingEngine:
    """A :class:`ServingEngine` serving one operating point of a search.

    ``num_chips=None`` derives the fleet from the assignment's crossbar
    demand: the minimum chips one full copy needs at
    ``config.tiles_per_chip`` (see
    :func:`repro.serve.sharding.recommended_chips`), times ``replicas``.
    The selected point and its compiled manifest are attached to the
    engine as ``engine.operating_point`` / ``engine.deployment_manifest``
    (telemetry labelling; exporting without recompiling).

    ``resilience`` (a :class:`~repro.serve.resilience.ResilienceConfig`)
    arms the resilience runtime for every serve() call on the engine.
    ``engine`` picks the replay engine (``auto``/``scalar``/
    ``vectorized``, see docs/vectorized-replay.md).
    ``brownout_policy`` selects a *second* point off the same front as
    the degraded brownout plan (usually ``energy-opt`` against a
    ``latency-opt`` primary): its timing is simulated at the engine's
    fleet size and attached via :meth:`ServingEngine.attach_brownout`,
    so brownout serves real search-front physics — a shorter sustained
    image interval bought with a slower pipeline fill — instead of the
    policy's fallback scales (see docs/resilience.md).
    """
    result = (source if isinstance(source, LoadedSearchResult)
              else load_search_result(source))
    point = result.select(policy, index)
    manifest = manifest_from_point(result, point, config)
    report = _report_from_manifest(manifest, lut)
    if num_chips is None:
        num_chips = recommended_chips(report, config, replicas=replicas)
    serving = ServingConfig(num_chips=num_chips, mode=mode,
                            scheduler=scheduler or SchedulerConfig(),
                            resilience=resilience, engine=engine)
    served = ServingEngine(report, serving, config, lut)
    served.operating_point = point
    served.deployment_manifest = manifest
    if brownout_policy is not None:
        served.attach_brownout(brownout_plan_from_search(
            result, served, policy=brownout_policy, index=brownout_index,
            config=config, lut=lut))
    return served


def brownout_plan_from_search(result: LoadedSearchResult,
                              engine: ServingEngine,
                              policy: str = "energy-opt",
                              index: Optional[int] = None,
                              config: HardwareConfig = DEFAULT_CONFIG,
                              lut: ComponentLUT = DEFAULT_LUT):
    """Derive a degraded :class:`~repro.serve.resilience.BrownoutPlan`
    from a second operating point of the search front.

    The degraded point is compiled and shard-planned at the *engine's*
    fleet size, so the scales compare like with like: ``interval_scale``
    is the ratio of sustained image intervals (how much more throughput
    the fleet holds browned out — typically < 1 because a smaller-epitome
    point packs more replica groups onto the same chips) and
    ``fill_scale`` the ratio of pipeline fills (the latency price).
    Raises :class:`SearchResultError` when the policy lands on the
    engine's own operating point — a brownout that changes nothing is a
    configuration error, not a degraded mode.
    """
    from .resilience import BrownoutPlan
    from .sharding import plan_sharding

    degraded = result.select(policy, index)
    primary = engine.operating_point
    if primary is not None and degraded.label == primary.label:
        raise SearchResultError(
            f"brownout policy {policy!r} selects the engine's own "
            f"operating point ({degraded.label}); pick a policy that "
            "lands on a different front point — a degraded mode must "
            "actually degrade")
    degraded_report = report_from_point(result, degraded, config, lut)
    degraded_plan = plan_sharding(degraded_report, engine.config.num_chips,
                                  mode=engine.config.mode, config=config,
                                  lut=lut)
    interval_scale = (engine.plan.throughput_fps
                      / degraded_plan.throughput_fps)
    fill_scale = (degraded_plan.per_image_latency_ms
                  / engine.plan.per_image_latency_ms)
    return BrownoutPlan(interval_scale=interval_scale,
                        fill_scale=fill_scale,
                        label=f"{result.model}@{degraded.label} ({policy})",
                        point=degraded)


# ----------------------------------------------------------------------
# A/B offered-load sweep
# ----------------------------------------------------------------------

def _job_seed(seed: int, index: int) -> int:
    """Deterministic per-job trace seed for the A/B sweep.

    Each (sweep seed, job index) pair spawns an independent stream via
    :class:`numpy.random.SeedSequence` — explicit propagation, never the
    global numpy RNG state, so a sweep is reproducible regardless of what
    any surrounding code did to ``np.random`` and different load factors
    do not replay the same underlying uniform draws.
    """
    return int(np.random.SeedSequence([seed, index]).generate_state(1)[0])


def ab_offered_load_sweep(engines: Mapping[str, ServingEngine],
                          num_requests: int = 400,
                          load_factors: Sequence[float] = AB_LOAD_FACTORS,
                          seed: int = 0,
                          rate_fps: Optional[float] = None,
                          trace: Optional[Sequence[Request]] = None,
                          priority_levels: int = 1,
                          slo: Optional[SLO] = None,
                          scenario=None,
                          faults=None,
                          resilience=None) -> List[Dict]:
    """Serve identical traces against several deployed operating points.

    ``engines`` maps a label (usually the selection policy) to a deployed
    engine.  Each load factor is taken against the *minimum* capacity
    across the fleets (or ``rate_fps`` pins absolute rates, ignoring
    ``load_factors``), and every fleet replays the *same* trace —
    identical arrivals, so latency/energy differences are attributable to
    the operating point alone.  A recorded ``trace`` replaces the
    synthetic sweep entirely: one row per fleet at the trace's own
    measured arrival rate.

    Trace seeds are derived per job as ``SeedSequence([seed, job_index])``
    and passed explicitly to the generator — the sweep never consults
    numpy's global RNG state, so results are reproducible from ``seed``
    alone.  ``scenario`` (a registered name or
    :class:`~repro.serve.scenarios.Scenario`) swaps the plain Poisson
    generator for that scenario's arrival process; ``faults`` (spec
    string or :class:`~repro.serve.scenarios.faults.FaultPlan`) injects
    the same fault plan into every fleet's replay, and the rows then gain
    ``failed``/``availability`` columns.

    Each row carries the serving telemetry (p50/p99 latency, achieved
    throughput, shed count) plus ``energy_per_request_mj``, the deployed
    design's per-image energy — the number a batch fleet provisions by.
    With ``slo`` given, every row also gains the flat ``slo_*``
    attainment keys of :meth:`repro.obs.slo.SLOReport.as_dict`, so the
    A/B answers "which operating point still meets the SLO at this
    load" directly.  ``resilience`` arms the resilience runtime for
    every replay (same config across fleets, so the A/B stays fair).
    """
    if not engines:
        raise ValueError("ab_offered_load_sweep needs at least one engine")
    if isinstance(scenario, str):
        from .scenarios import get_scenario

        scenario = get_scenario(scenario)
    if trace is not None:
        replay = sorted(trace, key=lambda r: (r.arrival_ms, r.request_id))
        if not replay:
            raise ValueError("cannot A/B an empty trace")
        span_ms = replay[-1].arrival_ms - replay[0].arrival_ms
        offered = (len(replay) / span_ms * 1000.0 if span_ms > 0
                   else float(len(replay)))
        jobs = [(offered, replay)]
    else:
        base = min(engine.plan.throughput_fps for engine in engines.values())
        rates = ([rate_fps] if rate_fps is not None
                 else [factor * base for factor in load_factors])
        if scenario is not None:
            jobs = [(rate, scenario.to_trace(num_requests, rate_rps=rate,
                                             seed=_job_seed(seed, index)))
                    for index, rate in enumerate(rates)]
        else:
            jobs = [(rate, synthetic_trace(num_requests, rate_rps=rate,
                                           seed=_job_seed(seed, index),
                                           priority_levels=priority_levels))
                    for index, rate in enumerate(rates)]
    rows: List[Dict] = []
    for rate, requests in jobs:
        for label, engine in engines.items():
            telemetry = engine.serve(requests, faults=faults,
                                     resilience=resilience)
            row = {
                "point": label,
                "offered_fps": rate,
                "capacity_fps": engine.plan.throughput_fps,
                "achieved_fps": telemetry.throughput_fps(),
                "p50_ms": telemetry.latency_percentile(50.0),
                "p99_ms": telemetry.latency_percentile(99.0),
                "shed": telemetry.num_rejected,
                "energy_per_request_mj": engine.report.energy_mj,
                "num_chips": engine.config.num_chips,
            }
            if faults is not None:
                row["failed"] = telemetry.num_failed
                row["availability"] = telemetry.availability()
            if slo is not None:
                row.update(telemetry.slo_attainment(slo).as_dict())
            rows.append(row)
    return rows


def render_ab(rows: Sequence[Dict],
              title: str = "A/B operating points under load") -> str:
    """Render A/B sweep rows as a paper-style table.

    Rows produced with an SLO (see :func:`ab_offered_load_sweep`) gain an
    ``SLO`` verdict column — ``yes``/``NO`` per (point, load) cell.
    """
    with_slo = any("slo_attained" in row for row in rows)
    columns = ["point", "chips", "offered_fps", "achieved_fps",
               "p50_ms", "p99_ms", "shed", "energy/req (mJ)"]
    if with_slo:
        columns.append("SLO")
    table = Table(columns, title=title)
    for row in rows:
        cells = [row["point"], row["num_chips"], row["offered_fps"],
                 row["achieved_fps"], row["p50_ms"], row["p99_ms"],
                 row["shed"], row["energy_per_request_mj"]]
        if with_slo:
            verdict = row.get("slo_attained")
            cells.append("-" if verdict is None
                         else ("yes" if verdict else "NO"))
        table.add_row(*cells)
    return table.render()
