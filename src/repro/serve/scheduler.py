"""Micro-batching scheduler: bounded queue + batch formation policy.

Requests accumulate in a bounded queue; a batch is released when it is
*full* (``max_batch_size`` requests) or the *batching window* has elapsed
since the oldest queued request arrived — the standard
latency-vs-throughput knob of serving systems (larger windows mean fuller
batches and better amortization of the pipeline fill latency, at the cost
of queueing delay).  Two ordering policies:

- ``"fifo"`` — strict arrival order;
- ``"priority"`` — higher :attr:`~repro.serve.trace.Request.priority`
  first, arrival order within a class (the window is still anchored to the
  oldest queued request of *any* class, so low-priority work cannot starve
  the window clock).

When the queue is full new requests are rejected (load shedding); the
engine records them in telemetry rather than letting the queue — and every
latency percentile — grow without bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .trace import Request

__all__ = ["SchedulerConfig", "Batch", "MicroBatchScheduler"]

POLICIES = ("fifo", "priority")


@dataclass(frozen=True)
class SchedulerConfig:
    """Batching/queueing knobs.

    Attributes
    ----------
    max_batch_size:
        Upper bound on requests per micro-batch.
    window_ms:
        Maximum time the oldest queued request may wait before a partial
        batch is released (0 releases immediately).
    queue_depth:
        Bounded queue capacity; submissions beyond it are rejected.
    policy:
        ``"fifo"`` or ``"priority"``.
    """

    max_batch_size: int = 8
    window_ms: float = 2.0
    queue_depth: int = 256
    policy: str = "fifo"

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.window_ms < 0:
            raise ValueError("window_ms must be >= 0")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")

    def vectorization_blockers(self) -> List[str]:
        """Reasons the vectorized replay engine cannot honor this
        config (empty when it can).  FIFO collapses batch formation to a
        head pointer over the accepted-arrival order; any other policy
        reorders per request, which only the scalar loop expresses."""
        if self.policy != "fifo":
            return [f"scheduler policy {self.policy!r} reorders "
                    "per-request"]
        return []


@dataclass(frozen=True)
class Batch:
    """One micro-batch released to an executor."""

    requests: Tuple[Request, ...]
    formed_ms: float

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def oldest_arrival_ms(self) -> float:
        return min(r.arrival_ms for r in self.requests)


class MicroBatchScheduler:
    """Bounded-queue micro-batcher (simulated-time, event-driven).

    The engine drives it with explicit timestamps where time matters:
    ``next_batch(now)`` to release a ready batch, ``next_timeout_ms()``
    to learn when the window next expires (the engine's wake-up event
    when no arrival or chip-free event comes sooner).  ``submit`` is
    timestamp-free — the window is anchored to request *arrival* times.

    The queue is two heaps so every engine event stays O(log n) even in
    the deep-queue load-shedding regime (the previous list version
    rescanned/resorted the whole queue per event, O(n) arrival scans and
    O(n log n) sorts — quadratic over a trace):

    - a release heap ordered by the policy's sort key (seq for FIFO;
      (-priority, seq) for priority), popped to form batches;
    - an arrival heap ordered by arrival time — the cached window
      anchor.  Its entries are evicted lazily: a released request's entry
      stays behind and is discarded when it surfaces at the top.  A
      starved head entry (priority policy) can block top-eviction
      indefinitely, so the heap is rebuilt from the live set whenever
      stale entries outnumber live ones 2:1 — size stays O(live), not
      O(total ever submitted).
    """

    def __init__(self, config: SchedulerConfig = SchedulerConfig()):
        self.config = config
        self._release_heap: List[Tuple[Tuple, Request]] = []
        self._arrival_heap: List[Tuple[float, int]] = []
        self._live: dict = {}       # seq still queued -> arrival_ms
        self._oldest_cache: Optional[float] = None   # valid iff not dirty
        self._oldest_dirty = False
        self._seq = 0
        self.num_submitted = 0
        self.num_rejected = 0
        self.num_batches = 0

    def __len__(self) -> int:
        return len(self._live)

    @property
    def empty(self) -> bool:
        return not self._live

    def _sort_key(self, request: Request) -> Tuple:
        if self.config.policy == "priority":
            return (-request.priority, self._seq)
        return (self._seq,)

    # ------------------------------------------------------------------
    # reprolint: hot-loop -- one call per offered request
    def submit(self, request: Request) -> bool:
        """Enqueue a request; False when the bounded queue sheds it."""
        self.num_submitted += 1
        if len(self._live) >= self.config.queue_depth:
            self.num_rejected += 1
            return False
        heapq.heappush(self._release_heap, (self._sort_key(request), request))
        heapq.heappush(self._arrival_heap, (request.arrival_ms, self._seq))
        self._live[self._seq] = request.arrival_ms
        self._seq += 1
        # A fresh arrival only moves the cached window anchor when it is
        # older than the current head (a failover re-submission) or the
        # queue was empty; in-order traffic keeps the cache warm.
        if self._oldest_cache is None or request.arrival_ms < self._oldest_cache:
            self._oldest_cache = request.arrival_ms
        return True

    # ------------------------------------------------------------------
    # reprolint: hot-loop -- two-heap drain path (20k-deep queue, PR 3)
    def oldest_arrival_ms(self) -> Optional[float]:
        """Arrival time of the oldest queued request (window anchor).

        Cached between queue mutations: the engine reads this several
        times per event (batching window, admission delay, brownout
        signal) against an unchanged queue, so only the first read after
        a release pays for heap maintenance.
        """
        if not self._oldest_dirty:
            return self._oldest_cache
        while self._arrival_heap and self._arrival_heap[0][1] not in self._live:
            heapq.heappop(self._arrival_heap)       # evict released entries
        if len(self._arrival_heap) > 2 * len(self._live) + 16:
            # A live-but-starved head blocks top-eviction; rebuild so the
            # heap stays O(live) even under sustained priority starvation.
            self._arrival_heap = [(arrival, seq)
                                  for seq, arrival in self._live.items()]
            heapq.heapify(self._arrival_heap)
        self._oldest_dirty = False
        if not self._arrival_heap:
            self._oldest_cache = None
        else:
            self._oldest_cache = self._arrival_heap[0][0]
        return self._oldest_cache

    def next_timeout_ms(self) -> Optional[float]:
        """When the batching window expires for the current queue head."""
        oldest = self.oldest_arrival_ms()
        if oldest is None:
            return None
        return oldest + self.config.window_ms

    def has_ready_batch(self, now_ms: float) -> bool:
        """Full batch queued, or the window has expired on a partial one."""
        if not self._live:
            return False
        if len(self._live) >= self.config.max_batch_size:
            return True
        return now_ms >= self.next_timeout_ms()

    # reprolint: hot-loop -- one call per formed micro-batch
    def next_batch(self, now_ms: float, force: bool = False
                   ) -> Optional[Batch]:
        """Release the next micro-batch, or None if nothing is ready.

        ``force=True`` drains a partial batch regardless of the window —
        a shutdown/flush hook for callers that want to empty the queue
        early.  The engine itself never forces: end-of-trace partial
        batches drain through normal window expiry.
        """
        if not self._live:
            return None
        if not force and not self.has_ready_batch(now_ms):
            return None
        take = min(self.config.max_batch_size, len(self._live))
        released = []
        for _ in range(take):
            key, request = heapq.heappop(self._release_heap)
            self._live.pop(key[-1], None)   # keys end with the seq number
            released.append(request)
        self.num_batches += 1
        self._oldest_dirty = True
        return Batch(requests=tuple(released), formed_ms=now_ms)

    # ------------------------------------------------------------------
    def publish_metrics(self, registry) -> None:
        """Fold this scheduler's lifetime counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` under
        ``serve.scheduler.*`` (the engine calls this once per run)."""
        registry.counter("serve.scheduler.submitted",
                         help="requests offered to the scheduler"
                         ).inc(self.num_submitted)
        registry.counter("serve.scheduler.shed",
                         help="requests rejected by the bounded queue"
                         ).inc(self.num_rejected)
        registry.counter("serve.scheduler.batches_formed",
                         help="micro-batches released"
                         ).inc(self.num_batches)
