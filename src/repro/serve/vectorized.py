"""Event-vectorized trace replay: whole-trace array passes.

The scalar :meth:`~repro.serve.engine.ServingEngine.serve` loop walks one
``Request`` object at a time through scheduler heaps and telemetry
records — faithful, but a million-request day costs minutes of pure
Python dispatch.  This module replays the *same* discrete-event process
in two phases sized for web-scale traces:

- **Phase A** (:func:`_replay_events`): one pass over the event
  timeline using primitive lists only.  With the vectorizable subset of
  the engine armed (FIFO policy, no faults, no resilience runtime) the
  scheduler state collapses to a head pointer into the accepted-index
  list — no ``Request`` objects, no heaps, no per-event allocations.
  The pass emits *batch* columns (dispatch time, size, executor), the
  accepted/rejected index sets, and the per-event queue-depth series.
- **Phase B**: NumPy expansion of the batch columns into per-request
  completion columns (``start = repeat(dispatch, size)``,
  ``finish = repeat(dispatch + fill, size) + j * interval``) and
  per-chip busy totals, handed to
  :meth:`~repro.serve.telemetry.TelemetryCollector.ingest_columns` in
  one call.

Byte-identical by construction: every float the scalar loop produces is
recomputed here by the *same* arithmetic expression in the same order —
``now + fill + j * interval`` groups as ``(now + fill) + (j * interval)``
in both engines, chip busy totals accumulate left-to-right
(``np.cumsum``, never pairwise ``np.sum``), and comparisons use the same
``_EPS`` slack.  The differential harness in
``tests/serve/test_engine_equivalence.py`` holds the scalar engine as
the permanent oracle and asserts ``summary()`` equality across the
scenario catalog; docs/vectorized-replay.md maps each event-loop rule to
its array-pass twin.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from .telemetry import TelemetryCollector
from .trace import Request, TraceArrays, arrays_from_requests

__all__ = ["replay_vectorized"]

_EPS = 1e-9
_INF = float("inf")


def _replay_events(arrivals: List[float], num_executors: int,
                   queue_depth: int, max_batch: int, window_ms: float,
                   image_interval_ms: float) -> Tuple[
                       List[int], List[int], List[float], List[int],
                       List[float], List[int], List[int], List[float]]:
    """Replay the scalar event loop over primitive lists.

    Mirrors the engine's loop rule for rule — arrivals within ``_EPS``
    of ``now`` are ingested (shed when the bounded queue is full),
    batches release while the queue holds a full batch or the window has
    expired on its head, the dispatch target is the free executor with
    the smallest ``(free_at_ms, index)``, exactly one queue-depth sample
    lands per event, and the clock advances to the earliest of next
    arrival / window expiry / executor-free candidates (minimally, by
    ``_EPS``, when ready work has nothing to wait for).

    Replica fleets are almost always one or two executor groups, so
    that case runs a twin loop holding both free times in local floats
    (no list indexing per event); wider fleets take the generic loop.
    The differential harness exercises both paths.

    Returns ``(accepted, rejected, event_ms, event_depth, batch_ms,
    batch_size, batch_executor, free_at_ms)`` — trace *indices* for the
    first two, parallel batch columns for the next three, and the final
    per-executor free times for write-back.
    """
    if num_executors <= 2:
        return _replay_events_small(arrivals, num_executors, queue_depth,
                                    max_batch, window_ms,
                                    image_interval_ms)
    return _replay_events_any(arrivals, num_executors, queue_depth,
                              max_batch, window_ms, image_interval_ms)


# reprolint: hot-loop -- 1/2-executor event pass: free times in locals
def _replay_events_small(arrivals: List[float], num_executors: int,
                         queue_depth: int, max_batch: int,
                         window_ms: float, image_interval_ms: float
                         ) -> Tuple[
                             List[int], List[int], List[float], List[int],
                             List[float], List[int], List[int],
                             List[float]]:
    """The ``num_executors <= 2`` twin of :func:`_replay_events_any`.

    Identical rules; the per-executor free-time list collapses to two
    local floats (a single-executor fleet pins the second to ``_INF``,
    which can never win dispatch nor land in a candidate window).
    """
    arr = arrivals
    n = len(arr)
    cap = queue_depth
    full = max_batch
    window = window_ms
    interval = image_interval_ms
    i = 0           # next trace index to ingest
    depth = 0       # live queue length
    head = 0        # queue head: next accepted slot to dispatch (FIFO)
    acc: List[int] = []
    rej: List[int] = []
    ev_t: List[float] = []
    ev_d: List[int] = []
    bd: List[float] = []
    bs: List[int] = []
    bx: List[int] = []
    acc_append = acc.append
    rej_append = rej.append
    evt_append = ev_t.append
    evd_append = ev_d.append
    bd_append = bd.append
    bs_append = bs.append
    bx_append = bx.append
    f0 = 0.0
    f1 = 0.0 if num_executors == 2 else _INF
    now = arr[0]
    next_arr = now
    head_dl = _INF
    while True:
        lim = now + _EPS
        while next_arr <= lim:
            if depth >= cap:
                rej_append(i)
            else:
                acc_append(i)
                if not depth:
                    head_dl = next_arr + window
                depth += 1
            i += 1
            next_arr = arr[i] if i < n else _INF
        while depth and (depth >= full or now >= head_dl):
            if f0 <= lim:
                best = 1 if f1 <= lim and f1 < f0 else 0
            elif f1 <= lim:
                best = 1
            else:
                break
            take = full if depth > full else depth
            bd_append(now)
            bs_append(take)
            bx_append(best)
            if best:
                f1 = now + take * interval
            else:
                f0 = now + take * interval
            head += take
            depth -= take
            if depth:
                head_dl = arr[acc[head]] + window
        evt_append(now)
        evd_append(depth)
        nxt = next_arr
        if depth:
            if lim < head_dl < nxt:
                nxt = head_dl
            if lim < f0 < nxt:
                nxt = f0
            if lim < f1 < nxt:
                nxt = f1
        if nxt == _INF:
            if i >= n and not depth:
                break
            now = lim
            continue
        now = nxt
    free = [f0] if num_executors == 1 else [f0, f1]
    return acc, rej, ev_t, ev_d, bd, bs, bx, free


# reprolint: hot-loop -- whole-trace event pass: primitive lists only
def _replay_events_any(arrivals: List[float], num_executors: int,
                       queue_depth: int, max_batch: int, window_ms: float,
                       image_interval_ms: float) -> Tuple[
                           List[int], List[int], List[float], List[int],
                           List[float], List[int], List[int], List[float]]:
    """Generic-fleet event pass (see :func:`_replay_events`)."""
    arr = arrivals
    n = len(arr)
    c = num_executors
    cap = queue_depth
    full = max_batch
    window = window_ms
    interval = image_interval_ms
    i = 0           # next trace index to ingest
    depth = 0       # live queue length
    head = 0        # queue head: next accepted slot to dispatch (FIFO)
    acc: List[int] = []
    rej: List[int] = []
    ev_t: List[float] = []
    ev_d: List[int] = []
    bd: List[float] = []
    bs: List[int] = []
    bx: List[int] = []
    acc_append = acc.append
    rej_append = rej.append
    evt_append = ev_t.append
    evd_append = ev_d.append
    bd_append = bd.append
    bs_append = bs.append
    bx_append = bx.append
    free = [0.0] * c
    now = arr[0]
    # Cached invariants: ``next_arr`` mirrors ``arr[i]`` (``_INF`` once
    # drained) and ``head_dl`` mirrors ``arr[acc[head]] + window``
    # whenever ``depth > 0`` — same float expressions, computed once per
    # change instead of once per event.
    next_arr = now
    head_dl = _INF
    while True:
        lim = now + _EPS
        while next_arr <= lim:
            if depth >= cap:
                rej_append(i)
            else:
                acc_append(i)
                if not depth:
                    head_dl = next_arr + window
                depth += 1
            i += 1
            next_arr = arr[i] if i < n else _INF
        while depth and (depth >= full or now >= head_dl):
            best = -1
            best_free = 0.0
            e = 0
            while e < c:
                f = free[e]
                if f <= lim and (best < 0 or f < best_free):
                    best = e
                    best_free = f
                e += 1
            if best < 0:
                break
            take = full if depth > full else depth
            bd_append(now)
            bs_append(take)
            bx_append(best)
            free[best] = now + take * interval
            head += take
            depth -= take
            if depth:
                head_dl = arr[acc[head]] + window
        evt_append(now)
        evd_append(depth)
        nxt = next_arr
        if depth:
            if lim < head_dl < nxt:
                nxt = head_dl
            e = 0
            while e < c:
                f = free[e]
                if lim < f < nxt:
                    nxt = f
                e += 1
        if nxt == _INF:
            if i >= n and not depth:
                break
            now = lim
            continue
        now = nxt
    return acc, rej, ev_t, ev_d, bd, bs, bx, free


def replay_vectorized(engine, requests: Union[Sequence[Request],
                                              TraceArrays]
                      ) -> TelemetryCollector:
    """Replay a trace through ``engine``'s deployment as array passes.

    Accepts either an object trace or :class:`TraceArrays` (the
    web-scale form — a million-request replay never builds a
    million ``Request`` objects).  The caller
    (:meth:`ServingEngine.serve` with the vectorized engine selected)
    guarantees the vectorizable subset: FIFO policy, no fault plan, no
    resilience runtime.  Returns a :class:`TelemetryCollector` in column
    mode whose ``summary()`` is byte-identical to the scalar engine's.
    """
    trace = (requests if isinstance(requests, TraceArrays)
             else arrays_from_requests(requests))
    telemetry = TelemetryCollector(num_chips=engine.config.num_chips)
    for ex in engine.executors:
        ex.reset()
    n = len(trace)
    if n == 0:
        return telemetry
    # The engine replays in (arrival_ms, request_id) order; generator
    # output already is, so the identity check keeps the common case
    # copy-free.
    order = np.lexsort((trace.request_id, trace.arrival_ms))
    if not np.array_equal(order, np.arange(n)):
        model = (tuple(trace.model[k] for k in order.tolist())
                 if trace.model is not None else None)
        trace = TraceArrays(arrival_ms=trace.arrival_ms[order],
                            request_id=trace.request_id[order],
                            priority=trace.priority[order],
                            model=model)

    plan = engine.plan
    cfg = engine.config.scheduler
    acc, rej, ev_t, ev_d, bd, bs, bx, free = _replay_events(
        trace.arrival_ms.tolist(), len(engine.executors),
        cfg.queue_depth, cfg.max_batch_size, cfg.window_ms,
        plan.image_interval_ms)
    # The scalar loop leaves each executor at its last dispatch's free
    # time; keep that observable state identical.
    for ex, free_ms in zip(engine.executors, free):
        ex.free_at_ms = free_ms

    # ---- Phase B: expand batch columns into completion columns -------
    interval = plan.image_interval_ms
    fill = plan.per_image_latency_ms
    acc_idx = np.asarray(acc, dtype=np.int64)
    bd_np = np.asarray(bd, dtype=np.float64)
    bs_np = np.asarray(bs, dtype=np.int64)
    bx_np = np.asarray(bx, dtype=np.int64)
    total = int(bs_np.sum()) if bs_np.size else 0
    # j-th request of its batch finishes at (dispatch + fill) +
    # j * interval — grouped exactly as the scalar expression
    # `now + fill + j * interval` parses.
    starts = np.repeat(bd_np, bs_np)
    j_intra = (np.arange(total, dtype=np.int64)
               - np.repeat(np.cumsum(bs_np) - bs_np, bs_np))
    finishes = np.repeat(bd_np + fill, bs_np) + j_intra * interval

    # Per-chip busy time: the scalar loop adds size * shard_interval per
    # dispatch in order, so reduce with the sequential cumsum (pairwise
    # np.sum would round differently and break byte-identity).
    chip_busy: Dict[int, float] = {}
    for ex in engine.executors:
        sizes = bs_np[bx_np == ex.index]
        if not sizes.size:
            continue
        for chip_id, shard in zip(ex.chip_ids, plan.shards):
            vals = sizes * shard.image_interval_ms
            chip_busy[chip_id] = float(np.cumsum(vals)[-1])

    model = None
    if trace.model is not None:
        model = tuple(trace.model[k] for k in acc)
    telemetry.ingest_columns(
        arrival_ms=trace.arrival_ms[acc_idx],
        start_ms=starts,
        finish_ms=finishes,
        request_id=trace.request_id[acc_idx],
        priority=trace.priority[acc_idx],
        batch_size=np.repeat(bs_np, bs_np),
        executor_index=np.repeat(bx_np, bs_np),
        executor_chip_ids=tuple(ex.chip_ids for ex in engine.executors),
        model=model,
        rejected_ids=trace.request_id[
            np.asarray(rej, dtype=np.int64)].tolist(),
        queue_times=np.asarray(ev_t, dtype=np.float64),
        queue_depths=np.asarray(ev_d, dtype=np.int64),
        batch_sizes=bs_np,
        chip_busy_ms=chip_busy)
    return telemetry
