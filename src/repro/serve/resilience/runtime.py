"""Per-run resilience runtime: the object the serve loop actually drives.

:class:`ResilienceRuntime` assembles one run's controllers from a frozen
:class:`~repro.serve.resilience.config.ResilienceConfig` plus the
engine-derived operating facts (service quantum, capacity, offered load,
replica count, attached brownout plan), and owns the mutable state the
event loop touches: the backoff heap of pending retries, the breaker
array, the degraded-mode flag.

Hot-loop discipline: every method the engine calls per event is plain
attribute arithmetic plus at most one heap op; telemetry events are
appended only on state *transitions* (breaker open/close, brownout
enter/exit) and all counters are published in bulk after the run under
``serve.resilience.*`` (see docs/resilience.md).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..trace import Request
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .brownout import BrownoutController
from .config import BrownoutPlan, ResilienceConfig
from .retry import RetryBudget

__all__ = ["ResilienceRuntime"]


class ResilienceRuntime:
    """One serve() call's resilience state (see module docstring)."""

    def __init__(self, config: ResilienceConfig, *, base_ms: float,
                 capacity_fps: float, offered: int, num_replicas: int,
                 brownout_plan: Optional[BrownoutPlan] = None):
        self.config = config
        self.admission = AdmissionController(config.admission, base_ms,
                                             capacity_fps)
        self.retry = RetryBudget(config.retry, offered, base_ms, config.seed)
        self.breakers: Tuple[CircuitBreaker, ...] = tuple(
            CircuitBreaker(config.breaker, base_ms)
            for _ in range(num_replicas))
        self.brownout = BrownoutController(config.brownout, base_ms)
        self.brownout_plan = brownout_plan if brownout_plan is not None \
            else BrownoutPlan(interval_scale=config.brownout.interval_scale,
                              fill_scale=config.brownout.fill_scale,
                              label="fallback-downshift")
        # Mutable hot-loop state.
        self.retry_heap: List[Tuple[float, int, Request]] = []
        self._retry_seq = 0
        self.open_episodes = 0      # replicas in an open breaker episode
        self.degraded = False       # brownout active right now
        self.degraded_completions = 0
        self.fail_open_batches = 0

    # ---- admission ----------------------------------------------------
    def admit(self, now_ms: float, delay_ms: float, priority: int) -> bool:
        return self.admission.admit(now_ms, delay_ms, priority)

    # ---- retries ------------------------------------------------------
    def try_schedule_retry(self, request: Request, now_ms: float) -> bool:
        """Reserve a budget slot and park ``request`` on the backoff
        heap; False (caller fails the request) when the budget says no."""
        attempt = self.retry.try_reserve(request.request_id)
        if attempt == 0:
            return False
        due = now_ms + self.retry.backoff_ms(attempt)
        self._retry_seq += 1
        heapq.heappush(self.retry_heap, (due, self._retry_seq, request))
        return True

    def pop_retry(self) -> Request:
        return heapq.heappop(self.retry_heap)[2]

    def next_retry_ms(self) -> float:
        return self.retry_heap[0][0]

    # ---- breakers -----------------------------------------------------
    def note_dispatch(self, replica: int, now_ms: float,
                      service_factor: float, telemetry) -> None:
        """Feed a dispatch outcome to the replica's breaker; records a
        telemetry event on open/close episode transitions."""
        delta = self.breakers[replica].on_dispatch(now_ms, service_factor)
        if delta:
            self.note_breaker_transition(replica, delta, now_ms, telemetry)

    def note_breaker_transition(self, replica: int, delta: int,
                                now_ms: float, telemetry) -> None:
        """Apply a non-zero :meth:`CircuitBreaker.on_dispatch` verdict.
        Split out so the engine can feed breakers directly (hot path)
        and only pay for this on actual episode transitions."""
        if delta > 0:
            self.open_episodes += 1
            telemetry.record_resilience({
                "kind": "breaker-open", "at_ms": now_ms,
                "replica": replica})
        else:
            self.open_episodes -= 1
            telemetry.record_resilience({
                "kind": "breaker-close", "at_ms": now_ms,
                "replica": replica})

    # ---- brownout -----------------------------------------------------
    def update_brownout(self, now_ms: float, delay_ms: float,
                        telemetry) -> None:
        transition = self.brownout.update(now_ms, delay_ms)
        if transition:
            self.note_brownout_transition(transition, now_ms, telemetry)

    def note_brownout_transition(self, transition: int, now_ms: float,
                                 telemetry) -> None:
        """Apply a non-zero :meth:`BrownoutController.update` verdict.
        Split out so the engine can drive the controller directly (hot
        path) and only pay for this on actual enter/exit transitions."""
        if transition > 0:
            self.degraded = True
            telemetry.record_resilience({
                "kind": "brownout-enter", "at_ms": now_ms,
                "plan": self.brownout_plan.label})
        else:
            self.degraded = False
            telemetry.record_resilience({
                "kind": "brownout-exit", "at_ms": now_ms,
                "plan": self.brownout_plan.label})

    # ---- end of run ---------------------------------------------------
    def finalize(self, now_ms: float, telemetry) -> None:
        """Close the run's books: settle brownout time accounting and
        attach the stats dict the summary/metrics layers publish."""
        self.brownout.finalize(now_ms)
        telemetry.resilience = self.stats()

    def stats(self) -> dict:
        """Flat float dict: the ``serve.resilience.*`` publication set
        and the ``resilience_*`` telemetry-summary keys."""
        adm = self.admission
        return {
            "admitted": float(adm.admitted),
            "admission_shed": float(adm.shed),
            "shed_queue_delay": float(adm.shed_delay),
            "shed_token_bucket": float(adm.shed_rate),
            "retry_budget": float(self.retry.budget),
            "retries_scheduled": float(self.retry.spent),
            "retry_exhausted": float(self.retry.exhausted),
            "breaker_opens": float(sum(b.opens for b in self.breakers)),
            "breaker_probes": float(sum(b.probes for b in self.breakers)),
            "breaker_closes": float(sum(b.closes for b in self.breakers)),
            "fail_open_batches": float(self.fail_open_batches),
            "brownout_entries": float(self.brownout.entries),
            "brownout_exits": float(self.brownout.exits),
            "brownout_ms": float(self.brownout.degraded_ms),
            "degraded_completions": float(self.degraded_completions),
        }
