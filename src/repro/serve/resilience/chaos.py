"""Seeded chaos harness: randomized-but-reproducible resilience drills.

``repro serve chaos --seed N`` composes a scenario x fault plan from a
single seed — one of the registered load scenarios at a random offered
load, plus 1-3 faults (chip kills, stragglers, cache wipes) placed in
disjoint time slots — and replays the *identical* trace and fault plan
against two fleets deployed off the same two-point search front:

- **resilience-on**: admission control, retry budgets, breakers, and a
  brownout plan derived from the front's energy-opt point
  (:func:`repro.serve.deploy.brownout_plan_from_search`);
- **resilience-off**: the bare engine (bounded queue + retry-once
  failover), same chips, same scheduler.

Every run is checked against the harness invariants: request
conservation (``completed + rejected + failed == offered``) on both
fleets, the on-fleet's availability floor, clean
:func:`repro.obs.validate.validate_prometheus` output including the
``serve_resilience_*`` cross-family rules, and breaker/brownout span
synthesis whenever the corresponding episodes occurred.  Everything —
scenario choice, fault placement, trace arrivals, retry jitter — derives
from the seed through ``SeedSequence``, so a chaos run is byte-identical
on replay; CI soaks two seeds and diffs the JSON (chaos-soak job).

The plan composer never kills the last live replica group: chaos probes
degraded serving, not guaranteed total outages (those have their own
deterministic tests).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...analysis.tables import Table
from ...obs.export import prometheus_text
from ...obs.metrics import MetricsRegistry
from ...obs.tracer import Tracer
from ...obs.validate import validate_prometheus
from ..scenarios import get_scenario
from ..scenarios.faults import parse_faults
from .config import ResilienceConfig

__all__ = [
    "CHAOS_MODEL",
    "CHAOS_SCENARIOS",
    "ChaosPlan",
    "two_point_front_payload",
    "build_chaos_fleets",
    "compose_plan",
    "run_chaos",
    "render_chaos",
]

# ResNet-50 is the chaos reference model: its latency-opt design needs
# 3 chips per copy and the energy-opt one 2, so a 6-chip fleet holds 2
# primary replica groups with a real 1.5x-capacity brownout plan — the
# smaller models' points all pack identically and give brownout nothing
# to buy (chip-granular packing; see docs/resilience.md).
CHAOS_MODEL = "resnet50"

CHAOS_SCENARIOS = ("flash-crowd", "bursty-mmpp", "diurnal",
                   "steady-poisson")

_FAULT_KINDS = ("chip-kill", "straggler", "cache-wipe")


@dataclass(frozen=True)
class ChaosPlan:
    """One seed's composed drill: scenario, load, and fault spec."""

    seed: int
    scenario: str
    rate_factor: float          # offered load, x primary fleet capacity
    num_requests: int
    faults: str                 # parse_faults() spec string
    trace_seed: int             # arrival-process seed (derived)

    def describe(self) -> str:
        return (f"seed {self.seed}: {self.scenario} @ "
                f"{self.rate_factor:g}x capacity, {self.num_requests} "
                f"requests, faults [{self.faults}]")


def two_point_front_payload(model: str = CHAOS_MODEL) -> Dict:
    """A two-point ``repro-search-result`` payload with honest metrics.

    Same shape as the search CLI's artifact: large epitomes
    (latency-opt) vs small ones (energy-opt), both measured by the
    simulator, so the chaos fleets deploy through the exact
    ``search -> serve`` path production would.
    """
    from ...core.designer import build_deployments, uniform_assignment
    from ...models.specs import get_network_spec
    from ...pim.simulator import simulate_network

    spec = get_network_spec(model)
    front = []
    for rows, cols in ((2048, 512), (256, 64)):
        assignment = uniform_assignment(spec, rows, cols)
        report = simulate_network(build_deployments(
            spec, assignment, weight_bits=9, activation_bits=9,
            use_wrapping=True))
        front.append({
            "genome": [list(assignment[layer.name])
                       if layer.name in assignment else None
                       for layer in spec],
            "crossbars": report.num_crossbars,
            "latency_ms": report.latency_ms,
            "energy_mj": report.energy_mj,
            "edp": report.latency_ms * report.energy_mj,
        })
    return {
        "schema": "repro-search-result",
        "schema_version": 1,
        "model": model,
        "objective": "pareto",
        "budget": None,
        "feasible": True,
        "precision": {"weight_bits": 9, "activation_bits": 9,
                      "use_wrapping": True},
        "layers": [layer.name for layer in spec],
        "best": front[0],
        "front": front,
    }


def build_chaos_fleets(payload: Optional[Dict] = None,
                       num_chips: Optional[int] = None,
                       replicas: int = 2) -> Dict[str, "object"]:
    """The A/B pair every chaos seed replays against.

    Both fleets serve the front's latency-opt point on identical chips
    and scheduler; only the on-fleet carries a brownout plan (derived
    from the energy-opt point) — its other controllers are armed per
    run via the ``resilience`` argument to serve().
    """
    from ..deploy import engine_from_search, load_search_result

    if payload is None:
        payload = two_point_front_payload()
    result = load_search_result(payload)
    on = engine_from_search(result, policy="latency-opt",
                            num_chips=num_chips, replicas=replicas,
                            brownout_policy="energy-opt")
    off = engine_from_search(result, policy="latency-opt",
                             num_chips=on.config.num_chips)
    return {"resilience-on": on, "resilience-off": off}


def compose_plan(seed: int, replica_chips: Sequence[int],
                 num_requests: int = 500) -> ChaosPlan:
    """Compose one seed's drill.

    All randomness flows from ``SeedSequence([seed])`` in a fixed draw
    order, so the plan is a pure function of the seed (and the fleet's
    replica layout).  Faults land in disjoint fractional time slots —
    one per fault — which keeps same-chip straggler windows from
    overlapping (parse_faults rejects those) and spreads adversity over
    the run.  A chip-kill that would take down the last live replica
    group is downgraded to a straggler on that group instead.
    """
    if not replica_chips:
        raise ValueError("compose_plan needs at least one replica chip")
    rng = np.random.default_rng(np.random.SeedSequence([int(seed)]))
    scenario = CHAOS_SCENARIOS[int(rng.integers(len(CHAOS_SCENARIOS)))]
    rate_factor = round(float(rng.uniform(0.7, 1.4)), 3)
    num_faults = int(rng.integers(1, 4))
    specs: List[str] = []
    killed: set = set()
    for slot in range(num_faults):
        lo = slot / num_faults
        width = 1.0 / num_faults
        kind = _FAULT_KINDS[int(rng.integers(len(_FAULT_KINDS)))]
        chip = int(replica_chips[int(rng.integers(len(replica_chips)))])
        t = round(lo + float(rng.uniform(0.05, 0.5)) * width, 4)
        factor = round(float(rng.uniform(2.5, 5.0)), 2)
        until = round(t + float(rng.uniform(0.1, 0.45)) * width, 4)
        if kind == "chip-kill" \
                and len(killed | {chip}) >= len(replica_chips):
            kind = "straggler"      # never compose a total outage
        if kind == "chip-kill":
            killed.add(chip)
            specs.append(f"chip-kill@t={t:g}:chip={chip}")
        elif kind == "straggler":
            specs.append(f"straggler@t={t:g}:chip={chip}"
                         f":factor={factor:g}:until={until:g}")
        else:
            specs.append(f"cache-wipe@t={t:g}")
    trace_seed = int(
        np.random.SeedSequence([int(seed), 1]).generate_state(1)[0])
    return ChaosPlan(seed=int(seed), scenario=scenario,
                     rate_factor=rate_factor, num_requests=num_requests,
                     faults=",".join(specs), trace_seed=trace_seed)


def _check_obs(label: str, seed: int, registry: MetricsRegistry,
               tracer: Tracer, telemetry, armed: bool) -> List[str]:
    """Per-run observability cross-checks (see module docstring)."""
    problems = []
    where = f"seed {seed} [{label}]"
    prom = prometheus_text(registry)
    problems.extend(f"{where}: metrics: {p}"
                    for p in validate_prometheus(prom))
    if armed:
        if "serve_resilience_admitted" not in prom:
            problems.append(
                f"{where}: serve_resilience_* metrics missing from an "
                "armed run")
        span_names = {s.name for s in tracer.spans}
        events = {e.get("kind") for e in telemetry.resilience_events}
        if "breaker-open" in events and "breaker" not in span_names:
            problems.append(
                f"{where}: breaker episodes occurred but no breaker "
                "span was synthesized")
        if "brownout-enter" in events and "brownout" not in span_names:
            problems.append(
                f"{where}: brownout episodes occurred but no brownout "
                "span was synthesized")
    return problems


def run_chaos(seeds: Sequence[int],
              num_requests: int = 500,
              num_chips: Optional[int] = None,
              payload: Optional[Dict] = None,
              availability_floor: float = 0.25
              ) -> Tuple[List[Dict], List[str]]:
    """Run the chaos drill for every seed; returns ``(rows, problems)``.

    One row per seed with the plan and both fleets' outcomes; an empty
    problem list means every invariant held.  The harness never raises
    on an invariant breach — the caller (CLI, tests, CI soak) decides
    what a non-empty problem list is worth.
    """
    fleets = build_chaos_fleets(payload, num_chips=num_chips)
    on, off = fleets["resilience-on"], fleets["resilience-off"]
    replica_chips = [ex.chip_ids[0] for ex in on.executors]
    rows: List[Dict] = []
    problems: List[str] = []
    for seed in seeds:
        plan = compose_plan(seed, replica_chips,
                            num_requests=num_requests)
        scenario = get_scenario(plan.scenario)
        trace = scenario.to_trace(
            plan.num_requests,
            rate_rps=plan.rate_factor * on.plan.throughput_fps,
            seed=plan.trace_seed)
        faults = parse_faults(plan.faults)
        row: Dict = dict(asdict(plan))
        for label, engine, config in (
                ("on", on, ResilienceConfig(seed=plan.seed)),
                ("off", off, None)):
            registry = MetricsRegistry()
            tracer = Tracer()
            telemetry = engine.serve(trace, tracer=tracer,
                                     metrics=registry, faults=faults,
                                     resilience=config)
            offered = (telemetry.num_completed + telemetry.num_rejected
                       + telemetry.num_failed)
            if offered != plan.num_requests:
                problems.append(
                    f"seed {seed} [{label}]: conservation violated — "
                    f"completed {telemetry.num_completed} + rejected "
                    f"{telemetry.num_rejected} + failed "
                    f"{telemetry.num_failed} = {offered} "
                    f"!= offered {plan.num_requests}")
            problems.extend(_check_obs(label, seed, registry, tracer,
                                       telemetry, armed=config is not None))
            row[f"completed_{label}"] = telemetry.num_completed
            row[f"rejected_{label}"] = telemetry.num_rejected
            row[f"failed_{label}"] = telemetry.num_failed
            row[f"availability_{label}"] = round(
                telemetry.availability(), 6)
            row[f"p99_ms_{label}"] = round(
                telemetry.latency_percentile(99.0), 3)
            if config is not None and telemetry.resilience is not None:
                stats = telemetry.resilience
                row["admission_shed"] = int(stats["admission_shed"])
                row["retries_scheduled"] = int(stats["retries_scheduled"])
                row["breaker_opens"] = int(stats["breaker_opens"])
                row["brownout_ms"] = round(stats["brownout_ms"], 3)
        if row["availability_on"] < availability_floor:
            problems.append(
                f"seed {seed}: resilience-on availability "
                f"{row['availability_on']:.3f} is below the floor "
                f"{availability_floor:g}")
        rows.append(row)
    return rows, problems


def render_chaos(rows: Sequence[Dict],
                 title: str = "chaos drill: resilience on vs off") -> str:
    """Paper-style table of chaos rows (one per seed)."""
    table = Table(["seed", "scenario", "load", "faults",
                   "avail(on)", "avail(off)", "p99 on/off (ms)",
                   "shed", "retries", "brownout (ms)"], title=title)
    for row in rows:
        table.add_row(
            row["seed"], row["scenario"], row["rate_factor"],
            row["faults"],
            row["availability_on"], row["availability_off"],
            f"{row['p99_ms_on']:g}/{row['p99_ms_off']:g}",
            row.get("admission_shed", 0),
            row.get("retries_scheduled", 0),
            row.get("brownout_ms", 0.0))
    return table.render()


def chaos_json(rows: Sequence[Dict], problems: Sequence[str]) -> str:
    """The machine-readable chaos artifact (stable key order, so a
    same-seed re-run is byte-identical — the CI soak diffs this)."""
    return json.dumps({"schema": "repro-chaos-result",
                       "schema_version": 1,
                       "rows": list(rows),
                       "problems": list(problems)},
                      indent=2, sort_keys=True)
