"""Per-replica-group circuit breakers (closed -> open -> half-open).

The engine observes each replica's service factor at dispatch time (the
straggler machinery already computes it); the breaker turns that signal
into a routing decision.  ``trip_after`` consecutive slow dispatches
open the breaker — the replica stops receiving batches for a cooldown —
then exactly one probe batch is let through (half-open).  A healthy
probe closes the breaker; a slow one re-opens it for another cooldown,
so a replica inside a long straggler window is probed once per cooldown
instead of poisoning every batch's tail.

The engine fails open when every live replica is breaker-blocked: the
breaker trades *where* work runs, never *whether* it runs.
"""

from __future__ import annotations

from .config import BreakerPolicy

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_CLOSED, _OPEN, _HALF_OPEN = 0, 1, 2
_STATE_NAMES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """Breaker state machine for one replica group (simulated ms)."""

    def __init__(self, policy: BreakerPolicy, base_ms: float):
        self.slow_factor = policy.slow_factor
        self.trip_after = policy.trip_after
        self.cooldown_ms = policy.cooldown_factor * base_ms
        self._state = _CLOSED
        self.slow_streak = 0
        self.open_until_ms = 0.0
        self.opens = 0
        self.probes = 0
        self.closes = 0

    @property
    def state(self) -> str:
        return _STATE_NAMES[self._state]

    @property
    def is_open(self) -> bool:
        """In an open episode (open or awaiting its probe's verdict)."""
        return self._state != _CLOSED

    def allows(self, now_ms: float) -> bool:
        """May the engine dispatch to this replica at ``now_ms``?

        Called from the hot loop's executor filter.  An expired cooldown
        transitions open -> half-open as a side effect, so the very call
        that re-admits the replica marks its next dispatch as the probe.
        """
        if self._state == _CLOSED:
            return True
        if self._state == _OPEN:
            if now_ms >= self.open_until_ms - 1e-9:
                self._state = _HALF_OPEN
                return True
            return False
        return True     # half-open: the probe dispatch may proceed

    def on_dispatch(self, now_ms: float, service_factor: float) -> int:
        """Feed one dispatch's observed service factor.

        Returns +1 when this dispatch *opened* a new breaker episode,
        -1 when it closed one (healthy probe), 0 otherwise — the engine
        uses the transitions to record breaker span events.  A dispatch
        that reaches an OPEN breaker (the engine's fail-open path when
        every live replica is blocked) is ignored: the cooldown clock
        keeps running toward the probe.
        """
        slow = service_factor >= self.slow_factor - 1e-12
        if self._state == _HALF_OPEN:
            self.probes += 1
            if slow:
                self.opens += 1
                self._state = _OPEN
                self.open_until_ms = now_ms + self.cooldown_ms
                return 0        # episode continues
            self._state = _CLOSED
            self.slow_streak = 0
            self.closes += 1
            return -1
        if self._state == _OPEN:
            return 0
        if slow:
            self.slow_streak += 1
            if self.slow_streak >= self.trip_after:
                self.opens += 1
                self._state = _OPEN
                self.open_until_ms = now_ms + self.cooldown_ms
                return 1
        else:
            self.slow_streak = 0
        return 0
