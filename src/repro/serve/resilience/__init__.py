"""repro.serve.resilience — overload and fault resilience for serving.

Four deterministic control loops threaded through the serve engine
(docs/resilience.md), plus a seeded chaos harness:

- :mod:`~repro.serve.resilience.admission` — CoDel-style queue-delay
  shedding + priority-aware token bucket in front of the scheduler;
- :mod:`~repro.serve.resilience.retry` — failover retry budgets with
  seeded exponential backoff (replaces the engine's retry-once set);
- :mod:`~repro.serve.resilience.breaker` — per-replica-group circuit
  breakers driven by the straggler service-factor signal;
- :mod:`~repro.serve.resilience.brownout` — Pareto-degraded serving:
  under sustained overload the engine down-shifts to a cheaper
  operating point off the deployed search front and shifts back on
  recovery;
- :mod:`~repro.serve.resilience.chaos` — ``repro serve chaos --seed N``:
  randomized-but-reproducible scenario x fault plans replayed against
  resilience-on and resilience-off fleets with invariant checks
  (imported lazily by the CLI; not re-exported here to keep this
  package importable from the engine without cycles).

Everything is deterministic given :attr:`ResilienceConfig.seed`, so
resilience-enabled runs keep the CI matrix's byte-identical contract.
"""

from .admission import AdmissionController
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .brownout import BrownoutController
from .config import (
    AdmissionPolicy,
    BreakerPolicy,
    BrownoutPlan,
    BrownoutPolicy,
    ResilienceConfig,
    RetryPolicy,
)
from .retry import RetryBudget
from .runtime import ResilienceRuntime

__all__ = [
    "AdmissionPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "BrownoutPolicy",
    "BrownoutPlan",
    "ResilienceConfig",
    "AdmissionController",
    "RetryBudget",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BrownoutController",
    "ResilienceRuntime",
]
