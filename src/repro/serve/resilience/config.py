"""Resilience policy knobs: one frozen config per control loop.

Every policy is expressed in *service quanta* rather than absolute
milliseconds: the engine derives a base quantum ``base_ms = pipeline
fill latency + batching window`` from the deployment it actually serves,
and each controller scales its thresholds off that.  A config therefore
transfers unchanged between a 4 ms ResNet-18 fleet and a 50 ms ResNet-50
fleet — the same reason the serve CLI derives its default SLO from the
plan instead of hard-coding a number.

All policies are deterministic given :attr:`ResilienceConfig.seed`
(retry jitter is the only randomized quantity, drawn from a
``SeedSequence``-derived generator) so a resilience-enabled run keeps
the CI scenario matrix's same-seed byte-identical contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "AdmissionPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "BrownoutPolicy",
    "BrownoutPlan",
    "ResilienceConfig",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """CoDel-style queue-delay controller + token bucket in front of
    :meth:`~repro.serve.scheduler.MicroBatchScheduler.submit`.

    The delay controller targets ``target_factor`` service quanta of
    queue sojourn; once the delay has stayed above target for one
    control interval (``interval_factor`` quanta) it sheds unprotected
    arrivals at the CoDel rate (interval / sqrt(drop count)) until the
    delay recovers.  The token bucket caps the sustained admitted rate
    at ``rate_headroom`` x the plan's capacity with ``burst`` tokens of
    slack — an instantaneous spike is clipped even before any queueing
    delay builds.  Requests with ``priority >= protect_priority`` bypass
    both sheds (they can still be rejected by the bounded queue itself).
    """

    target_factor: float = 3.0      # sojourn target, in service quanta
    interval_factor: float = 4.0    # CoDel control interval, in quanta
    rate_headroom: float = 1.25     # token refill rate, x capacity
    burst: int = 32                 # bucket depth (requests)
    protect_priority: int = 1       # >= this priority is never shed

    def __post_init__(self):
        if self.target_factor <= 0:
            raise ValueError("admission: target_factor must be > 0")
        if self.interval_factor <= 0:
            raise ValueError("admission: interval_factor must be > 0")
        if self.rate_headroom <= 0:
            raise ValueError("admission: rate_headroom must be > 0")
        if self.burst < 1:
            raise ValueError("admission: burst must be >= 1")


@dataclass(frozen=True)
class RetryPolicy:
    """Failover retry budget with exponential backoff.

    The budget is ``ceil(budget_fraction x offered load)`` retry slots
    per run; each in-flight request retracted by a chip kill may be
    rescheduled up to ``max_attempts`` times while slots remain.  The
    ``k``-th attempt waits ``base_factor x 2^(k-1)`` service quanta
    (capped at ``cap_factor`` quanta) times a seeded jitter multiplier
    drawn uniformly from ``[1, 1 + jitter)`` — backoff spreads the
    retry wave out of the post-fault queue spike instead of slamming it
    back into a full queue the way the old retry-once path did.
    """

    budget_fraction: float = 0.1
    max_attempts: int = 3
    base_factor: float = 1.0        # first backoff, in service quanta
    cap_factor: float = 16.0        # backoff ceiling, in quanta
    jitter: float = 0.5             # multiplier spread, [1, 1 + jitter)

    def __post_init__(self):
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ValueError("retry: budget_fraction must be in (0, 1]")
        if self.max_attempts < 1:
            raise ValueError("retry: max_attempts must be >= 1")
        if self.base_factor <= 0:
            raise ValueError("retry: base_factor must be > 0")
        if self.cap_factor < self.base_factor:
            raise ValueError("retry: cap_factor must be >= base_factor")
        if self.jitter < 0:
            raise ValueError("retry: jitter must be >= 0")


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-replica-group circuit breaker (closed -> open -> half-open).

    A replica whose observed service factor reaches ``slow_factor`` on
    ``trip_after`` consecutive dispatches opens its breaker: the engine
    stops routing batches to it for ``cooldown_factor`` service quanta,
    then lets exactly one probe batch through.  A healthy probe closes
    the breaker; a slow one re-opens it for another cooldown.  When
    every live replica's breaker is open the engine fails open and
    serves anyway — the breaker protects the tail only while a healthy
    alternative exists, it never converts degraded capacity into an
    outage.
    """

    slow_factor: float = 2.0        # service factor counted as sick
    trip_after: int = 2             # consecutive slow dispatches to open
    cooldown_factor: float = 8.0    # open hold time, in service quanta

    def __post_init__(self):
        if self.slow_factor <= 1.0:
            raise ValueError("breaker: slow_factor must be > 1")
        if self.trip_after < 1:
            raise ValueError("breaker: trip_after must be >= 1")
        if self.cooldown_factor <= 0:
            raise ValueError("breaker: cooldown_factor must be > 0")


@dataclass(frozen=True)
class BrownoutPolicy:
    """Hysteresis for the Pareto down-shift (brownout) controller.

    The engine enters brownout when queue sojourn has stayed at or above
    ``enter_factor`` service quanta for ``enter_hold_factor`` quanta,
    and exits once it has stayed at or below ``exit_factor`` quanta for
    ``exit_hold_factor`` quanta — enter fast, exit slow, so the mode
    cannot flap on a bursty arrival process.  What it down-shifts *to*
    is a :class:`BrownoutPlan`: attached from a deployed search front
    via :func:`repro.serve.deploy.engine_from_search` (brownout_policy),
    or synthesized from ``interval_scale`` / ``fill_scale`` below when
    the engine serves a spec/manifest deployment with no front.
    """

    enter_factor: float = 6.0       # sojourn that triggers entry
    exit_factor: float = 2.0        # sojourn that allows exit
    enter_hold_factor: float = 2.0  # how long entry must be sustained
    exit_hold_factor: float = 6.0   # how long recovery must hold
    interval_scale: float = 0.7     # fallback degraded point: capacity
    fill_scale: float = 1.3         # fallback degraded point: latency

    def __post_init__(self):
        if self.enter_factor <= self.exit_factor:
            raise ValueError(
                "brownout: enter_factor must exceed exit_factor "
                "(hysteresis needs a dead band)")
        if self.exit_factor < 0:
            raise ValueError("brownout: exit_factor must be >= 0")
        if self.enter_hold_factor < 0 or self.exit_hold_factor < 0:
            raise ValueError("brownout: hold factors must be >= 0")
        if self.interval_scale <= 0:
            raise ValueError("brownout: interval_scale must be > 0")
        if self.fill_scale <= 0:
            raise ValueError("brownout: fill_scale must be > 0")


@dataclass(frozen=True)
class BrownoutPlan:
    """The degraded operating mode brownout down-shifts the engine to.

    ``interval_scale`` multiplies every executor's image interval — the
    aggregate-capacity model of re-packing the fleet onto the cheaper
    point's denser shard plan (a point whose copy needs fewer chips
    fits more replica groups on the same fleet, so scale < 1 means more
    throughput).  ``fill_scale`` multiplies the pipeline fill latency —
    the per-image price of the cheaper point.  ``point`` keeps the
    originating search-front operating point when the plan came off a
    deployed front (:func:`repro.serve.deploy.engine_from_search`);
    ``None`` for synthesized fallback plans.
    """

    interval_scale: float
    fill_scale: float
    label: str = "degraded"
    point: Optional[object] = None  # OperatingPoint, when front-derived

    def __post_init__(self):
        if self.interval_scale <= 0:
            raise ValueError("brownout plan: interval_scale must be > 0")
        if self.fill_scale <= 0:
            raise ValueError("brownout plan: fill_scale must be > 0")


@dataclass(frozen=True)
class ResilienceConfig:
    """The whole resilience subsystem, one frozen knob bundle.

    Passed to :meth:`repro.serve.engine.ServingEngine.serve` (or set on
    :class:`~repro.serve.engine.ServingConfig`) to arm admission
    control, retry budgets, circuit breakers and brownout for a run;
    ``None`` (the default everywhere) keeps the fast path bit-for-bit
    identical to previous releases.
    """

    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    brownout: BrownoutPolicy = field(default_factory=BrownoutPolicy)
    seed: int = 0
