"""Brownout: hysteresis controller for the Pareto down-shift.

Decides *when* the engine operates on its degraded
:class:`~repro.serve.resilience.config.BrownoutPlan`; the plan itself
(what the degraded mode costs and buys) is attached by
:func:`repro.serve.deploy.engine_from_search` from a deployed search
front, or synthesized from the policy's fallback scales.

The controller watches the same queue-sojourn signal as admission
control.  Entry requires the delay to *sustain* above ``enter_factor``
quanta for ``enter_hold_factor`` quanta; exit requires it to sustain
below ``exit_factor`` for ``exit_hold_factor``.  The dead band between
the two thresholds plus the asymmetric holds (enter fast, exit slow)
keep a bursty arrival process from flapping the operating point — every
flap is a real-world recompile/re-route.
"""

from __future__ import annotations

from .config import BrownoutPolicy

__all__ = ["BrownoutController"]


class BrownoutController:
    """Enter/exit state machine for degraded-mode serving."""

    def __init__(self, policy: BrownoutPolicy, base_ms: float):
        self.enter_ms = policy.enter_factor * base_ms
        self.exit_ms = policy.exit_factor * base_ms
        self.enter_hold_ms = policy.enter_hold_factor * base_ms
        self.exit_hold_ms = policy.exit_hold_factor * base_ms
        self.active = False
        self._over_since_ms = -1.0      # -1.0 = not currently over
        self._under_since_ms = -1.0
        self._entered_at_ms = 0.0
        self.entries = 0
        self.exits = 0
        self.degraded_ms = 0.0

    def update(self, now_ms: float, delay_ms: float) -> int:
        """Feed one engine event; returns +1 on entry, -1 on exit, 0."""
        if not self.active:
            if delay_ms >= self.enter_ms - 1e-9:
                if self._over_since_ms < 0.0:
                    self._over_since_ms = now_ms
                if now_ms - self._over_since_ms >= self.enter_hold_ms - 1e-9:
                    self.active = True
                    self.entries += 1
                    self._entered_at_ms = now_ms
                    self._under_since_ms = -1.0
                    return 1
            else:
                self._over_since_ms = -1.0
            return 0
        if delay_ms <= self.exit_ms + 1e-9:
            if self._under_since_ms < 0.0:
                self._under_since_ms = now_ms
            if now_ms - self._under_since_ms >= self.exit_hold_ms - 1e-9:
                self.active = False
                self.exits += 1
                self.degraded_ms += now_ms - self._entered_at_ms
                self._over_since_ms = -1.0
                return -1
        else:
            self._under_since_ms = -1.0
        return 0

    def finalize(self, now_ms: float) -> None:
        """Close the books at end of run: a still-active brownout counts
        its elapsed window into ``degraded_ms`` (no exit is recorded —
        the run simply ended browned out)."""
        if self.active:
            self.degraded_ms += max(0.0, now_ms - self._entered_at_ms)
            self._entered_at_ms = now_ms
