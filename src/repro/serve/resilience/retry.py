"""Retry budgets with seeded exponential backoff.

Replaces the engine's retry-once failover set: a chip kill retracts the
victim replica's in-flight requests, and each retraction asks the budget
for a retry slot.  Granted slots reschedule the request at ``now +
backoff`` instead of resubmitting into the (usually spiking) post-fault
queue immediately; denied slots fail the request, preserving the
``completed + rejected + failed == offered`` conservation invariant.

The budget is global per run (``ceil(budget_fraction x offered)``) with
a per-request attempt cap, so a retry storm can never amplify offered
load unboundedly — the classic retry-budget argument.  Backoff jitter is
the subsystem's only randomness and comes from the caller's seeded
generator, keeping whole runs byte-identical per seed.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from .config import RetryPolicy

__all__ = ["RetryBudget"]


class RetryBudget:
    """Per-run failover retry accounting (see module docstring)."""

    def __init__(self, policy: RetryPolicy, offered: int, base_ms: float,
                 seed: int):
        self.policy = policy
        self.budget = int(math.ceil(policy.budget_fraction * offered)) \
            if offered > 0 else 0
        self.base_ms = policy.base_factor * base_ms
        self.cap_ms = policy.cap_factor * base_ms
        # The generator is built on first use: fault-free runs never pay
        # for PRNG construction (it is a measurable slice of the <5%
        # arming budget on short traces).
        self._seed = seed
        self._rng: np.random.Generator = None
        self.spent = 0
        self.exhausted = 0
        self.attempts: Dict[int, int] = {}

    @property
    def remaining(self) -> int:
        return self.budget - self.spent

    def try_reserve(self, request_id: int) -> int:
        """Reserve one retry slot for ``request_id``.

        Returns the attempt number (1-based) on success, 0 when the run
        budget is spent or the request hit its attempt cap — the caller
        must then record the request as failed.
        """
        attempt = self.attempts.get(request_id, 0) + 1
        if self.spent >= self.budget or attempt > self.policy.max_attempts:
            self.exhausted += 1
            return 0
        self.attempts[request_id] = attempt
        self.spent += 1
        return attempt

    def backoff_ms(self, attempt: int) -> float:
        """Jittered exponential backoff for the ``attempt``-th retry:
        ``min(base x 2^(attempt-1), cap) x U[1, 1+jitter)``."""
        if self._rng is None:
            self._rng = np.random.default_rng(
                np.random.SeedSequence([self._seed]))
        raw = self.base_ms * (2.0 ** (attempt - 1))
        if raw > self.cap_ms:
            raw = self.cap_ms
        return raw * (1.0 + self.policy.jitter * float(self._rng.random()))
