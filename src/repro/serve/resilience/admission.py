"""Adaptive admission control: CoDel-style delay shedding + token bucket.

The controller sits in front of the scheduler's bounded queue and makes
one decision per arrival: admit, or shed now.  Two complementary
mechanisms (see :class:`~repro.serve.resilience.config.AdmissionPolicy`):

- the **delay controller** watches the queue's sojourn time (now minus
  the oldest queued arrival — the same anchor the batching window uses).
  Like CoDel it keeps a ``first_above`` timestamp: only when the delay
  has stayed at or above target for a full control interval does it
  start shedding, and then at the classic ``interval / sqrt(count)``
  cadence that tightens while overload persists and resets the moment
  the delay recovers below target.  This sheds the *sustained* overload
  a token bucket cannot see.
- the **token bucket** caps the admitted rate at ``rate_headroom`` x
  capacity with ``burst`` tokens of slack.  It clips an instantaneous
  flash-crowd spike before any queueing delay has built — the case the
  delay controller is structurally blind to (CoDel needs an interval of
  sustained delay before it acts).

Both sheds are deterministic functions of the arrival sequence: no
randomness, so a seeded trace replays to byte-identical decisions.
Requests at or above ``protect_priority`` bypass both mechanisms.

Everything is called from the engine's hot loop, so the controller is
plain attribute arithmetic — no allocation, no observability calls; its
counters are published in bulk after the run (``serve.resilience.*``).
"""

from __future__ import annotations

import math

from .config import AdmissionPolicy

__all__ = ["AdmissionController"]


class AdmissionController:
    """One per-run admission gate (simulated milliseconds throughout)."""

    def __init__(self, policy: AdmissionPolicy, base_ms: float,
                 capacity_fps: float):
        self.policy = policy
        self.target_ms = policy.target_factor * base_ms
        self.interval_ms = policy.interval_factor * base_ms
        self.protect_priority = policy.protect_priority
        # Token bucket: refill in tokens/ms, clamped at `burst`.
        self.rate_per_ms = policy.rate_headroom * capacity_fps / 1000.0
        self.burst = float(policy.burst)
        self.tokens = float(policy.burst)
        self.last_refill_ms = 0.0
        self._refilled = False
        # CoDel state: -1.0 is the "not above target" sentinel.
        self.first_above_ms = -1.0
        self.dropping = False
        self.drop_count = 0
        self.drop_next_ms = 0.0
        # Outcome counters (bulk-published post-run).
        self.admitted = 0
        self.shed_delay = 0
        self.shed_rate = 0
        self.protected_bypass = 0

    @property
    def shed(self) -> int:
        """Total arrivals shed by either mechanism."""
        return self.shed_delay + self.shed_rate

    @property
    def overloaded(self) -> bool:
        """True while the delay controller is actively shedding — the
        sustained-overload signal the brownout controller keys off."""
        return self.dropping

    def admit(self, now_ms: float, delay_ms: float, priority: int) -> bool:
        """Admit-or-shed decision for one arrival at ``now_ms`` given the
        queue's current sojourn ``delay_ms``.

        The healthy case (delay under target, token available) is the
        first exit: one refill, two compares, one decrement — this runs
        once per offered request against the <5% arming budget.
        """
        tokens = self.tokens
        if self._refilled:
            tokens += (now_ms - self.last_refill_ms) * self.rate_per_ms
            if tokens > self.burst:
                tokens = self.burst
        else:
            self._refilled = True
        self.last_refill_ms = now_ms

        if delay_ms < self.target_ms:
            self.first_above_ms = -1.0
            self.dropping = False
            if tokens >= 1.0:
                self.tokens = tokens - 1.0
                self.admitted += 1
                return True
            self.tokens = tokens
            if priority >= self.protect_priority:
                self.protected_bypass += 1
                self.admitted += 1
                return True
            self.shed_rate += 1
            return False

        self.tokens = tokens
        if self.first_above_ms < 0.0:
            self.first_above_ms = now_ms + self.interval_ms
        elif not self.dropping and now_ms >= self.first_above_ms - 1e-9:
            self.dropping = True
            self.drop_count = 0
            self.drop_next_ms = now_ms

        protected = priority >= self.protect_priority
        if self.dropping and not protected \
                and now_ms >= self.drop_next_ms - 1e-9:
            self.drop_count += 1
            self.drop_next_ms = now_ms \
                + self.interval_ms / math.sqrt(self.drop_count)
            self.shed_delay += 1
            return False

        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            self.admitted += 1
            return True
        if protected:
            self.protected_bypass += 1
            self.admitted += 1
            return True
        self.shed_rate += 1
        return False
