"""Multi-chip sharding: place a deployed network onto N simulated chips.

Two physical layouts, mirroring how weight-stationary PIM actually scales:

- **replica** — every chip programs the full network; throughput scales
  linearly with chip count (weights are stationary, so replication costs
  only silicon, not bandwidth).  Requires the whole deployment to fit one
  chip's tile budget (:attr:`~repro.pim.config.HardwareConfig.tiles_per_chip`).
- **layer** — the layer pipeline is cut into contiguous shards, one chip
  per shard; consecutive shards hand feature maps across an inter-chip
  link priced off the NoC LUT costs.  This is the capacity escape hatch:
  a network too big for one chip is split so each shard fits, and the
  split chosen is the one that maximizes steady-state
  ``pipelined_throughput_fps`` (balanced stage intervals, cheap
  boundaries) among fitting partitions.

``plan_sharding(mode="auto")`` composes both: it finds the minimum chips
per copy (1 if the network fits a single chip), then replicates that group
across the provisioned chips — e.g. 4 chips holding 2 replicas of a
2-chip layer pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..pim.accelerator import build_floorplan, chips_required
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.noc import layer_tiles
from ..pim.simulator import LayerReport, NetworkReport

__all__ = ["ChipShard", "ShardPlan", "plan_sharding", "partition_layers",
           "recommended_chips"]

# Off-chip serdes is slower than the on-chip mesh; boundary traffic pays
# this multiple of the per-link NoC latency.
INTERCHIP_LATENCY_FACTOR = 8.0


@dataclass(frozen=True)
class ChipShard:
    """One chip's slice of a replica group.

    ``num_tiles`` follows the NoC placement convention (layers never share
    a tile, see :func:`repro.pim.noc.place_tiles`) — the same accounting
    the partitioner's capacity checks use.
    """

    chip_index: int                 # position within the replica group
    layer_names: Tuple[str, ...]
    latency_ms: float               # per-image fill through this shard
    image_interval_ms: float        # shard bottleneck stage + datapath cost
    num_tiles: int
    num_crossbars: int
    utilization: float              # crossbar cell utilization
    area_mm2: float                 # silicon area (ChipFloorplan pricing)


@dataclass(frozen=True)
class ShardPlan:
    """How a deployment occupies ``num_chips`` chips."""

    mode: str                       # "replica" | "layer"
    num_chips: int                  # chips provisioned
    chips_per_replica: int
    num_replicas: int
    shards: Tuple[ChipShard, ...]   # one replica group's shards, in order
    per_image_latency_ms: float     # fill through one group incl. transfers
    image_interval_ms: float        # steady-state interval of one group
    interchip_latency_ms: float     # per-image boundary transfer total
    fits: bool                      # every shard within tiles_per_chip

    @property
    def throughput_fps(self) -> float:
        """Aggregate steady-state images/second across replicas."""
        if self.image_interval_ms <= 0:
            return float("inf")
        return self.num_replicas * 1000.0 / self.image_interval_ms

    @property
    def chips_used(self) -> int:
        return self.chips_per_replica * self.num_replicas

    def replica_groups(self) -> Tuple[Tuple[int, ...], ...]:
        """Chip ids per replica group, in replica order.

        This is the placement contract the engine's executors and the
        fault-injection layer share: chip ``k`` belongs to replica
        ``k // chips_per_replica``, so a chip failure takes down exactly
        one replica group and the survivors keep serving.
        """
        groups = []
        chip = 0
        for _ in range(self.num_replicas):
            groups.append(tuple(range(chip, chip + self.chips_per_replica)))
            chip += self.chips_per_replica
        return tuple(groups)

    def replica_of_chip(self, chip_id: int) -> Optional[int]:
        """The replica group owning ``chip_id`` (None for a provisioned
        chip outside every group — replication remainders)."""
        if 0 <= chip_id < self.chips_used:
            return chip_id // self.chips_per_replica
        return None

    def summary(self) -> str:
        shard_text = ", ".join(
            f"chip{s.chip_index}:{len(s.layer_names)}L/{s.num_tiles}T"
            for s in self.shards)
        return (f"{self.mode} sharding: {self.num_replicas} replica(s) x "
                f"{self.chips_per_replica} chip(s) on {self.num_chips} "
                f"provisioned ({shard_text}); "
                f"interval {self.image_interval_ms:.3f} ms, "
                f"fill {self.per_image_latency_ms:.3f} ms, "
                f"throughput {self.throughput_fps:.1f} fps"
                + ("" if self.fits else " [OVER CAPACITY]"))


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------

def _sub_report(report: NetworkReport,
                layers: Sequence[LayerReport]) -> NetworkReport:
    return NetworkReport(layers=list(layers), lut=report.lut)


def _layer_tiles(layer: LayerReport, config: HardwareConfig) -> int:
    return layer_tiles(layer.num_crossbars, config)


def partition_layers(report: NetworkReport, num_parts: int,
                     config: HardwareConfig = DEFAULT_CONFIG,
                     max_tiles: Optional[int] = None) -> List[List[int]]:
    """Contiguously partition layers into ``num_parts`` balanced shards.

    Classic linear-partition DP minimizing the maximum shard latency (the
    stage time that bounds pipelined throughput), with shards exceeding
    ``max_tiles`` forbidden when a feasible split exists.  Returns lists of
    layer indices; parts are never empty (``num_parts`` must not exceed
    the layer count).
    """
    n = len(report.layers)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if num_parts > n:
        raise ValueError(f"cannot split {n} layers into {num_parts} shards")

    lat = [layer.latency_ns / 1e6 for layer in report.layers]
    tiles = [_layer_tiles(layer, config) for layer in report.layers]
    prefix_lat = [0.0]
    prefix_tiles = [0]
    for i in range(n):
        prefix_lat.append(prefix_lat[-1] + lat[i])
        prefix_tiles.append(prefix_tiles[-1] + tiles[i])

    def seg_cost(i: int, j: int) -> float:
        """Stage cost of layers [i, j); inf when it busts the tile budget."""
        cost = prefix_lat[j] - prefix_lat[i]
        if max_tiles is not None and prefix_tiles[j] - prefix_tiles[i] > max_tiles:
            return float("inf")
        return cost

    INF = float("inf")
    # best[k][j]: minimal max-shard-cost splitting the first j layers into k
    best = [[INF] * (n + 1) for _ in range(num_parts + 1)]
    cut = [[0] * (n + 1) for _ in range(num_parts + 1)]
    best[0][0] = 0.0
    for k in range(1, num_parts + 1):
        for j in range(k, n + 1):
            for i in range(k - 1, j):
                if best[k - 1][i] == INF:
                    continue
                cand = max(best[k - 1][i], seg_cost(i, j))
                if cand < best[k][j]:
                    best[k][j] = cand
                    cut[k][j] = i
    if best[num_parts][n] == INF and max_tiles is not None:
        # No fitting split exists (some single layer busts the budget);
        # fall back to the unconstrained balanced partition.
        return partition_layers(report, num_parts, config, max_tiles=None)

    bounds: List[int] = [n]
    j = n
    for k in range(num_parts, 0, -1):
        j = cut[k][j]
        bounds.append(j)
    bounds.reverse()
    return [list(range(bounds[k], bounds[k + 1]))
            for k in range(num_parts)]


def _min_fitting_parts(report: NetworkReport, config: HardwareConfig,
                       max_parts: int) -> Optional[int]:
    """Smallest contiguous shard count where every shard fits a chip
    (:func:`repro.pim.accelerator.chips_required`).  None when even
    single-layer shards bust the budget or more than ``max_parts`` chips
    would be needed."""
    budget = config.tiles_per_chip
    if any(_layer_tiles(layer, config) > budget for layer in report.layers):
        return None
    parts = chips_required(report, config)
    return parts if parts <= max_parts else None


def recommended_chips(report: NetworkReport,
                      config: HardwareConfig = DEFAULT_CONFIG,
                      replicas: int = 1) -> int:
    """Fleet size derived from a deployment's crossbar demand: the minimum
    chips one full copy needs (tile accounting via
    :func:`repro.pim.accelerator.chips_required`), times ``replicas``.

    This is how ``repro serve --from-search`` provisions when the operator
    does not pin ``--num-chips``: the searched assignment decides its own
    capacity floor, and replicas scale throughput from there.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return chips_required(report, config) * replicas


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------

def _boundary_transfer_ms(last_layer: LayerReport,
                          lut: ComponentLUT) -> float:
    """Per-image feature-map handoff across one inter-chip boundary."""
    values = last_layer.positions * last_layer.deployment.spec.out_channels
    ns = values / lut.noc_bandwidth_values_per_ns * INTERCHIP_LATENCY_FACTOR
    return ns * lut.latency_scale / 1e6


def _build_shards(report: NetworkReport, parts: List[List[int]],
                  config: HardwareConfig) -> Tuple[ChipShard, ...]:
    shards: List[ChipShard] = []
    for chip_index, indices in enumerate(parts):
        layers = [report.layers[i] for i in indices]
        sub = _sub_report(report, layers)
        floorplan = build_floorplan(sub, config, report.lut)
        shards.append(ChipShard(
            chip_index=chip_index,
            layer_names=tuple(layer.name for layer in layers),
            latency_ms=sub.latency_ms,
            image_interval_ms=sub.image_interval_ms,
            num_tiles=sum(_layer_tiles(layer, config) for layer in layers),
            num_crossbars=sub.num_crossbars,
            utilization=sub.utilization,
            area_mm2=floorplan.total_area_mm2,
        ))
    return tuple(shards)


def _group_plan(report: NetworkReport, parts: List[List[int]],
                num_chips: int, mode: str,
                config: HardwareConfig, lut: ComponentLUT) -> ShardPlan:
    """Assemble a plan from one replica group's contiguous partition."""
    shards = _build_shards(report, parts, config)
    chips_per_replica = len(parts)
    num_replicas = max(1, num_chips // chips_per_replica)

    transfers = [_boundary_transfer_ms(report.layers[parts[i][-1]], lut)
                 for i in range(len(parts) - 1)]
    interchip = sum(transfers)
    fill = sum(s.latency_ms for s in shards) + interchip
    interval = max([s.image_interval_ms for s in shards]
                   + (transfers if transfers else [0.0]))
    fits = all(s.num_tiles <= config.tiles_per_chip for s in shards)
    return ShardPlan(
        mode=mode,
        num_chips=num_chips,
        chips_per_replica=chips_per_replica,
        num_replicas=num_replicas,
        shards=shards,
        per_image_latency_ms=fill,
        image_interval_ms=interval,
        interchip_latency_ms=interchip,
        fits=fits,
    )


def plan_sharding(report: NetworkReport, num_chips: int,
                  mode: str = "auto",
                  config: HardwareConfig = DEFAULT_CONFIG,
                  lut: ComponentLUT = DEFAULT_LUT) -> ShardPlan:
    """Choose how a deployed network occupies ``num_chips`` chips.

    ``mode="replica"`` forces full copies (flagged unfit when a copy
    exceeds one chip), ``mode="layer"`` forces a single layer-pipelined
    group across all chips, and ``mode="auto"`` picks the fitting plan
    with the highest aggregate :attr:`ShardPlan.throughput_fps` —
    replicate when the network fits one chip, otherwise replicate the
    smallest fitting layer-sharded group.
    """
    if num_chips < 1:
        raise ValueError("num_chips must be >= 1")
    if not report.layers:
        raise ValueError("cannot shard an empty network")
    if mode not in ("auto", "replica", "layer"):
        raise ValueError("mode must be auto|replica|layer")

    n = len(report.layers)
    all_layers = [list(range(n))]

    if mode == "replica":
        return _group_plan(report, all_layers, num_chips, "replica",
                           config, lut)
    if mode == "layer":
        parts = partition_layers(report, min(num_chips, n), config,
                                 max_tiles=config.tiles_per_chip)
        plan_mode = "layer" if len(parts) > 1 else "replica"
        return _group_plan(report, parts, num_chips, plan_mode, config, lut)

    # auto: smallest fitting group, replicated.
    min_parts = _min_fitting_parts(report, config, max_parts=num_chips)
    if min_parts is None:
        # Nothing fits even layer-by-layer (or needs more chips than
        # provisioned): best effort with every chip in one group.
        parts = partition_layers(report, min(num_chips, n), config,
                                 max_tiles=config.tiles_per_chip)
        plan_mode = "layer" if len(parts) > 1 else "replica"
        return _group_plan(report, parts, num_chips, plan_mode, config, lut)
    if min_parts == 1:
        return _group_plan(report, all_layers, num_chips, "replica",
                           config, lut)
    # DP-balance the fitting group size for the best stage intervals.
    parts = partition_layers(report, min_parts, config,
                             max_tiles=config.tiles_per_chip)
    return _group_plan(report, parts, num_chips, "layer", config, lut)
