"""The serving engine: a deployed EPIM network behind a request queue.

:class:`ServingEngine` turns a simulated deployment (a
:class:`~repro.pim.simulator.NetworkReport`, a format-2 export manifest,
or a model spec compiled on demand) into a servable endpoint: requests
arrive on a simulated clock, the micro-batching scheduler forms batches,
and a discrete-event loop executes them against the per-batch latency
model on however many chips the shard plan provisions.

Timing model.  Each replica group (one or more chips holding a full copy
of the network, see :mod:`repro.serve.sharding`) is a pipelined executor:
a batch dispatched at ``t`` emits its ``j``-th image at ``t + fill +
j * interval`` and frees its first stage for the next batch at
``t + batch * interval`` — so back-to-back batches overlap exactly as a
weight-stationary layer pipeline does, and the engine's achieved
throughput converges to the plan's ``pipelined_throughput_fps`` under
saturation.  Everything is simulated time; no wall-clock sleeps.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.designer import EpitomeAssignment, uniform_assignment
from ..core.export import deployments_from_manifest
from ..models.specs import NetworkSpec, get_network_spec
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import get_metrics, get_tracer
from ..obs.tracer import Tracer
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import NetworkReport, simulate_network
from .cache import DeploymentCache, compile_deployment
from .scheduler import Batch, MicroBatchScheduler, SchedulerConfig
from .sharding import ShardPlan, plan_sharding
from .telemetry import RequestRecord, TelemetryCollector
from .trace import Request

__all__ = ["ServingConfig", "ServingEngine"]

_EPS = 1e-9


@dataclass(frozen=True)
class ServingConfig:
    """Engine-level knobs: fleet size, shard mode, batching policy."""

    num_chips: int = 1
    mode: str = "auto"                  # auto | replica | layer
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self):
        if self.num_chips < 1:
            raise ValueError("num_chips must be >= 1")


@dataclass
class _Executor:
    """One replica group's dispatch state."""

    index: int
    chip_ids: Tuple[int, ...]
    plan: ShardPlan
    free_at_ms: float = 0.0
    track: str = ""             # tracer track name, precomputed

    def occupancy_ms(self, batch_size: int) -> float:
        """Time until the first pipeline stage can accept the next batch."""
        return batch_size * self.plan.image_interval_ms


def _span_events(records: List[RequestRecord], tracks) -> List[tuple]:
    """Synthesize the serve span set from completed-request records.

    Lazy tracer source (see :meth:`repro.obs.tracer.Tracer.add_source`):
    one ``request`` span per record on the ``requests`` track running
    arrival to finish (queue wait and service time are its geometry —
    it overlaps its batch span from dispatch on), plus one ``batch``
    span per dispatch on the owning replica's track.  Batches are
    recovered by grouping consecutive records sharing a dispatch time
    and chip set; ``tracks`` maps ``chip_ids`` to ``(replica, track)``.
    """
    events: List[tuple] = [
        ("request", "serve.request", r.arrival_ms, r.finish_ms,
         "requests", r.request_id) for r in records]
    batches: List[list] = []
    key = None
    for r in records:
        k = (r.start_ms, r.chip_ids)
        if k != key:
            key = k
            batches.append([r.start_ms, r.finish_ms, r.chip_ids,
                            r.batch_size])
        else:
            batches[-1][1] = r.finish_ms
    for start, finish, chips, size in batches:
        replica, track = tracks.get(chips, (-1, "replica?"))
        events.append(("batch", "serve.batch", start, finish, track,
                       {"batch_size": size, "chips": chips,
                        "replica": replica}))
    return events


class ServingEngine:
    """Serves request traces against a deployed network on N chips."""

    def __init__(self, report: NetworkReport,
                 config: ServingConfig = ServingConfig(),
                 hardware: HardwareConfig = DEFAULT_CONFIG,
                 lut: ComponentLUT = DEFAULT_LUT):
        self.report = report
        self.config = config
        self.hardware = hardware
        self.lut = lut
        self.plan = plan_sharding(report, config.num_chips, mode=config.mode,
                                  config=hardware, lut=lut)
        if not self.plan.fits:
            warnings.warn(
                "shard plan exceeds chip capacity "
                f"({max(s.num_tiles for s in self.plan.shards)} tiles on a "
                f"{hardware.tiles_per_chip}-tile chip with "
                f"{config.num_chips} chip(s)); serving what-if timings for "
                "hardware that cannot be built — provision more chips or "
                "use mode='auto'/'layer'", stacklevel=2)
        # Filled by repro.serve.deploy when the engine serves a searched
        # operating point; None for manifest/spec deployments.  The
        # manifest is kept so exporting the deployment needs no recompile.
        self.operating_point = None
        self.deployment_manifest = None
        self.executors: List[_Executor] = []
        chip = 0
        for replica in range(self.plan.num_replicas):
            ids = tuple(range(chip, chip + self.plan.chips_per_replica))
            chip += self.plan.chips_per_replica
            self.executors.append(_Executor(index=replica, chip_ids=ids,
                                            plan=self.plan,
                                            track=f"replica{replica}"))

    # ------------------------------------------------------------------
    # Construction paths
    # ------------------------------------------------------------------
    @classmethod
    def from_manifest(cls, manifest, config: ServingConfig = ServingConfig(),
                      lut: ComponentLUT = DEFAULT_LUT) -> "ServingEngine":
        """Load a format-2 deployment manifest (dict or path) and serve it.

        The manifest's embedded :class:`HardwareConfig` is used, so the
        replayed timing matches the machine the manifest was exported for.
        """
        deployments, hardware = deployments_from_manifest(manifest)
        report = simulate_network(deployments, hardware, lut)
        return cls(report, config, hardware, lut)

    @classmethod
    def from_spec(cls, spec: Union[str, NetworkSpec],
                  config: ServingConfig = ServingConfig(),
                  assignment: Optional[EpitomeAssignment] = None,
                  epitome: bool = True,
                  weight_bits: Optional[int] = 9,
                  activation_bits: Optional[int] = 9,
                  use_wrapping: bool = True,
                  epitome_rows: int = 1024, epitome_cols: int = 256,
                  hardware: HardwareConfig = DEFAULT_CONFIG,
                  lut: ComponentLUT = DEFAULT_LUT,
                  cache: Optional[DeploymentCache] = None) -> "ServingEngine":
        """Compile a deployment from a network spec (designer path).

        ``cache`` short-circuits repeated deploys of the same
        (spec, hardware, options) key — the serving tier's warm pool.
        """
        if isinstance(spec, str):
            spec = get_network_spec(spec)
        if assignment is None and epitome:
            assignment = uniform_assignment(spec, epitome_rows, epitome_cols)
        if cache is not None:
            report = cache.deploy(spec, assignment, weight_bits=weight_bits,
                                  activation_bits=activation_bits,
                                  use_wrapping=use_wrapping,
                                  config=hardware, lut=lut)
        else:
            report = compile_deployment(
                spec, assignment, weight_bits=weight_bits,
                activation_bits=activation_bits,
                use_wrapping=use_wrapping, config=hardware, lut=lut)
        return cls(report, config, hardware, lut)

    @classmethod
    def from_search(cls, source, policy: str = "knee", **kwargs
                    ) -> "ServingEngine":
        """Deploy an operating point of a ``repro search --json`` result
        (path, payload dict, or a pre-parsed
        :class:`~repro.serve.deploy.LoadedSearchResult`).

        Thin delegate to :func:`repro.serve.deploy.engine_from_search`,
        which documents the policy choices and fleet-size derivation.
        """
        from .deploy import engine_from_search

        return engine_from_search(source, policy=policy, **kwargs)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[Request],
              tracer: Optional[Tracer] = None,
              metrics: Optional[MetricsRegistry] = None
              ) -> TelemetryCollector:
        """Replay a trace through the scheduler/executors; returns the
        telemetry of the whole run (simulated time).

        Observability: spans go to ``tracer`` (default: the installed
        :func:`repro.obs.runtime.get_tracer`, a no-op unless a run
        installs a real one) and the run's aggregate metrics are published
        in bulk under ``serve.engine.*`` / ``serve.scheduler.*`` into
        ``metrics`` (default: the installed registry).  Tracing costs the
        replay loop nothing either way: an enabled tracer receives one
        lazy closure per run that expands the telemetry records into
        spans at export time — see the ``obs.overhead`` benchmark.
        """
        tracer = tracer if tracer is not None else get_tracer()
        metrics = metrics if metrics is not None else get_metrics()
        trace = sorted(requests,
                       key=lambda r: (r.arrival_ms, r.request_id))
        scheduler = MicroBatchScheduler(self.config.scheduler)
        telemetry = TelemetryCollector(num_chips=self.config.num_chips)
        for ex in self.executors:
            ex.free_at_ms = 0.0

        i, n = 0, len(trace)
        if n == 0:
            return telemetry
        now = trace[0].arrival_ms

        while i < n or len(scheduler):
            while i < n and trace[i].arrival_ms <= now + _EPS:
                if not scheduler.submit(trace[i]):
                    telemetry.record_rejection(trace[i].request_id)
                i += 1

            while scheduler.has_ready_batch(now):
                free = [ex for ex in self.executors
                        if ex.free_at_ms <= now + _EPS]
                if not free:
                    break
                ex = min(free, key=lambda e: (e.free_at_ms, e.index))
                batch = scheduler.next_batch(now)
                self._execute(ex, batch, now, telemetry)
            # Exactly one depth sample per event (the settled post-dispatch
            # state) — asymmetric sampling would bias the mean.
            telemetry.record_queue_depth(now, len(scheduler))

            candidates = []
            if i < n:
                candidates.append(trace[i].arrival_ms)
            if len(scheduler):
                timeout = scheduler.next_timeout_ms()
                if timeout is not None:
                    candidates.append(timeout)
                candidates.extend(ex.free_at_ms for ex in self.executors
                                  if ex.free_at_ms > now + _EPS)
            candidates = [c for c in candidates if c > now + _EPS]
            if not candidates:
                if i >= n and not len(scheduler):
                    break
                # Ready work with an expired window but nothing to wait
                # for would be a scheduling bug; advance minimally.
                now += _EPS
                continue
            now = min(candidates)
        # Tracing costs the replay loop nothing: the telemetry records
        # already hold every request's full lifecycle, so an enabled
        # tracer gets one lazy closure that synthesizes the request and
        # batch spans if and when they are exported (see
        # Tracer.add_source and the obs.overhead benchmark).
        if tracer.enabled:
            tracks = {ex.chip_ids: (ex.index, ex.track)
                      for ex in self.executors}
            tracer.add_source(
                lambda: _span_events(telemetry.records, tracks))
        self._publish_metrics(telemetry, scheduler, metrics)
        return telemetry

    def _execute(self, executor: _Executor, batch: Batch, now: float,
                 telemetry: TelemetryCollector) -> None:
        size = batch.size
        executor.free_at_ms = now + executor.occupancy_ms(size)
        telemetry.record_batch(size)
        for chip_id, shard in zip(executor.chip_ids, self.plan.shards):
            telemetry.record_chip_busy(chip_id,
                                       size * shard.image_interval_ms)
        fill = self.plan.per_image_latency_ms
        interval = self.plan.image_interval_ms
        for j, request in enumerate(batch.requests):
            finish = now + fill + j * interval
            telemetry.record_completion(RequestRecord(
                request_id=request.request_id,
                arrival_ms=request.arrival_ms,
                start_ms=now,
                finish_ms=finish,
                chip_ids=executor.chip_ids,
                batch_size=size,
                priority=request.priority,
            ))

    def _publish_metrics(self, telemetry: TelemetryCollector,
                         scheduler: MicroBatchScheduler,
                         registry: MetricsRegistry) -> None:
        """Bulk post-run publication under ``serve.engine.*`` /
        ``serve.scheduler.*`` (docs/observability.md).  Deliberately not
        per-event: one vectorized ``observe_many`` per histogram keeps the
        instrumented hot loop indistinguishable from the bare one."""
        eng = "serve.engine"
        registry.counter(f"{eng}.requests_completed",
                         help="requests served to completion"
                         ).inc(telemetry.num_completed)
        registry.counter(f"{eng}.requests_rejected",
                         help="requests shed by the bounded queue"
                         ).inc(telemetry.num_rejected)
        registry.counter(f"{eng}.batches_dispatched",
                         help="micro-batches executed"
                         ).inc(len(telemetry.batch_sizes))
        registry.gauge(f"{eng}.chips",
                       help="chips provisioned by the shard plan"
                       ).set(self.config.num_chips)
        registry.gauge(f"{eng}.throughput_fps",
                       help="achieved completions/s of the last run"
                       ).set(telemetry.throughput_fps())
        if telemetry.records:
            records = telemetry.records
            latency = np.array([r.latency_ms for r in records])
            wait = np.array([r.wait_ms for r in records])
            registry.histogram(f"{eng}.latency_ms",
                               help="end-to-end request latency (ms)"
                               ).observe_many(latency)
            registry.histogram(f"{eng}.wait_ms",
                               help="queueing delay (ms)"
                               ).observe_many(wait)
            registry.histogram(f"{eng}.service_ms",
                               help="chip service time (ms)"
                               ).observe_many(latency - wait)
        if telemetry.batch_sizes:
            registry.histogram(
                f"{eng}.batch_size",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
                help="formed micro-batch sizes"
                ).observe_many(telemetry.batch_sizes)
        if telemetry.queue_samples:
            registry.histogram(
                f"{eng}.queue_depth",
                buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                         128.0, 256.0),
                help="queue depth at engine events"
                ).observe_many([d for _, d in telemetry.queue_samples])
        scheduler.publish_metrics(registry)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-paragraph engine summary (deployment + shard plan)."""
        r = self.report
        header = []
        if self.operating_point is not None:
            p = self.operating_point
            header.append(
                f"operating point: {p.label} ({len(p.assignment)} epitome "
                f"layers; search eval {p.crossbars} XBs, "
                f"{p.latency_ms:.3f} ms, {p.energy_mj:.4f} mJ)")
        return "\n".join(header + [
            f"deployment: {len(r.layers)} layers, {r.num_crossbars} "
            f"crossbars, fill latency {r.latency_ms:.3f} ms, "
            f"image interval {r.image_interval_ms:.3f} ms",
            self.plan.summary(),
            f"scheduler: max_batch={self.config.scheduler.max_batch_size} "
            f"window={self.config.scheduler.window_ms} ms "
            f"queue_depth={self.config.scheduler.queue_depth} "
            f"policy={self.config.scheduler.policy}",
        ])
