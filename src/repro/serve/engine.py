"""The serving engine: a deployed EPIM network behind a request queue.

:class:`ServingEngine` turns a simulated deployment (a
:class:`~repro.pim.simulator.NetworkReport`, a format-2 export manifest,
or a model spec compiled on demand) into a servable endpoint: requests
arrive on a simulated clock, the micro-batching scheduler forms batches,
and a discrete-event loop executes them against the per-batch latency
model on however many chips the shard plan provisions.

Timing model.  Each replica group (one or more chips holding a full copy
of the network, see :mod:`repro.serve.sharding`) is a pipelined executor:
a batch dispatched at ``t`` emits its ``j``-th image at ``t + fill +
j * interval`` and frees its first stage for the next batch at
``t + batch * interval`` — so back-to-back batches overlap exactly as a
weight-stationary layer pipeline does, and the engine's achieved
throughput converges to the plan's ``pipelined_throughput_fps`` under
saturation.  Everything is simulated time; no wall-clock sleeps.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.designer import EpitomeAssignment, uniform_assignment
from ..core.export import deployments_from_manifest
from ..models.specs import NetworkSpec, get_network_spec
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import get_metrics, get_tracer
from ..obs.tracer import Tracer
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import NetworkReport, simulate_network
from .cache import DeploymentCache, compile_deployment
from .scenarios.faults import FaultPlan, ResolvedFault, parse_faults
from .scheduler import Batch, MicroBatchScheduler, SchedulerConfig
from .sharding import ShardPlan, plan_sharding
from .telemetry import RequestRecord, TelemetryCollector
from .trace import Request

__all__ = ["ServingConfig", "ServingEngine", "DEFAULT_WIPE_STALL_FACTOR"]

_EPS = 1e-9

# A cache wipe stalls each replica's next dispatch for a recompile,
# priced as this multiple of the deployment's pipeline fill latency
# unless the fault spec pins an explicit ``stall_ms``.
DEFAULT_WIPE_STALL_FACTOR = 20.0


@dataclass(frozen=True)
class ServingConfig:
    """Engine-level knobs: fleet size, shard mode, batching policy."""

    num_chips: int = 1
    mode: str = "auto"                  # auto | replica | layer
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self):
        if self.num_chips < 1:
            raise ValueError("num_chips must be >= 1")


@dataclass
class _Executor:
    """One replica group's dispatch state (including fault state)."""

    index: int
    chip_ids: Tuple[int, ...]
    plan: ShardPlan
    free_at_ms: float = 0.0
    track: str = ""             # tracer track name, precomputed
    alive: bool = True
    straggle_factor: float = 1.0
    straggle_until_ms: Optional[float] = None
    pending_stall_ms: float = 0.0       # recompile debt from a cache wipe

    def occupancy_ms(self, batch_size: int) -> float:
        """Time until the first pipeline stage can accept the next batch."""
        return batch_size * self.plan.image_interval_ms

    def service_factor(self, now_ms: float) -> float:
        """Current service-time multiplier (1.0 healthy; a straggler
        window multiplies intervals until it expires)."""
        if self.straggle_until_ms is not None \
                and now_ms >= self.straggle_until_ms:
            self.straggle_factor = 1.0
            self.straggle_until_ms = None
        return self.straggle_factor

    def reset(self) -> None:
        self.free_at_ms = 0.0
        self.alive = True
        self.straggle_factor = 1.0
        self.straggle_until_ms = None
        self.pending_stall_ms = 0.0


def _span_events(records: List[RequestRecord], tracks,
                 fault_events: Sequence[dict] = ()) -> List[tuple]:
    """Synthesize the serve span set from completed-request records.

    Lazy tracer source (see :meth:`repro.obs.tracer.Tracer.add_source`):
    one ``request`` span per record on the ``requests`` track running
    arrival to finish (queue wait and service time are its geometry —
    it overlaps its batch span from dispatch on), plus one ``batch``
    span per dispatch on the owning replica's track.  Batches are
    recovered by grouping consecutive records sharing a dispatch time
    and chip set; ``tracks`` maps ``chip_ids`` to ``(replica, track)``.

    Fault episodes land on a dedicated ``faults`` track: a ``failover``
    span runs from a chip kill to the last requeued request's eventual
    finish, a ``straggler`` span covers its degradation window, and a
    ``cache-wipe`` marks the wipe instant (zero duration).
    """
    events: List[tuple] = [
        ("request", "serve.request", r.arrival_ms, r.finish_ms,
         "requests", r.request_id) for r in records]
    batches: List[list] = []
    key = None
    for r in records:
        k = (r.start_ms, r.chip_ids)
        if k != key:
            key = k
            batches.append([r.start_ms, r.finish_ms, r.chip_ids,
                            r.batch_size])
        else:
            batches[-1][1] = r.finish_ms
    for start, finish, chips, size in batches:
        replica, track = tracks.get(chips, (-1, "replica?"))
        events.append(("batch", "serve.batch", start, finish, track,
                       {"batch_size": size, "chips": chips,
                        "replica": replica}))
    if fault_events:
        finish_by_id = {r.request_id: r.finish_ms for r in records}
        for event in fault_events:
            start = float(event.get("at_ms", 0.0))
            kind = event.get("kind")
            if kind == "chip-kill":
                ends = [finish_by_id[rid]
                        for rid in event.get("retried_ids", ())
                        if rid in finish_by_id]
                end = max(ends) if ends else start
                events.append((
                    "failover", "serve.failover", start, end, "faults",
                    {"chip": event.get("chip"),
                     "replica": event.get("replica", -1),
                     "requeued": event.get("requeued", 0),
                     "lost": event.get("lost", 0),
                     "outcome": event.get("outcome", "")}))
            elif kind == "straggler":
                end = event.get("until_ms")
                events.append((
                    "straggler", "serve.fault", start,
                    start if end is None else float(end), "faults",
                    {"chip": event.get("chip"),
                     "factor": event.get("factor"),
                     "outcome": event.get("outcome", "")}))
            else:
                events.append((
                    "cache-wipe", "serve.fault", start, start, "faults",
                    {"stall_ms": event.get("stall_ms"),
                     "outcome": event.get("outcome", "")}))
    return events


class ServingEngine:
    """Serves request traces against a deployed network on N chips."""

    def __init__(self, report: NetworkReport,
                 config: ServingConfig = ServingConfig(),
                 hardware: HardwareConfig = DEFAULT_CONFIG,
                 lut: ComponentLUT = DEFAULT_LUT):
        self.report = report
        self.config = config
        self.hardware = hardware
        self.lut = lut
        self.plan = plan_sharding(report, config.num_chips, mode=config.mode,
                                  config=hardware, lut=lut)
        if not self.plan.fits:
            warnings.warn(
                "shard plan exceeds chip capacity "
                f"({max(s.num_tiles for s in self.plan.shards)} tiles on a "
                f"{hardware.tiles_per_chip}-tile chip with "
                f"{config.num_chips} chip(s)); serving what-if timings for "
                "hardware that cannot be built — provision more chips or "
                "use mode='auto'/'layer'", stacklevel=2)
        # Filled by repro.serve.deploy when the engine serves a searched
        # operating point; None for manifest/spec deployments.  The
        # manifest is kept so exporting the deployment needs no recompile.
        self.operating_point = None
        self.deployment_manifest = None
        self.executors: List[_Executor] = [
            _Executor(index=replica, chip_ids=ids, plan=self.plan,
                      track=f"replica{replica}")
            for replica, ids in enumerate(self.plan.replica_groups())]

    # ------------------------------------------------------------------
    # Construction paths
    # ------------------------------------------------------------------
    @classmethod
    def from_manifest(cls, manifest, config: ServingConfig = ServingConfig(),
                      lut: ComponentLUT = DEFAULT_LUT) -> "ServingEngine":
        """Load a format-2 deployment manifest (dict or path) and serve it.

        The manifest's embedded :class:`HardwareConfig` is used, so the
        replayed timing matches the machine the manifest was exported for.
        """
        deployments, hardware = deployments_from_manifest(manifest)
        report = simulate_network(deployments, hardware, lut)
        return cls(report, config, hardware, lut)

    @classmethod
    def from_spec(cls, spec: Union[str, NetworkSpec],
                  config: ServingConfig = ServingConfig(),
                  assignment: Optional[EpitomeAssignment] = None,
                  epitome: bool = True,
                  weight_bits: Optional[int] = 9,
                  activation_bits: Optional[int] = 9,
                  use_wrapping: bool = True,
                  epitome_rows: int = 1024, epitome_cols: int = 256,
                  hardware: HardwareConfig = DEFAULT_CONFIG,
                  lut: ComponentLUT = DEFAULT_LUT,
                  cache: Optional[DeploymentCache] = None) -> "ServingEngine":
        """Compile a deployment from a network spec (designer path).

        ``cache`` short-circuits repeated deploys of the same
        (spec, hardware, options) key — the serving tier's warm pool.
        """
        if isinstance(spec, str):
            spec = get_network_spec(spec)
        if assignment is None and epitome:
            assignment = uniform_assignment(spec, epitome_rows, epitome_cols)
        if cache is not None:
            report = cache.deploy(spec, assignment, weight_bits=weight_bits,
                                  activation_bits=activation_bits,
                                  use_wrapping=use_wrapping,
                                  config=hardware, lut=lut)
        else:
            report = compile_deployment(
                spec, assignment, weight_bits=weight_bits,
                activation_bits=activation_bits,
                use_wrapping=use_wrapping, config=hardware, lut=lut)
        return cls(report, config, hardware, lut)

    @classmethod
    def from_search(cls, source, policy: str = "knee", **kwargs
                    ) -> "ServingEngine":
        """Deploy an operating point of a ``repro search --json`` result
        (path, payload dict, or a pre-parsed
        :class:`~repro.serve.deploy.LoadedSearchResult`).

        Thin delegate to :func:`repro.serve.deploy.engine_from_search`,
        which documents the policy choices and fleet-size derivation.
        """
        from .deploy import engine_from_search

        return engine_from_search(source, policy=policy, **kwargs)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    # The event-dispatch loop: no per-event tracing/metrics (the
    # obs.overhead benchmark gates enabled-mode overhead <5%) and no
    # per-iteration allocator calls — enforced by the H-rules.
    # reprolint: hot-loop
    def serve(self, requests: Sequence[Request],
              tracer: Optional[Tracer] = None,
              metrics: Optional[MetricsRegistry] = None,
              faults: Union[FaultPlan, str, None] = None
              ) -> TelemetryCollector:
        """Replay a trace through the scheduler/executors; returns the
        telemetry of the whole run (simulated time).

        ``faults`` injects timed adverse events — a
        :class:`~repro.serve.scenarios.faults.FaultPlan` or a spec string
        like ``"chip-kill@t=0.5"`` (see :mod:`repro.serve.scenarios.faults`
        for the grammar).  A killed chip takes its whole replica group
        down; in-flight requests on it are retried once on the surviving
        replicas (failover), and requests that cannot be recovered count
        against availability.  With ``faults=None`` the fast path is
        numerically identical to previous releases.

        Observability: spans go to ``tracer`` (default: the installed
        :func:`repro.obs.runtime.get_tracer`, a no-op unless a run
        installs a real one) and the run's aggregate metrics are published
        in bulk under ``serve.engine.*`` / ``serve.scheduler.*`` (plus
        ``serve.faults.*`` when a plan is supplied) into ``metrics``
        (default: the installed registry).  Tracing costs the replay loop
        nothing either way: an enabled tracer receives one lazy closure
        per run that expands the telemetry records into spans at export
        time — see the ``obs.overhead`` benchmark.
        """
        tracer = tracer if tracer is not None else get_tracer()
        metrics = metrics if metrics is not None else get_metrics()
        if isinstance(faults, str):
            faults = parse_faults(faults)
        trace = sorted(requests,
                       key=lambda r: (r.arrival_ms, r.request_id))
        scheduler = MicroBatchScheduler(self.config.scheduler)
        telemetry = TelemetryCollector(num_chips=self.config.num_chips)
        for ex in self.executors:
            ex.reset()

        i, n = 0, len(trace)
        if n == 0:
            return telemetry
        now = trace[0].arrival_ms

        fault_queue: List[ResolvedFault] = []
        if faults is not None:
            fault_queue = faults.resolve(trace[0].arrival_ms,
                                         trace[-1].arrival_ms)
        fault_idx = 0
        retried_ids: set = set()    # retry-once budget across the run
        max_finish_ms = now         # latest completion dispatched so far

        # Faults with firing times past the last queue event still apply
        # while dispatched work is in flight (a kill during drain must
        # retract those completions), hence the third loop condition.
        while i < n or len(scheduler) or (
                fault_idx < len(fault_queue)
                and fault_queue[fault_idx].at_ms <= max_finish_ms + _EPS):
            if fault_idx < len(fault_queue):
                while (fault_idx < len(fault_queue)
                       and fault_queue[fault_idx].at_ms <= now + _EPS):
                    fault = fault_queue[fault_idx]
                    fault_idx += 1
                    if self._apply_fault(fault, scheduler, telemetry,
                                         retried_ids):
                        # Total outage: no replica left to serve anything.
                        # Queued and still-arriving requests are lost.
                        while len(scheduler):
                            batch = scheduler.next_batch(now, force=True)
                            for request in batch.requests:
                                telemetry.record_failure(request.request_id)
                        for request in trace[i:]:
                            telemetry.record_failure(request.request_id)
                        i = n
                        fault_idx = len(fault_queue)
                        break
                if i >= n and not len(scheduler):
                    break

            while i < n and trace[i].arrival_ms <= now + _EPS:
                if not scheduler.submit(trace[i]):
                    telemetry.record_rejection(trace[i].request_id)
                i += 1

            while scheduler.has_ready_batch(now):
                free = [ex for ex in self.executors
                        if ex.alive and ex.free_at_ms <= now + _EPS]
                if not free:
                    break
                ex = min(free, key=lambda e: (e.free_at_ms, e.index))
                batch = scheduler.next_batch(now)
                last_finish = self._execute(ex, batch, now, telemetry)
                if last_finish > max_finish_ms:
                    max_finish_ms = last_finish
            # Exactly one depth sample per event (the settled post-dispatch
            # state) — asymmetric sampling would bias the mean.
            telemetry.record_queue_depth(now, len(scheduler))

            candidates = []
            if i < n:
                candidates.append(trace[i].arrival_ms)
            if len(scheduler):
                timeout = scheduler.next_timeout_ms()
                if timeout is not None:
                    candidates.append(timeout)
                candidates.extend(ex.free_at_ms for ex in self.executors
                                  if ex.alive and ex.free_at_ms > now + _EPS)
            if (fault_idx < len(fault_queue)
                    and fault_queue[fault_idx].at_ms <= max_finish_ms + _EPS):
                candidates.append(fault_queue[fault_idx].at_ms)
            candidates = [c for c in candidates if c > now + _EPS]
            if not candidates:
                if i >= n and not len(scheduler):
                    break
                # Ready work with an expired window but nothing to wait
                # for would be a scheduling bug; advance minimally.
                now += _EPS
                continue
            now = min(candidates)
        # Tracing costs the replay loop nothing: the telemetry records
        # already hold every request's full lifecycle, so an enabled
        # tracer gets one lazy closure that synthesizes the request and
        # batch spans if and when they are exported (see
        # Tracer.add_source and the obs.overhead benchmark).
        if tracer.enabled:
            tracks = {ex.chip_ids: (ex.index, ex.track)
                      for ex in self.executors}
            tracer.add_source(
                lambda: _span_events(telemetry.records, tracks,
                                     telemetry.fault_events))
        self._publish_metrics(telemetry, scheduler, metrics,
                              faults_active=faults is not None)
        return telemetry

    def _execute(self, executor: _Executor, batch: Batch, now: float,
                 telemetry: TelemetryCollector) -> float:
        """Dispatch ``batch`` on ``executor``; returns the finish time of
        the batch's last image (the engine's in-flight horizon)."""
        size = batch.size
        factor = executor.service_factor(now)
        stall = executor.pending_stall_ms
        executor.pending_stall_ms = 0.0
        interval = self.plan.image_interval_ms * factor
        fill = self.plan.per_image_latency_ms * factor + stall
        executor.free_at_ms = now + stall + size * interval
        telemetry.record_batch(size)
        for chip_id, shard in zip(executor.chip_ids, self.plan.shards):
            telemetry.record_chip_busy(
                chip_id, stall + size * shard.image_interval_ms * factor)
        for j, request in enumerate(batch.requests):
            finish = now + fill + j * interval
            telemetry.record_completion(RequestRecord(
                request_id=request.request_id,
                arrival_ms=request.arrival_ms,
                start_ms=now,
                finish_ms=finish,
                chip_ids=executor.chip_ids,
                batch_size=size,
                priority=request.priority,
                model=request.model,
            ))
        return now + fill + (size - 1) * interval

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _executor_for_chip(self, chip_id: int) -> Optional[_Executor]:
        replica = self.plan.replica_of_chip(chip_id)
        if replica is None or replica >= len(self.executors):
            return None
        return self.executors[replica]

    def _apply_fault(self, fault: ResolvedFault,
                     scheduler: MicroBatchScheduler,
                     telemetry: TelemetryCollector,
                     retried_ids: set) -> bool:
        """Apply one resolved fault; returns True when the whole fleet is
        down afterwards (total outage — the caller fails everything)."""
        if fault.kind == "chip-kill":
            return self._apply_chip_kill(fault, scheduler, telemetry,
                                         retried_ids)
        if fault.kind == "straggler":
            ex = self._executor_for_chip(fault.chip)
            event = {"kind": "straggler", "at_ms": fault.at_ms,
                     "chip": fault.chip, "until_ms": fault.until_ms,
                     "factor": fault.factor,
                     "label": f"straggler chip={fault.chip} "
                              f"x{fault.factor:g}"}
            if ex is None or not ex.alive:
                event["outcome"] = "no-op (chip unowned or dead)"
            else:
                ex.straggle_factor = fault.factor
                ex.straggle_until_ms = fault.until_ms
                event["replica"] = ex.index
                event["outcome"] = (f"replica{ex.index} degraded "
                                    f"{fault.factor:g}x")
            telemetry.record_fault(event)
            return False
        # cache-wipe: every live replica pays a recompile stall on its
        # next dispatch.
        stall = (fault.stall_ms if fault.stall_ms is not None
                 else DEFAULT_WIPE_STALL_FACTOR
                 * self.plan.per_image_latency_ms)
        touched = 0
        for ex in self.executors:
            if ex.alive:
                ex.pending_stall_ms += stall
                touched += 1
        telemetry.record_fault({
            "kind": "cache-wipe", "at_ms": fault.at_ms,
            "stall_ms": stall, "label": "cache-wipe",
            "outcome": f"{touched} replica(s) stalled {stall:g} ms"})
        return False

    def _apply_chip_kill(self, fault: ResolvedFault,
                         scheduler: MicroBatchScheduler,
                         telemetry: TelemetryCollector,
                         retried_ids: set) -> bool:
        """Kill the replica group owning ``fault.chip``; fail over its
        in-flight requests (retry once on survivors)."""
        ex = self._executor_for_chip(fault.chip)
        event = {"kind": "chip-kill", "at_ms": fault.at_ms,
                 "chip": fault.chip,
                 "label": f"chip-kill chip={fault.chip}"}
        if ex is None or not ex.alive:
            event.update(outcome="no-op (chip unowned or already dead)",
                         failover=False, requeued=0, lost=0,
                         retried_ids=())
            telemetry.record_fault(event)
            return not any(e.alive for e in self.executors)
        ex.alive = False
        # Completions are recorded eagerly at dispatch; retract every
        # record this replica would have emitted after the kill instant.
        inflight = [r for r in telemetry.records
                    if r.chip_ids == ex.chip_ids
                    and r.finish_ms > fault.at_ms + _EPS]
        telemetry.drop_records(inflight)
        survivors = any(e.alive for e in self.executors)
        requeued = lost = 0
        requeued_ids = []
        for rec in sorted(inflight,
                          key=lambda r: (r.arrival_ms, r.request_id)):
            can_retry = survivors and rec.request_id not in retried_ids
            if can_retry:
                retried_ids.add(rec.request_id)
                resubmitted = scheduler.submit(Request(
                    request_id=rec.request_id,
                    arrival_ms=rec.arrival_ms,
                    priority=rec.priority,
                    model=rec.model))
                if resubmitted:
                    telemetry.record_retry(rec.request_id)
                    requeued += 1
                    requeued_ids.append(rec.request_id)
                    continue
            telemetry.record_failure(rec.request_id)
            lost += 1
        event.update(
            outcome=(f"replica{ex.index} down; {requeued} retried, "
                     f"{lost} lost" if survivors
                     else f"replica{ex.index} down; fleet offline"),
            replica=ex.index, failover=survivors, requeued=requeued,
            lost=lost, retried_ids=tuple(requeued_ids))
        telemetry.record_fault(event)
        return not survivors

    def _publish_metrics(self, telemetry: TelemetryCollector,
                         scheduler: MicroBatchScheduler,
                         registry: MetricsRegistry,
                         faults_active: bool = False) -> None:
        """Bulk post-run publication under ``serve.engine.*`` /
        ``serve.scheduler.*`` — plus ``serve.faults.*`` when a fault plan
        was supplied (docs/observability.md).  Deliberately not
        per-event: one vectorized ``observe_many`` per histogram keeps the
        instrumented hot loop indistinguishable from the bare one."""
        eng = "serve.engine"
        registry.counter(f"{eng}.requests_completed",
                         help="requests served to completion"
                         ).inc(telemetry.num_completed)
        registry.counter(f"{eng}.requests_rejected",
                         help="requests shed by the bounded queue"
                         ).inc(telemetry.num_rejected)
        registry.counter(f"{eng}.batches_dispatched",
                         help="micro-batches executed"
                         ).inc(len(telemetry.batch_sizes))
        registry.gauge(f"{eng}.chips",
                       help="chips provisioned by the shard plan"
                       ).set(self.config.num_chips)
        registry.gauge(f"{eng}.throughput_fps",
                       help="achieved completions/s of the last run"
                       ).set(telemetry.throughput_fps())
        if telemetry.records:
            records = telemetry.records
            latency = np.array([r.latency_ms for r in records])
            wait = np.array([r.wait_ms for r in records])
            registry.histogram(f"{eng}.latency_ms",
                               help="end-to-end request latency (ms)"
                               ).observe_many(latency)
            registry.histogram(f"{eng}.wait_ms",
                               help="queueing delay (ms)"
                               ).observe_many(wait)
            registry.histogram(f"{eng}.service_ms",
                               help="chip service time (ms)"
                               ).observe_many(latency - wait)
        if telemetry.batch_sizes:
            registry.histogram(
                f"{eng}.batch_size",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
                help="formed micro-batch sizes"
                ).observe_many(telemetry.batch_sizes)
        if telemetry.queue_samples:
            registry.histogram(
                f"{eng}.queue_depth",
                buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                         128.0, 256.0),
                help="queue depth at engine events"
                ).observe_many([d for _, d in telemetry.queue_samples])
        if faults_active:
            flt = "serve.faults"
            by_kind = {"chip-kill": 0, "straggler": 0, "cache-wipe": 0}
            for event in telemetry.fault_events:
                kind = event.get("kind")
                if kind in by_kind:
                    by_kind[kind] += 1
            registry.counter(f"{flt}.injected",
                             help="fault events applied to the run"
                             ).inc(len(telemetry.fault_events))
            registry.counter(f"{flt}.chip_kills",
                             help="chip-kill events applied"
                             ).inc(by_kind["chip-kill"])
            registry.counter(f"{flt}.stragglers",
                             help="straggler events applied"
                             ).inc(by_kind["straggler"])
            registry.counter(f"{flt}.cache_wipes",
                             help="cache-wipe events applied"
                             ).inc(by_kind["cache-wipe"])
            registry.counter(f"{flt}.retries",
                             help="in-flight requests requeued by failover"
                             ).inc(telemetry.num_retried)
            registry.counter(f"{flt}.failovers",
                             help="chip kills survived by re-routing to "
                                  "replicas"
                             ).inc(telemetry.num_failovers)
            registry.counter(f"{flt}.unrecoverable",
                             help="requests lost to faults (counted "
                                  "against availability)"
                             ).inc(telemetry.num_failed)
            registry.gauge(f"{flt}.chips_lost",
                           help="chips dead at end of run"
                           ).set(sum(len(ex.chip_ids)
                                     for ex in self.executors
                                     if not ex.alive))
        scheduler.publish_metrics(registry)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-paragraph engine summary (deployment + shard plan)."""
        r = self.report
        header = []
        if self.operating_point is not None:
            p = self.operating_point
            header.append(
                f"operating point: {p.label} ({len(p.assignment)} epitome "
                f"layers; search eval {p.crossbars} XBs, "
                f"{p.latency_ms:.3f} ms, {p.energy_mj:.4f} mJ)")
        return "\n".join(header + [
            f"deployment: {len(r.layers)} layers, {r.num_crossbars} "
            f"crossbars, fill latency {r.latency_ms:.3f} ms, "
            f"image interval {r.image_interval_ms:.3f} ms",
            self.plan.summary(),
            f"scheduler: max_batch={self.config.scheduler.max_batch_size} "
            f"window={self.config.scheduler.window_ms} ms "
            f"queue_depth={self.config.scheduler.queue_depth} "
            f"policy={self.config.scheduler.policy}",
        ])
