"""The serving engine: a deployed EPIM network behind a request queue.

:class:`ServingEngine` turns a simulated deployment (a
:class:`~repro.pim.simulator.NetworkReport`, a format-2 export manifest,
or a model spec compiled on demand) into a servable endpoint: requests
arrive on a simulated clock, the micro-batching scheduler forms batches,
and a discrete-event loop executes them against the per-batch latency
model on however many chips the shard plan provisions.

Timing model.  Each replica group (one or more chips holding a full copy
of the network, see :mod:`repro.serve.sharding`) is a pipelined executor:
a batch dispatched at ``t`` emits its ``j``-th image at ``t + fill +
j * interval`` and frees its first stage for the next batch at
``t + batch * interval`` — so back-to-back batches overlap exactly as a
weight-stationary layer pipeline does, and the engine's achieved
throughput converges to the plan's ``pipelined_throughput_fps`` under
saturation.  Everything is simulated time; no wall-clock sleeps.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.designer import EpitomeAssignment, uniform_assignment
from ..core.export import deployments_from_manifest
from ..models.specs import NetworkSpec, get_network_spec
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import get_metrics, get_tracer
from ..obs.tracer import Tracer
from ..pim.config import DEFAULT_CONFIG, HardwareConfig
from ..pim.lut import DEFAULT_LUT, ComponentLUT
from ..pim.simulator import NetworkReport, simulate_network
from .cache import DeploymentCache, compile_deployment
from .resilience import BrownoutPlan, ResilienceConfig, ResilienceRuntime
from .scenarios.faults import FaultPlan, ResolvedFault, parse_faults
from .scheduler import Batch, MicroBatchScheduler, SchedulerConfig
from .sharding import ShardPlan, plan_sharding
from .telemetry import RequestRecord, TelemetryCollector
from .trace import Request, TraceArrays
from .vectorized import replay_vectorized

__all__ = ["ServingConfig", "ServingEngine", "DEFAULT_WIPE_STALL_FACTOR",
           "ENGINES"]

_EPS = 1e-9

# Replay engine choices: "scalar" is the per-request event loop below
# (the permanent oracle), "vectorized" the whole-trace array engine in
# repro.serve.vectorized, and "auto" picks vectorized whenever nothing
# armed needs per-request control flow (docs/vectorized-replay.md).
ENGINES = ("auto", "scalar", "vectorized")

# A cache wipe stalls each replica's next dispatch for a recompile,
# priced as this multiple of the deployment's pipeline fill latency
# unless the fault spec pins an explicit ``stall_ms``.
DEFAULT_WIPE_STALL_FACTOR = 20.0


@dataclass(frozen=True)
class ServingConfig:
    """Engine-level knobs: fleet size, shard mode, batching policy."""

    num_chips: int = 1
    mode: str = "auto"                  # auto | replica | layer
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    # Arms the resilience runtime (admission control, retry budgets,
    # circuit breakers, brownout) for every serve() call on the engine;
    # None keeps the plain fast path byte-identical to prior releases.
    resilience: Optional[ResilienceConfig] = None
    # Replay engine: one of ENGINES.  "auto" runs the vectorized engine
    # when the run arms nothing it cannot express and falls back to the
    # scalar loop otherwise (recording engine_fallback_reason).
    engine: str = "auto"

    def __post_init__(self):
        if self.num_chips < 1:
            raise ValueError("num_chips must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")


@dataclass
class _Executor:
    """One replica group's dispatch state (including fault state)."""

    index: int
    chip_ids: Tuple[int, ...]
    plan: ShardPlan
    free_at_ms: float = 0.0
    track: str = ""             # tracer track name, precomputed
    alive: bool = True
    straggle_factor: float = 1.0
    straggle_until_ms: Optional[float] = None
    pending_stall_ms: float = 0.0       # recompile debt from a cache wipe

    def occupancy_ms(self, batch_size: int) -> float:
        """Time until the first pipeline stage can accept the next batch."""
        return batch_size * self.plan.image_interval_ms

    def service_factor(self, now_ms: float) -> float:
        """Current service-time multiplier (1.0 healthy; a straggler
        window multiplies intervals until it expires)."""
        if self.straggle_until_ms is not None \
                and now_ms >= self.straggle_until_ms:
            self.straggle_factor = 1.0
            self.straggle_until_ms = None
        return self.straggle_factor

    def reset(self) -> None:
        self.free_at_ms = 0.0
        self.alive = True
        self.straggle_factor = 1.0
        self.straggle_until_ms = None
        self.pending_stall_ms = 0.0


def _span_events(records: List[RequestRecord], tracks,
                 fault_events: Sequence[dict] = (),
                 resilience_events: Sequence[dict] = ()) -> List[tuple]:
    """Synthesize the serve span set from completed-request records.

    Lazy tracer source (see :meth:`repro.obs.tracer.Tracer.add_source`):
    one ``request`` span per record on the ``requests`` track running
    arrival to finish (queue wait and service time are its geometry —
    it overlaps its batch span from dispatch on), plus one ``batch``
    span per dispatch on the owning replica's track.  Batches are
    recovered by grouping consecutive records sharing a dispatch time
    and chip set; ``tracks`` maps ``chip_ids`` to ``(replica, track)``.

    Fault episodes land on a dedicated ``faults`` track: a ``failover``
    span runs from a chip kill to the last requeued request's eventual
    finish, a ``straggler`` span covers its degradation window, and a
    ``cache-wipe`` marks the wipe instant (zero duration).

    Resilience episodes share the ``faults`` track (they are responses
    to the same adversity): breaker-open/close transition pairs become
    per-replica ``breaker`` spans and brownout enter/exit pairs become
    ``brownout`` spans.  An episode still open when the run ends extends
    to the run's last known instant.
    """
    events: List[tuple] = [
        ("request", "serve.request", r.arrival_ms, r.finish_ms,
         "requests", r.request_id) for r in records]
    batches: List[list] = []
    key = None
    for r in records:
        k = (r.start_ms, r.chip_ids)
        if k != key:
            key = k
            batches.append([r.start_ms, r.finish_ms, r.chip_ids,
                            r.batch_size])
        else:
            batches[-1][1] = r.finish_ms
    for start, finish, chips, size in batches:
        replica, track = tracks.get(chips, (-1, "replica?"))
        events.append(("batch", "serve.batch", start, finish, track,
                       {"batch_size": size, "chips": chips,
                        "replica": replica}))
    if fault_events:
        finish_by_id = {r.request_id: r.finish_ms for r in records}
        for event in fault_events:
            start = float(event.get("at_ms", 0.0))
            kind = event.get("kind")
            if kind == "chip-kill":
                ends = [finish_by_id[rid]
                        for rid in event.get("retried_ids", ())
                        if rid in finish_by_id]
                end = max(ends) if ends else start
                events.append((
                    "failover", "serve.failover", start, end, "faults",
                    {"chip": event.get("chip"),
                     "replica": event.get("replica", -1),
                     "requeued": event.get("requeued", 0),
                     "lost": event.get("lost", 0),
                     "outcome": event.get("outcome", "")}))
            elif kind == "straggler":
                end = event.get("until_ms")
                events.append((
                    "straggler", "serve.fault", start,
                    start if end is None else float(end), "faults",
                    {"chip": event.get("chip"),
                     "factor": event.get("factor"),
                     "outcome": event.get("outcome", "")}))
            else:
                events.append((
                    "cache-wipe", "serve.fault", start, start, "faults",
                    {"stall_ms": event.get("stall_ms"),
                     "outcome": event.get("outcome", "")}))
    if resilience_events:
        run_end = max(
            [r.finish_ms for r in records]
            + [float(e.get("at_ms", 0.0)) for e in resilience_events]
            or [0.0])
        open_breakers: dict = {}    # replica -> episode start
        brownout_start = None
        brownout_plan = ""
        for event in resilience_events:
            at = float(event.get("at_ms", 0.0))
            kind = event.get("kind")
            if kind == "breaker-open":
                open_breakers.setdefault(event.get("replica"), at)
            elif kind == "breaker-close":
                replica = event.get("replica")
                start = open_breakers.pop(replica, at)
                events.append((
                    "breaker", "serve.breaker", start, at, "faults",
                    {"replica": replica, "outcome": "closed by probe"}))
            elif kind == "brownout-enter":
                brownout_start = at
                brownout_plan = event.get("plan", "")
            elif kind == "brownout-exit" and brownout_start is not None:
                events.append((
                    "brownout", "serve.brownout", brownout_start, at,
                    "faults", {"plan": event.get("plan", ""),
                               "outcome": "recovered"}))
                brownout_start = None
        for replica, start in sorted(open_breakers.items(),
                                     key=lambda kv: (kv[1], str(kv[0]))):
            events.append((
                "breaker", "serve.breaker", start, run_end, "faults",
                {"replica": replica, "outcome": "open at end of run"}))
        if brownout_start is not None:
            events.append((
                "brownout", "serve.brownout", brownout_start, run_end,
                "faults", {"plan": brownout_plan,
                           "outcome": "browned out at end of run"}))
    return events


class ServingEngine:
    """Serves request traces against a deployed network on N chips."""

    def __init__(self, report: NetworkReport,
                 config: ServingConfig = ServingConfig(),
                 hardware: HardwareConfig = DEFAULT_CONFIG,
                 lut: ComponentLUT = DEFAULT_LUT):
        self.report = report
        self.config = config
        self.hardware = hardware
        self.lut = lut
        self.plan = plan_sharding(report, config.num_chips, mode=config.mode,
                                  config=hardware, lut=lut)
        if not self.plan.fits:
            warnings.warn(
                "shard plan exceeds chip capacity "
                f"({max(s.num_tiles for s in self.plan.shards)} tiles on a "
                f"{hardware.tiles_per_chip}-tile chip with "
                f"{config.num_chips} chip(s)); serving what-if timings for "
                "hardware that cannot be built — provision more chips or "
                "use mode='auto'/'layer'", stacklevel=2)
        # Filled by repro.serve.deploy when the engine serves a searched
        # operating point; None for manifest/spec deployments.  The
        # manifest is kept so exporting the deployment needs no recompile.
        self.operating_point = None
        self.deployment_manifest = None
        # Degraded operating point for brownout mode; attached by
        # repro.serve.deploy from the search front (attach_brownout) or
        # synthesized from BrownoutPolicy fallback scales at serve time.
        self.brownout_plan: Optional[BrownoutPlan] = None
        self.executors: List[_Executor] = [
            _Executor(index=replica, chip_ids=ids, plan=self.plan,
                      track=f"replica{replica}")
            for replica, ids in enumerate(self.plan.replica_groups())]
        # Which replay engine the last serve() actually used, and why
        # auto fell back to scalar (None on a vectorized or explicit
        # run) — surfaced by describe() and the serve CLI.
        self.last_engine: Optional[str] = None
        self.engine_fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction paths
    # ------------------------------------------------------------------
    @classmethod
    def from_manifest(cls, manifest, config: ServingConfig = ServingConfig(),
                      lut: ComponentLUT = DEFAULT_LUT) -> "ServingEngine":
        """Load a format-2 deployment manifest (dict or path) and serve it.

        The manifest's embedded :class:`HardwareConfig` is used, so the
        replayed timing matches the machine the manifest was exported for.
        """
        deployments, hardware = deployments_from_manifest(manifest)
        report = simulate_network(deployments, hardware, lut)
        return cls(report, config, hardware, lut)

    @classmethod
    def from_spec(cls, spec: Union[str, NetworkSpec],
                  config: ServingConfig = ServingConfig(),
                  assignment: Optional[EpitomeAssignment] = None,
                  epitome: bool = True,
                  weight_bits: Optional[int] = 9,
                  activation_bits: Optional[int] = 9,
                  use_wrapping: bool = True,
                  epitome_rows: int = 1024, epitome_cols: int = 256,
                  hardware: HardwareConfig = DEFAULT_CONFIG,
                  lut: ComponentLUT = DEFAULT_LUT,
                  cache: Optional[DeploymentCache] = None) -> "ServingEngine":
        """Compile a deployment from a network spec (designer path).

        ``cache`` short-circuits repeated deploys of the same
        (spec, hardware, options) key — the serving tier's warm pool.
        """
        if isinstance(spec, str):
            spec = get_network_spec(spec)
        if assignment is None and epitome:
            assignment = uniform_assignment(spec, epitome_rows, epitome_cols)
        if cache is not None:
            report = cache.deploy(spec, assignment, weight_bits=weight_bits,
                                  activation_bits=activation_bits,
                                  use_wrapping=use_wrapping,
                                  config=hardware, lut=lut)
        else:
            report = compile_deployment(
                spec, assignment, weight_bits=weight_bits,
                activation_bits=activation_bits,
                use_wrapping=use_wrapping, config=hardware, lut=lut)
        return cls(report, config, hardware, lut)

    @classmethod
    def from_search(cls, source, policy: str = "knee", **kwargs
                    ) -> "ServingEngine":
        """Deploy an operating point of a ``repro search --json`` result
        (path, payload dict, or a pre-parsed
        :class:`~repro.serve.deploy.LoadedSearchResult`).

        Thin delegate to :func:`repro.serve.deploy.engine_from_search`,
        which documents the policy choices and fleet-size derivation.
        """
        from .deploy import engine_from_search

        return engine_from_search(source, policy=policy, **kwargs)

    def attach_brownout(self, plan: BrownoutPlan) -> None:
        """Install the degraded operating point brownout mode serves
        from (see :mod:`repro.serve.resilience.brownout`).  Scales must
        describe the degraded point *relative to this engine's primary
        plan*: ``interval_scale < 1`` means the degraded point sustains
        more throughput, ``fill_scale > 1`` means it fills slower."""
        self.brownout_plan = plan

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    # The event-dispatch loop: no per-event tracing/metrics (the
    # obs.overhead benchmark gates enabled-mode overhead <5%) and no
    # per-iteration allocator calls — enforced by the H-rules.
    # reprolint: hot-loop
    def serve(self, requests: Union[Sequence[Request], TraceArrays],
              tracer: Optional[Tracer] = None,
              metrics: Optional[MetricsRegistry] = None,
              faults: Union[FaultPlan, str, None] = None,
              resilience: Optional[ResilienceConfig] = None,
              engine: Optional[str] = None
              ) -> TelemetryCollector:
        """Replay a trace through the scheduler/executors; returns the
        telemetry of the whole run (simulated time).

        ``faults`` injects timed adverse events — a
        :class:`~repro.serve.scenarios.faults.FaultPlan` or a spec string
        like ``"chip-kill@t=0.5"`` (see :mod:`repro.serve.scenarios.faults`
        for the grammar).  A killed chip takes its whole replica group
        down; in-flight requests on it are retried on the surviving
        replicas (failover), and requests that cannot be recovered count
        against availability.  With ``faults=None`` the fast path is
        numerically identical to previous releases.

        ``resilience`` (or ``config.resilience``; the call-site argument
        wins) arms the resilience runtime — adaptive admission control in
        front of the scheduler, budgeted failover retries with seeded
        backoff instead of retry-once, per-replica circuit breakers, and
        brownout down-shifts to the attached degraded plan.  See
        :mod:`repro.serve.resilience` and docs/resilience.md.  Disarmed,
        none of its branches execute.

        Observability: spans go to ``tracer`` (default: the installed
        :func:`repro.obs.runtime.get_tracer`, a no-op unless a run
        installs a real one) and the run's aggregate metrics are published
        in bulk under ``serve.engine.*`` / ``serve.scheduler.*`` (plus
        ``serve.faults.*`` when a plan is supplied) into ``metrics``
        (default: the installed registry).  Tracing costs the replay loop
        nothing either way: an enabled tracer receives one lazy closure
        per run that expands the telemetry records into spans at export
        time — see the ``obs.overhead`` benchmark.

        ``engine`` overrides ``config.engine`` for this call: ``"scalar"``
        forces the event loop below, ``"vectorized"`` the whole-trace
        array engine (:mod:`repro.serve.vectorized` — byte-identical
        summaries, held to that by tests/serve/test_engine_equivalence),
        and ``"auto"`` picks vectorized unless the run arms per-request
        control flow it cannot express (a fault plan, the resilience
        runtime, a non-FIFO scheduler policy) — then it falls back to
        scalar and records :attr:`engine_fallback_reason`.  Requesting
        ``"vectorized"`` with such a blocker armed raises ``ValueError``
        rather than silently changing results.  ``requests`` may be a
        :class:`~repro.serve.trace.TraceArrays` column trace; the scalar
        path materializes it, the vectorized path consumes it directly.
        """
        tracer = tracer if tracer is not None else get_tracer()
        metrics = metrics if metrics is not None else get_metrics()
        if isinstance(faults, str):
            faults = parse_faults(faults)
        if resilience is None:
            resilience = self.config.resilience

        choice = engine if engine is not None else self.config.engine
        if choice not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        blockers = []
        if faults is not None:
            blockers.append("fault plan armed")
        if resilience is not None:
            blockers.append("resilience runtime armed")
        blockers.extend(self.config.scheduler.vectorization_blockers())
        if choice == "vectorized" and blockers:
            raise ValueError(
                "vectorized engine cannot express: " + "; ".join(blockers)
                + " — use engine='scalar' or 'auto'")
        use_vectorized = (choice == "vectorized"
                          or (choice == "auto" and not blockers))
        self.last_engine = "vectorized" if use_vectorized else "scalar"
        self.engine_fallback_reason = (blockers[0]
                                       if choice == "auto" and blockers
                                       else None)
        if use_vectorized:
            telemetry = replay_vectorized(self, requests)
            if not (telemetry.num_completed or telemetry.num_rejected):
                return telemetry
            # Stand-in for the scheduler the scalar loop would have run:
            # on this path every offered request was either accepted and
            # dispatched or shed by the bounded queue, so the lifetime
            # counters _publish_metrics folds in are fully determined.
            scheduler = MicroBatchScheduler(self.config.scheduler)
            scheduler.num_submitted = (telemetry.num_completed
                                       + telemetry.num_rejected)
            scheduler.num_rejected = telemetry.num_rejected
            scheduler.num_batches = telemetry.num_batches
            if tracer.enabled:
                tracks = {ex.chip_ids: (ex.index, ex.track)
                          for ex in self.executors}
                tracer.add_source(
                    lambda: _span_events(telemetry.records, tracks))
            self._publish_metrics(telemetry, scheduler, metrics)
            return telemetry

        if isinstance(requests, TraceArrays):
            requests = requests.materialize()
        trace = sorted(requests,
                       key=lambda r: (r.arrival_ms, r.request_id))
        scheduler = MicroBatchScheduler(self.config.scheduler)
        telemetry = TelemetryCollector(num_chips=self.config.num_chips)
        for ex in self.executors:
            ex.reset()

        i, n = 0, len(trace)
        if n == 0:
            return telemetry
        now = trace[0].arrival_ms

        fault_queue: List[ResolvedFault] = []
        if faults is not None:
            fault_queue = faults.resolve(trace[0].arrival_ms,
                                         trace[-1].arrival_ms)
        fault_idx = 0
        retried_ids: set = set()    # retry-once budget (disarmed path)
        runtime: Optional[ResilienceRuntime] = None
        if resilience is not None:
            # All control thresholds scale off the service quantum (one
            # pipeline fill plus one batching window), so a single
            # ResilienceConfig transfers across deployments.
            runtime = ResilienceRuntime(
                resilience,
                base_ms=(self.plan.per_image_latency_ms
                         + self.config.scheduler.window_ms),
                capacity_fps=self.plan.throughput_fps,
                offered=n,
                num_replicas=len(self.executors),
                brownout_plan=self.brownout_plan)
        # Pre-bound hot-path handles: the armed loop touches these once or
        # twice per event, and the lookup chain (runtime -> controller ->
        # method) is measurable against the <5% arming budget enforced by
        # the serve.overload_resilience benchmark.
        retry_heap = runtime.retry_heap if runtime is not None else None
        admission = runtime.admission if runtime is not None else None
        admission_admit = admission.admit if admission is not None else None
        if admission is not None:
            adm_target_ms = admission.target_ms
            adm_rate_per_ms = admission.rate_per_ms
            adm_burst = admission.burst
            # The bucket's mutable fast-path state lives in loop locals
            # (written back before finalize); nothing else reads the
            # controller mid-run, and per-arrival attribute traffic is
            # the single biggest slice of the <5% arming budget.
            adm_tokens = admission.tokens
            adm_last_refill = admission.last_refill_ms
            adm_admitted = admission.admitted
            adm_refilled = admission._refilled
            # True while the CoDel side holds armed state that a healthy
            # sample must clear (first_above set, or actively dropping).
            adm_codel_armed = (admission.dropping
                               or admission.first_above_ms >= 0.0)
        brownout_ctl = runtime.brownout if runtime is not None else None
        brownout_enter_ms = (brownout_ctl.enter_ms
                             if brownout_ctl is not None else 0.0)
        # True whenever the brownout controller holds non-idle state
        # (active, or an entry clock running); while False, arrivals
        # under the entry threshold skip update() entirely.
        brownout_watch = False
        oldest_arrival = scheduler.oldest_arrival_ms
        max_finish_ms = now         # latest completion dispatched so far

        # Faults with firing times past the last queue event still apply
        # while dispatched work is in flight (a kill during drain must
        # retract those completions), hence the third loop condition.
        while i < n or len(scheduler) or retry_heap \
                or (fault_idx < len(fault_queue)
                    and fault_queue[fault_idx].at_ms <= max_finish_ms + _EPS):
            if fault_idx < len(fault_queue):
                while (fault_idx < len(fault_queue)
                       and fault_queue[fault_idx].at_ms <= now + _EPS):
                    fault = fault_queue[fault_idx]
                    fault_idx += 1
                    if self._apply_fault(fault, scheduler, telemetry,
                                         retried_ids, runtime):
                        # Total outage: no replica left to serve anything.
                        # Queued, backing-off, and still-arriving requests
                        # are lost.
                        while len(scheduler):
                            batch = scheduler.next_batch(now, force=True)
                            for request in batch.requests:
                                telemetry.record_failure(request.request_id)
                        while retry_heap:
                            telemetry.record_failure(
                                runtime.pop_retry().request_id)
                        for request in trace[i:]:
                            telemetry.record_failure(request.request_id)
                        i = n
                        fault_idx = len(fault_queue)
                        break
                if i >= n and not len(scheduler) and not retry_heap:
                    break

            # Backed-off retries whose deadline has come re-enter the
            # queue ahead of this event's fresh arrivals (failover work
            # is older).  A still-full queue burns another budget slot
            # for a later attempt or fails the request for good.
            while retry_heap and retry_heap[0][0] <= now + _EPS:
                request = runtime.pop_retry()
                if not scheduler.submit(request):
                    if runtime.try_schedule_retry(request, now):
                        telemetry.record_retry(request.request_id)
                    else:
                        telemetry.record_failure(request.request_id)

            while i < n and trace[i].arrival_ms <= now + _EPS:
                request = trace[i]
                i += 1
                if runtime is not None:
                    # Inline read of the scheduler's window-anchor cache
                    # (oldest_arrival_ms's fast path) — one arrival-rate
                    # call saved against the <5% arming budget.
                    oldest = (oldest_arrival() if scheduler._oldest_dirty
                              else scheduler._oldest_cache)
                    delay = now - oldest if oldest is not None else 0.0
                    # The brownout controller is clocked by the same
                    # arrival-time sojourn sample admission uses (CoDel
                    # style); quiet stretches defer its exit until
                    # traffic resumes or finalize() settles the books.
                    # While the controller is idle and the delay is under
                    # the entry threshold, update() is provably a no-op.
                    if brownout_watch \
                            or delay >= brownout_enter_ms - 1e-9:
                        transition = brownout_ctl.update(now, delay)
                        if transition:
                            runtime.note_brownout_transition(
                                transition, now, telemetry)
                        brownout_watch = (
                            brownout_ctl.active
                            or brownout_ctl._over_since_ms >= 0.0)
                    # Inline of AdmissionController.admit()'s healthy
                    # exit (refill, two compares, decrement) on the
                    # loop-local bucket state: the method call plus its
                    # attribute traffic is a measurable slice of the <5%
                    # arming budget.  Any other case syncs the state
                    # back and takes the full decision path.
                    if adm_refilled:
                        adm_tokens += (now - adm_last_refill) \
                            * adm_rate_per_ms
                        if adm_tokens > adm_burst:
                            adm_tokens = adm_burst
                    else:
                        adm_refilled = True
                    adm_last_refill = now
                    if delay < adm_target_ms and adm_tokens >= 1.0:
                        if adm_codel_armed:
                            admission.first_above_ms = -1.0
                            admission.dropping = False
                            adm_codel_armed = False
                        adm_tokens -= 1.0
                        adm_admitted += 1
                    else:
                        admission.tokens = adm_tokens
                        admission.last_refill_ms = adm_last_refill
                        admission.admitted = adm_admitted
                        admission._refilled = adm_refilled
                        verdict = admission_admit(now, delay,
                                                  request.priority)
                        adm_tokens = admission.tokens
                        adm_admitted = admission.admitted
                        adm_codel_armed = (admission.dropping
                                           or admission.first_above_ms
                                           >= 0.0)
                        if not verdict:
                            telemetry.record_rejection(request.request_id)
                            continue
                if not scheduler.submit(request):
                    telemetry.record_rejection(request.request_id)

            while scheduler.has_ready_batch(now):
                free = [ex for ex in self.executors
                        if ex.alive and ex.free_at_ms <= now + _EPS]
                if not free:
                    break
                if runtime is not None and runtime.open_episodes:
                    gated = [ex for ex in free
                             if runtime.breakers[ex.index].allows(now)]
                    if gated:
                        free = gated
                    elif runtime.open_episodes \
                            >= sum(1 for e in self.executors if e.alive):
                        # Every live replica is tripped: serving through
                        # an open breaker beats serving nothing.
                        runtime.fail_open_batches += 1
                    else:
                        # Healthy capacity exists but is busy or cooling
                        # down; wait for it rather than feed a tripped
                        # replica (its open_until_ms is a candidate).
                        break
                ex = min(free, key=lambda e: (e.free_at_ms, e.index))
                batch = scheduler.next_batch(now)
                last_finish = self._execute(ex, batch, now, telemetry,
                                            runtime)
                if last_finish > max_finish_ms:
                    max_finish_ms = last_finish
            # Exactly one depth sample per event (the settled post-dispatch
            # state) — asymmetric sampling would bias the mean.
            telemetry.record_queue_depth(now, len(scheduler))
            candidates = []
            if i < n:
                candidates.append(trace[i].arrival_ms)
            if retry_heap:
                candidates.append(retry_heap[0][0])
            if len(scheduler):
                timeout = scheduler.next_timeout_ms()
                if timeout is not None:
                    candidates.append(timeout)
                candidates.extend(ex.free_at_ms for ex in self.executors
                                  if ex.alive and ex.free_at_ms > now + _EPS)
                if runtime is not None and runtime.open_episodes:
                    candidates.extend(b.open_until_ms
                                      for b in runtime.breakers if b.is_open)
            if (fault_idx < len(fault_queue)
                    and fault_queue[fault_idx].at_ms <= max_finish_ms + _EPS):
                candidates.append(fault_queue[fault_idx].at_ms)
            candidates = [c for c in candidates if c > now + _EPS]
            if not candidates:
                if i >= n and not len(scheduler) and not retry_heap:
                    break
                # Ready work with an expired window but nothing to wait
                # for would be a scheduling bug; advance minimally.
                now += _EPS
                continue
            now = min(candidates)
        if runtime is not None:
            if admission is not None:
                admission.tokens = adm_tokens
                admission.last_refill_ms = adm_last_refill
                admission.admitted = adm_admitted
                admission._refilled = adm_refilled
            runtime.finalize(now, telemetry)
        # Tracing costs the replay loop nothing: the telemetry records
        # already hold every request's full lifecycle, so an enabled
        # tracer gets one lazy closure that synthesizes the request and
        # batch spans if and when they are exported (see
        # Tracer.add_source and the obs.overhead benchmark).
        if tracer.enabled:
            tracks = {ex.chip_ids: (ex.index, ex.track)
                      for ex in self.executors}
            tracer.add_source(
                lambda: _span_events(telemetry.records, tracks,
                                     telemetry.fault_events,
                                     telemetry.resilience_events))
        self._publish_metrics(telemetry, scheduler, metrics,
                              faults_active=faults is not None,
                              resilience=telemetry.resilience)
        return telemetry

    def _execute(self, executor: _Executor, batch: Batch, now: float,
                 telemetry: TelemetryCollector,
                 runtime: Optional[ResilienceRuntime] = None) -> float:
        """Dispatch ``batch`` on ``executor``; returns the finish time of
        the batch's last image (the engine's in-flight horizon)."""
        size = batch.size
        factor = executor.service_factor(now)
        stall = executor.pending_stall_ms
        executor.pending_stall_ms = 0.0
        interval = self.plan.image_interval_ms * factor
        fill = self.plan.per_image_latency_ms * factor + stall
        occupancy_scale = 1.0
        if runtime is not None:
            breaker = runtime.breakers[executor.index]
            # Inline of on_dispatch()'s closed-and-healthy branch; the
            # state machine only runs on a slow dispatch or open episode.
            if breaker._state or factor >= breaker.slow_factor - 1e-12:
                delta = breaker.on_dispatch(now, factor)
                if delta:
                    runtime.note_breaker_transition(executor.index, delta,
                                                    now, telemetry)
            else:
                breaker.slow_streak = 0
            if runtime.degraded:
                # Brownout: serve this batch at the degraded operating
                # point — denser packing sustains a shorter image
                # interval at the price of a slower pipeline fill.
                plan = runtime.brownout_plan
                occupancy_scale = plan.interval_scale
                interval *= plan.interval_scale
                fill = (self.plan.per_image_latency_ms * factor
                        * plan.fill_scale + stall)
                runtime.degraded_completions += size
        executor.free_at_ms = now + stall + size * interval
        telemetry.record_batch(size)
        for chip_id, shard in zip(executor.chip_ids, self.plan.shards):
            telemetry.record_chip_busy(
                chip_id, stall + size * shard.image_interval_ms * factor
                * occupancy_scale)
        for j, request in enumerate(batch.requests):
            finish = now + fill + j * interval
            telemetry.record_completion(RequestRecord(
                request_id=request.request_id,
                arrival_ms=request.arrival_ms,
                start_ms=now,
                finish_ms=finish,
                chip_ids=executor.chip_ids,
                batch_size=size,
                priority=request.priority,
                model=request.model,
            ))
        return now + fill + (size - 1) * interval

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _executor_for_chip(self, chip_id: int) -> Optional[_Executor]:
        replica = self.plan.replica_of_chip(chip_id)
        if replica is None or replica >= len(self.executors):
            return None
        return self.executors[replica]

    def _apply_fault(self, fault: ResolvedFault,
                     scheduler: MicroBatchScheduler,
                     telemetry: TelemetryCollector,
                     retried_ids: set,
                     runtime: Optional[ResilienceRuntime] = None) -> bool:
        """Apply one resolved fault; returns True when the whole fleet is
        down afterwards (total outage — the caller fails everything)."""
        if fault.kind == "chip-kill":
            return self._apply_chip_kill(fault, scheduler, telemetry,
                                         retried_ids, runtime)
        if fault.kind == "straggler":
            ex = self._executor_for_chip(fault.chip)
            event = {"kind": "straggler", "at_ms": fault.at_ms,
                     "chip": fault.chip, "until_ms": fault.until_ms,
                     "factor": fault.factor,
                     "label": f"straggler chip={fault.chip} "
                              f"x{fault.factor:g}"}
            if ex is None or not ex.alive:
                event["outcome"] = "no-op (chip unowned or dead)"
            else:
                ex.straggle_factor = fault.factor
                ex.straggle_until_ms = fault.until_ms
                event["replica"] = ex.index
                event["outcome"] = (f"replica{ex.index} degraded "
                                    f"{fault.factor:g}x")
            telemetry.record_fault(event)
            return False
        # cache-wipe: every live replica pays a recompile stall on its
        # next dispatch.
        stall = (fault.stall_ms if fault.stall_ms is not None
                 else DEFAULT_WIPE_STALL_FACTOR
                 * self.plan.per_image_latency_ms)
        touched = 0
        for ex in self.executors:
            if ex.alive:
                ex.pending_stall_ms += stall
                touched += 1
        telemetry.record_fault({
            "kind": "cache-wipe", "at_ms": fault.at_ms,
            "stall_ms": stall, "label": "cache-wipe",
            "outcome": f"{touched} replica(s) stalled {stall:g} ms"})
        return False

    def _apply_chip_kill(self, fault: ResolvedFault,
                         scheduler: MicroBatchScheduler,
                         telemetry: TelemetryCollector,
                         retried_ids: set,
                         runtime: Optional[ResilienceRuntime] = None) -> bool:
        """Kill the replica group owning ``fault.chip``; fail over its
        in-flight requests.  With the resilience runtime armed each
        retraction draws on the run's retry budget and backs off before
        resubmitting; disarmed, the legacy retry-once set applies."""
        ex = self._executor_for_chip(fault.chip)
        event = {"kind": "chip-kill", "at_ms": fault.at_ms,
                 "chip": fault.chip,
                 "label": f"chip-kill chip={fault.chip}"}
        if ex is None or not ex.alive:
            event.update(outcome="no-op (chip unowned or already dead)",
                         failover=False, requeued=0, lost=0,
                         retried_ids=())
            telemetry.record_fault(event)
            return not any(e.alive for e in self.executors)
        ex.alive = False
        # Completions are recorded eagerly at dispatch; retract every
        # record this replica would have emitted after the kill instant.
        inflight = [r for r in telemetry.records
                    if r.chip_ids == ex.chip_ids
                    and r.finish_ms > fault.at_ms + _EPS]
        telemetry.drop_records(inflight)
        survivors = any(e.alive for e in self.executors)
        requeued = lost = 0
        requeued_ids = []
        for rec in sorted(inflight,
                          key=lambda r: (r.arrival_ms, r.request_id)):
            if runtime is not None:
                if survivors and runtime.try_schedule_retry(
                        Request(request_id=rec.request_id,
                                arrival_ms=rec.arrival_ms,
                                priority=rec.priority,
                                model=rec.model),
                        fault.at_ms):
                    telemetry.record_retry(rec.request_id)
                    requeued += 1
                    requeued_ids.append(rec.request_id)
                else:
                    telemetry.record_failure(rec.request_id)
                    lost += 1
                continue
            can_retry = survivors and rec.request_id not in retried_ids
            if can_retry:
                retried_ids.add(rec.request_id)
                resubmitted = scheduler.submit(Request(
                    request_id=rec.request_id,
                    arrival_ms=rec.arrival_ms,
                    priority=rec.priority,
                    model=rec.model))
                if resubmitted:
                    telemetry.record_retry(rec.request_id)
                    requeued += 1
                    requeued_ids.append(rec.request_id)
                    continue
            telemetry.record_failure(rec.request_id)
            lost += 1
        event.update(
            outcome=(f"replica{ex.index} down; {requeued} retried, "
                     f"{lost} lost" if survivors
                     else f"replica{ex.index} down; fleet offline"),
            replica=ex.index, failover=survivors, requeued=requeued,
            lost=lost, retried_ids=tuple(requeued_ids))
        telemetry.record_fault(event)
        return not survivors

    def _publish_metrics(self, telemetry: TelemetryCollector,
                         scheduler: MicroBatchScheduler,
                         registry: MetricsRegistry,
                         faults_active: bool = False,
                         resilience: Optional[dict] = None) -> None:
        """Bulk post-run publication under ``serve.engine.*`` /
        ``serve.scheduler.*`` — plus ``serve.faults.*`` when a fault plan
        was supplied (docs/observability.md).  Deliberately not
        per-event: one vectorized ``observe_many`` per histogram keeps the
        instrumented hot loop indistinguishable from the bare one."""
        eng = "serve.engine"
        registry.counter(f"{eng}.requests_completed",
                         help="requests served to completion"
                         ).inc(telemetry.num_completed)
        registry.counter(f"{eng}.requests_rejected",
                         help="requests shed by the bounded queue"
                         ).inc(telemetry.num_rejected)
        registry.counter(f"{eng}.batches_dispatched",
                         help="micro-batches executed"
                         ).inc(telemetry.num_batches)
        registry.gauge(f"{eng}.chips",
                       help="chips provisioned by the shard plan"
                       ).set(self.config.num_chips)
        registry.gauge(f"{eng}.throughput_fps",
                       help="achieved completions/s of the last run"
                       ).set(telemetry.throughput_fps())
        if telemetry.num_completed:
            latency = telemetry.latency_values()
            wait = telemetry.wait_values()
            registry.histogram(f"{eng}.latency_ms",
                               help="end-to-end request latency (ms)"
                               ).observe_many(latency)
            registry.histogram(f"{eng}.wait_ms",
                               help="queueing delay (ms)"
                               ).observe_many(wait)
            registry.histogram(f"{eng}.service_ms",
                               help="chip service time (ms)"
                               ).observe_many(latency - wait)
        if telemetry.num_batches:
            registry.histogram(
                f"{eng}.batch_size",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
                help="formed micro-batch sizes"
                ).observe_many(telemetry.batch_size_values())
        if telemetry.num_queue_samples:
            registry.histogram(
                f"{eng}.queue_depth",
                buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                         128.0, 256.0),
                help="queue depth at engine events"
                ).observe_many(telemetry.queue_depth_values())
        if faults_active:
            flt = "serve.faults"
            by_kind = {"chip-kill": 0, "straggler": 0, "cache-wipe": 0}
            for event in telemetry.fault_events:
                kind = event.get("kind")
                if kind in by_kind:
                    by_kind[kind] += 1
            registry.counter(f"{flt}.injected",
                             help="fault events applied to the run"
                             ).inc(len(telemetry.fault_events))
            registry.counter(f"{flt}.chip_kills",
                             help="chip-kill events applied"
                             ).inc(by_kind["chip-kill"])
            registry.counter(f"{flt}.stragglers",
                             help="straggler events applied"
                             ).inc(by_kind["straggler"])
            registry.counter(f"{flt}.cache_wipes",
                             help="cache-wipe events applied"
                             ).inc(by_kind["cache-wipe"])
            registry.counter(f"{flt}.retries",
                             help="in-flight requests requeued by failover"
                             ).inc(telemetry.num_retried)
            registry.counter(f"{flt}.failovers",
                             help="chip kills survived by re-routing to "
                                  "replicas"
                             ).inc(telemetry.num_failovers)
            registry.counter(f"{flt}.unrecoverable",
                             help="requests lost to faults (counted "
                                  "against availability)"
                             ).inc(telemetry.num_failed)
            registry.gauge(f"{flt}.chips_lost",
                           help="chips dead at end of run"
                           ).set(sum(len(ex.chip_ids)
                                     for ex in self.executors
                                     if not ex.alive))
        if resilience is not None:
            res = "serve.resilience"
            registry.counter(f"{res}.admitted",
                             help="arrivals admitted past the gate"
                             ).inc(resilience["admitted"])
            registry.counter(f"{res}.admission_shed",
                             help="arrivals shed by admission control"
                             ).inc(resilience["admission_shed"])
            registry.counter(f"{res}.shed_queue_delay",
                             help="sheds by the CoDel delay controller"
                             ).inc(resilience["shed_queue_delay"])
            registry.counter(f"{res}.shed_token_bucket",
                             help="sheds by the rate token bucket"
                             ).inc(resilience["shed_token_bucket"])
            registry.gauge(f"{res}.retry_budget",
                           help="failover retry slots granted to the run"
                           ).set(resilience["retry_budget"])
            registry.counter(f"{res}.retries_scheduled",
                             help="budgeted failover retries scheduled"
                             ).inc(resilience["retries_scheduled"])
            registry.counter(f"{res}.retry_exhausted",
                             help="retry requests denied by the budget "
                                  "or attempt cap"
                             ).inc(resilience["retry_exhausted"])
            registry.counter(f"{res}.breaker_opens",
                             help="circuit-breaker open transitions"
                             ).inc(resilience["breaker_opens"])
            registry.counter(f"{res}.breaker_probes",
                             help="half-open probe dispatches"
                             ).inc(resilience["breaker_probes"])
            registry.counter(f"{res}.breaker_closes",
                             help="breaker episodes closed by a healthy "
                                  "probe"
                             ).inc(resilience["breaker_closes"])
            registry.counter(f"{res}.fail_open_batches",
                             help="batches served through open breakers "
                                  "because no live replica was healthy"
                             ).inc(resilience["fail_open_batches"])
            registry.counter(f"{res}.brownout_entries",
                             help="down-shifts to the degraded plan"
                             ).inc(resilience["brownout_entries"])
            registry.counter(f"{res}.brownout_exits",
                             help="recoveries back to the primary plan"
                             ).inc(resilience["brownout_exits"])
            registry.gauge(f"{res}.brownout_ms",
                           help="simulated ms spent browned out"
                           ).set(resilience["brownout_ms"])
            registry.counter(f"{res}.degraded_completions",
                             help="requests served at the degraded "
                                  "operating point"
                             ).inc(resilience["degraded_completions"])
        scheduler.publish_metrics(registry)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-paragraph engine summary (deployment + shard plan)."""
        r = self.report
        header = []
        if self.operating_point is not None:
            p = self.operating_point
            header.append(
                f"operating point: {p.label} ({len(p.assignment)} epitome "
                f"layers; search eval {p.crossbars} XBs, "
                f"{p.latency_ms:.3f} ms, {p.energy_mj:.4f} mJ)")
        if self.brownout_plan is not None:
            b = self.brownout_plan
            header.append(
                f"brownout plan: {b.label} (interval x{b.interval_scale:.3f},"
                f" fill x{b.fill_scale:.3f})")
        engine_line = f"engine: {self.config.engine}"
        if self.last_engine is not None:
            engine_line += f"; last run: {self.last_engine}"
            if self.engine_fallback_reason:
                engine_line += f" (fallback: {self.engine_fallback_reason})"
        return "\n".join(header + [
            f"deployment: {len(r.layers)} layers, {r.num_crossbars} "
            f"crossbars, fill latency {r.latency_ms:.3f} ms, "
            f"image interval {r.image_interval_ms:.3f} ms",
            self.plan.summary(),
            f"scheduler: max_batch={self.config.scheduler.max_batch_size} "
            f"window={self.config.scheduler.window_ms} ms "
            f"queue_depth={self.config.scheduler.queue_depth} "
            f"policy={self.config.scheduler.policy}",
            engine_line,
        ])
