"""``python -m repro serve`` — replay a request trace against a deployment.

Examples::

    # 500-request synthetic trace on 2 chips against an epitome ResNet-18
    python -m repro serve

    # explicit manifest + recorded trace
    python -m repro serve --manifest deploy.json --requests trace.json

    # export the servable manifest for later replay
    python -m repro serve --model resnet50 --export-manifest deploy.json

    # deploy a searched operating point (docs/search-to-serve.md)
    python -m repro search --model resnet18 --objective pareto \
        --json result.json
    python -m repro serve --from-search result.json --policy latency-opt

    # A/B two operating points under identical offered load
    python -m repro serve --from-search result.json \
        --policy latency-opt --ab-policy energy-opt

With no ``--requests`` file a Poisson trace is generated; its rate
defaults to 70% of the shard plan's aggregate throughput so the default
run shows a loaded-but-stable system.  ``--json`` emits the telemetry
summary (or the A/B sweep rows) as machine-readable JSON after the
report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core.designer import build_deployments, uniform_assignment
from ..core.export import export_deployments, write_manifest
from ..models.specs import get_network_spec
from ..obs.metrics import MetricsRegistry
from ..obs.runtime import use_metrics, use_tracer
from ..obs.slo import DEFAULT_AVAILABILITY, SLO
from ..obs.tracer import NullTracer, Tracer
from ..pim.config import DEFAULT_CONFIG
from ..pim.simulator import sim_counters
from ..search.pareto import SELECTION_POLICIES
from .deploy import (
    AB_LOAD_FACTORS,
    ab_offered_load_sweep,
    engine_from_search,
    load_search_result,
    render_ab,
)
from .engine import ServingConfig, ServingEngine
from .scenarios import get_scenario, parse_faults, scenario_table
from .scheduler import SchedulerConfig
from .trace import load_trace, save_trace, synthetic_trace

__all__ = ["add_serve_parser", "run_serve", "main"]

MODEL_CHOICES = ["resnet18", "resnet34", "resnet50", "resnet101", "vgg16"]
POLICY_CHOICES = list(SELECTION_POLICIES)
DEFAULT_NUM_CHIPS = 2


def add_serve_parser(subparsers) -> argparse.ArgumentParser:
    """Register the ``serve`` subcommand on an existing subparser set."""
    p = subparsers.add_parser(
        "serve", help="replay a request trace against a deployed network")
    serve_sub = p.add_subparsers(dest="serve_command",
                                 metavar="{scenarios,chaos}")
    scenarios = serve_sub.add_parser(
        "scenarios", help="inspect the load-scenario registry")
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command",
                                             required=True)
    scenarios_sub.add_parser("list",
                             help="list registered load scenarios")
    chaos = serve_sub.add_parser(
        "chaos", help="seeded chaos drill: replay a composed scenario x "
                      "fault plan against resilience-on and -off fleets "
                      "(docs/resilience.md)")
    chaos.add_argument("--seed", type=int, action="append",
                       dest="chaos_seeds", metavar="N",
                       help="drill seed (repeatable; default: 3 and 7)")
    chaos.add_argument("--num-requests", type=int, default=500,
                       dest="chaos_num_requests",
                       help="requests per drill trace")
    chaos.add_argument("--num-chips", type=int, default=None,
                       dest="chaos_num_chips",
                       help="fleet size (default: derived for 2 replica "
                            "groups of the primary point)")
    chaos.add_argument("--availability-floor", type=float, default=0.25,
                       metavar="FRAC",
                       help="minimum availability the resilience-on fleet "
                            "must hold on every seed")
    chaos.add_argument("--json", action="store_true", dest="chaos_json",
                       help="also print the drill rows as JSON (stable "
                            "key order; byte-identical per seed)")
    src = p.add_argument_group("deployment source")
    src.add_argument("--manifest", default=None,
                     help="format-2 deployment manifest JSON to serve")
    src.add_argument("--from-search", default=None, metavar="RESULT",
                     help="deploy an operating point of a `repro search "
                          "--json` result (winner or Pareto front)")
    src.add_argument("--policy", default="knee", choices=POLICY_CHOICES,
                     help="operating-point selection off the search "
                          "result's front (with --from-search)")
    src.add_argument("--point-index", type=int, default=None, metavar="I",
                     help="explicit front index (with --policy index)")
    src.add_argument("--ab-policy", default=None, choices=POLICY_CHOICES,
                     metavar="POLICY",
                     help="A/B mode: also deploy this second policy and "
                          "sweep both fleets under identical offered load")
    src.add_argument("--model", default="resnet18", choices=MODEL_CHOICES,
                     help="network spec to compile when no manifest given")
    src.add_argument("--baseline", action="store_true",
                     help="deploy plain convolutions (no epitomes)")
    src.add_argument("--weight-bits", type=int, default=9,
                     help="deployment weight precision (designer path)")
    src.add_argument("--export-manifest", default=None, metavar="PATH",
                     help="write the compiled deployment manifest and use it")

    fleet = p.add_argument_group("fleet")
    fleet.add_argument("--num-chips", type=int, default=None,
                       help="simulated chips to provision (default: 2, or "
                            "derived from the assignment's crossbar demand "
                            "with --from-search)")
    fleet.add_argument("--mode", default="auto",
                       choices=["auto", "replica", "layer"],
                       help="sharding mode across chips")
    fleet.add_argument("--engine", default="auto",
                       choices=["auto", "scalar", "vectorized"],
                       help="replay engine: the scalar event loop, the "
                            "whole-trace vectorized engine, or auto "
                            "(vectorized unless faults/resilience/non-FIFO "
                            "need the scalar loop — "
                            "docs/vectorized-replay.md)")

    sched = p.add_argument_group("scheduler")
    sched.add_argument("--max-batch", type=int, default=8,
                       help="micro-batch size cap")
    sched.add_argument("--window-ms", type=float, default=2.0,
                       help="batching window (ms)")
    sched.add_argument("--queue-depth", type=int, default=256,
                       help="bounded queue capacity")
    sched.add_argument("--sched-policy", default="fifo",
                       choices=["fifo", "priority"],
                       help="batch formation order")

    load = p.add_argument_group("workload")
    load.add_argument("--requests", default=None,
                      help="trace JSON to replay (see repro.serve.trace)")
    load.add_argument("--num-requests", type=int, default=500,
                      help="synthetic trace length")
    load.add_argument("--rate-fps", type=float, default=None,
                      help="synthetic offered load (default: 0.7x capacity)")
    load.add_argument("--priority-levels", type=int, default=1,
                      help="synthetic priority classes "
                           "(with --sched-policy priority)")
    load.add_argument("--seed", type=int, default=0,
                      help="synthetic trace RNG seed")
    load.add_argument("--scenario", default=None, metavar="NAME",
                      help="generate the trace from a registered load "
                           "scenario (see `repro serve scenarios list`)")
    load.add_argument("--faults", default=None, metavar="SPEC",
                      help="inject timed faults, e.g. 'chip-kill@t=0.5' "
                           "or 'straggler@t=0.2:chip=1:factor=3' "
                           "(grammar: docs/scenarios.md)")
    load.add_argument("--save-trace", default=None, metavar="PATH",
                      help="write the (synthetic) trace before replaying")

    res = p.add_argument_group("resilience")
    res.add_argument("--resilience", action="store_true",
                     help="arm adaptive admission control, failover retry "
                          "budgets, circuit breakers and brownout "
                          "(docs/resilience.md)")
    res.add_argument("--resilience-seed", type=int, default=0, metavar="N",
                     help="retry-jitter seed for the resilience runtime")
    res.add_argument("--brownout-policy", default=None,
                     choices=POLICY_CHOICES, metavar="POLICY",
                     help="derive the brownout degraded operating point "
                          "from this second front policy (needs "
                          "--from-search and --resilience; without it "
                          "brownout uses the policy fallback scales)")

    obs = p.add_argument_group("observability")
    obs.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write request/batch spans: .json = Chrome "
                          "trace-event (Perfetto-loadable), .jsonl = one "
                          "span per line")
    obs.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="export the run's metrics registry: .prom/.txt "
                          "= Prometheus text, .jsonl = JSON lines")
    obs.add_argument("--slo-p99-ms", type=float, default=None,
                     metavar="MS",
                     help="p99 latency SLO target (default: 5x the "
                          "deployment's fill latency + batching window)")
    obs.add_argument("--slo-availability", type=float, default=None,
                     metavar="FRAC",
                     help="availability SLO target "
                          f"(default: {DEFAULT_AVAILABILITY})")

    p.add_argument("--json", action="store_true",
                   help="also print the telemetry summary as JSON")
    return p


def _default_slo(args, engines) -> SLO:
    """The SLO a run is judged against when flags don't pin one.

    The derived p99 target is ``5 x (fill latency + batching window)`` of
    the *slowest* fleet — generous enough that a healthy, <=70%-loaded
    deployment attains it, tight enough that saturation or queue collapse
    shows up as a miss.  Explicit ``--slo-p99-ms``/``--slo-availability``
    override either half independently.
    """
    p99 = args.slo_p99_ms
    if p99 is None:
        p99 = 5.0 * max(engine.plan.per_image_latency_ms
                        + engine.config.scheduler.window_ms
                        for engine in engines)
    availability = (args.slo_availability
                    if args.slo_availability is not None
                    else DEFAULT_AVAILABILITY)
    return SLO(p99_ms=p99, availability=availability, name="serve")


def _write_obs_artifacts(args, tracer: Tracer,
                         registry: MetricsRegistry) -> None:
    """Write ``--trace-out`` / ``--metrics-out`` after a run."""
    if args.metrics_out is not None:
        sim_counters().publish(registry)
        from ..obs.export import write_metrics

        write_metrics(registry, args.metrics_out)
        print(f"wrote metrics -> {args.metrics_out}")
    if args.trace_out is not None:
        if args.trace_out.endswith(".jsonl"):
            tracer.write_jsonl(args.trace_out)
        else:
            tracer.write_chrome_trace(args.trace_out)
        print(f"wrote trace ({len(tracer)} spans) -> {args.trace_out}")


def _scheduler_config(args) -> SchedulerConfig:
    return SchedulerConfig(
        max_batch_size=args.max_batch,
        window_ms=args.window_ms,
        queue_depth=args.queue_depth,
        policy=args.sched_policy,
    )


def _resilience_config(args):
    from .resilience import ResilienceConfig

    if not args.resilience:
        return None
    return ResilienceConfig(seed=args.resilience_seed)


def _build_engine(args, resilience=None) -> ServingEngine:
    if args.from_search is not None:
        result = load_search_result(args.from_search)
        engine = engine_from_search(
            result, policy=args.policy, index=args.point_index,
            num_chips=args.num_chips, mode=args.mode,
            scheduler=_scheduler_config(args),
            resilience=resilience,
            brownout_policy=args.brownout_policy,
            engine=args.engine)
        if args.export_manifest is not None:
            # engine_from_search already compiled this manifest; write
            # the retained copy rather than recompiling the deployment.
            write_manifest(engine.deployment_manifest, args.export_manifest)
            print(f"wrote deployment manifest -> {args.export_manifest}")
        return engine
    serving = ServingConfig(
        num_chips=(args.num_chips if args.num_chips is not None
                   else DEFAULT_NUM_CHIPS),
        mode=args.mode,
        scheduler=_scheduler_config(args),
        resilience=resilience,
        engine=args.engine)
    if args.manifest is not None:
        return ServingEngine.from_manifest(args.manifest, serving)

    # Designer path: compile the spec into a deployment manifest, then
    # serve *from the manifest* — every run exercises the same artifact a
    # production hand-off would replay.
    spec = get_network_spec(args.model)
    assignment = None if args.baseline else uniform_assignment(spec)
    deployments = build_deployments(
        spec, assignment, weight_bits=args.weight_bits,
        activation_bits=9, use_wrapping=not args.baseline,
        config=DEFAULT_CONFIG)
    manifest = export_deployments(deployments, DEFAULT_CONFIG,
                                  name=args.model)
    if args.export_manifest is not None:
        write_manifest(manifest, args.export_manifest)
        print(f"wrote deployment manifest -> {args.export_manifest}")
    return ServingEngine.from_manifest(manifest, serving)


def run_serve(args) -> int:
    try:
        return _run_serve(args)
    except (ValueError, KeyError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_ab(args, fault_plan=None) -> int:
    """A/B mode: two operating points of one search result, swept under
    identical offered load (see repro.serve.deploy.ab_offered_load_sweep)."""
    result = load_search_result(args.from_search)
    engines = {
        policy: engine_from_search(
            result, policy=policy, index=args.point_index,
            num_chips=args.num_chips, mode=args.mode,
            scheduler=_scheduler_config(args),
            engine=args.engine)
        for policy in (args.policy, args.ab_policy)}
    for policy, engine in engines.items():
        print(f"[{policy}]")
        print(engine.describe())
        print()
    trace = None
    if args.requests is not None:
        trace = load_trace(args.requests)
        print(f"replaying {len(trace)} recorded requests "
              f"from {args.requests} against both fleets")
        print()
    slo = _default_slo(args, engines.values())
    tracer = Tracer() if args.trace_out is not None else NullTracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        rows = ab_offered_load_sweep(engines,
                                     num_requests=args.num_requests,
                                     load_factors=AB_LOAD_FACTORS,
                                     seed=args.seed, rate_fps=args.rate_fps,
                                     trace=trace,
                                     priority_levels=args.priority_levels,
                                     slo=slo,
                                     scenario=args.scenario,
                                     faults=fault_plan,
                                     resilience=_resilience_config(args))
    print(render_ab(rows, title=f"A/B {args.policy} vs {args.ab_policy} — "
                                f"{result.model}"))
    _write_obs_artifacts(args, tracer, registry)
    if args.json:
        print()
        print(json.dumps(rows, indent=2))
    return 0


def _run_chaos_cli(args) -> int:
    """``serve chaos``: seeded drills against resilience-on/-off fleets."""
    # Imported lazily: the harness pulls in the search bench builder,
    # which plain trace-replay runs never need.
    from .resilience.chaos import chaos_json, render_chaos, run_chaos

    seeds = args.chaos_seeds if args.chaos_seeds else [3, 7]
    rows, problems = run_chaos(seeds,
                               num_requests=args.chaos_num_requests,
                               num_chips=args.chaos_num_chips,
                               availability_floor=args.availability_floor)
    print(render_chaos(rows))
    for problem in problems:
        print(f"INVARIANT VIOLATED: {problem}", file=sys.stderr)
    if args.chaos_json:
        print()
        print(chaos_json(rows, problems))
    return 1 if problems else 0


def _run_serve(args) -> int:
    if getattr(args, "serve_command", None) == "scenarios":
        print(scenario_table())
        return 0
    if getattr(args, "serve_command", None) == "chaos":
        return _run_chaos_cli(args)
    if args.from_search is not None and args.manifest is not None:
        raise ValueError("--from-search and --manifest are both deployment "
                         "sources; pass exactly one")
    if args.scenario is not None and args.requests is not None:
        raise ValueError("--scenario generates a synthetic trace and "
                         "--requests replays a recorded one; pass exactly "
                         "one workload source")
    # Parse the fault spec before compiling anything — a typo should fail
    # in milliseconds, not after a deployment build.
    fault_plan = (parse_faults(args.faults)
                  if args.faults is not None else None)
    if args.brownout_policy is not None:
        if args.from_search is None:
            raise ValueError("--brownout-policy selects a degraded point "
                             "off a search front; it needs --from-search")
        if not args.resilience:
            raise ValueError("--brownout-policy is a resilience feature; "
                             "also pass --resilience to arm the runtime")
        if args.ab_policy is not None:
            raise ValueError("--brownout-policy is ambiguous in A/B mode "
                             "(two primary points); run a single-fleet "
                             "--from-search deployment")
    if args.ab_policy is not None:
        if args.from_search is None:
            raise ValueError("--ab-policy needs --from-search "
                             "(two operating points of one search result)")
        if args.ab_policy == args.policy:
            raise ValueError(
                f"--policy and --ab-policy are both {args.policy!r}; "
                "pick two different policies to A/B")
        if args.save_trace is not None:
            raise ValueError("--save-trace is not supported in A/B mode "
                             "(the sweep replays one trace per load "
                             "factor); record one with a single-fleet run")
        if args.export_manifest is not None:
            raise ValueError("--export-manifest is ambiguous in A/B mode "
                             "(two operating points); export from a "
                             "single-fleet --from-search run")
        return _run_ab(args, fault_plan=fault_plan)
    engine = _build_engine(args, resilience=_resilience_config(args))
    print(engine.describe())
    print()

    if args.requests is not None:
        trace = load_trace(args.requests)
        print(f"replaying {len(trace)} recorded requests "
              f"from {args.requests}")
    else:
        rate = args.rate_fps
        if rate is None:
            rate = 0.7 * engine.plan.throughput_fps
        if args.scenario is not None:
            scenario = get_scenario(args.scenario)
            trace = scenario.to_trace(args.num_requests, rate_rps=rate,
                                      seed=args.seed)
            print(f"scenario {scenario.name!r}: {len(trace)} requests at "
                  f"{rate:.1f} req/s mean offered "
                  f"({scenario.description})")
        else:
            trace = synthetic_trace(args.num_requests, rate_rps=rate,
                                    seed=args.seed,
                                    priority_levels=args.priority_levels)
            print(f"synthetic trace: {len(trace)} requests at "
                  f"{rate:.1f} req/s offered")
        if args.save_trace is not None:
            save_trace(trace, args.save_trace)
            print(f"wrote trace -> {args.save_trace}")
    if fault_plan is not None:
        print(f"fault plan: {fault_plan.describe()}")
    print()

    slo = _default_slo(args, [engine])
    tracer = Tracer() if args.trace_out is not None else NullTracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_metrics(registry):
        telemetry = engine.serve(trace, faults=fault_plan)
    used = f"replay engine: {engine.last_engine}"
    if engine.engine_fallback_reason:
        used += f" (auto fell back to scalar: {engine.engine_fallback_reason})"
    print(used)
    print()
    print(telemetry.report(slo=slo))
    _write_obs_artifacts(args, tracer, registry)
    if args.json:
        print()
        print(json.dumps(telemetry.summary(slo=slo), indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry (``python -m repro.serve.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.cli",
        description="EPIM serving runtime")
    sub = parser.add_subparsers(dest="command", required=True)
    add_serve_parser(sub)
    args = parser.parse_args(argv)
    return run_serve(args)


if __name__ == "__main__":      # pragma: no cover
    sys.exit(main())
