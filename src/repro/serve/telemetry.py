"""Serving telemetry: per-request latency percentiles, queue depth, chip
utilization and rolling throughput.

The collector is deliberately simulation-agnostic: the engine feeds it
completion records, queue-depth samples and per-chip busy time in simulated
milliseconds, and it reduces them into the metrics a serving operator
watches (p50/p95/p99 latency, achieved vs offered throughput, utilization).
``report()`` renders everything with :class:`repro.analysis.tables.Table`
so serving output visually matches the paper-artefact tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.tables import Table

__all__ = ["RequestRecord", "TelemetryCollector"]


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one completed request (simulated milliseconds)."""

    request_id: int
    arrival_ms: float
    start_ms: float
    finish_ms: float
    chip_ids: Tuple[int, ...]
    batch_size: int
    priority: int = 0

    @property
    def latency_ms(self) -> float:
        """End-to-end: arrival to completion (queue wait + service)."""
        return self.finish_ms - self.arrival_ms

    @property
    def wait_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        return self.finish_ms - self.start_ms


class TelemetryCollector:
    """Accumulates serving events and reduces them to operator metrics."""

    def __init__(self, num_chips: int = 1):
        self.num_chips = num_chips
        self.records: List[RequestRecord] = []
        self.rejected: List[int] = []
        self.queue_samples: List[Tuple[float, int]] = []
        self.chip_busy_ms: Dict[int, float] = {c: 0.0 for c in range(num_chips)}
        self.batch_sizes: List[int] = []

    # ---- event ingestion ---------------------------------------------
    def record_completion(self, record: RequestRecord) -> None:
        self.records.append(record)

    def record_rejection(self, request_id: int) -> None:
        """A request shed because the bounded queue was full."""
        self.rejected.append(request_id)

    def record_queue_depth(self, now_ms: float, depth: int) -> None:
        self.queue_samples.append((now_ms, depth))

    def record_chip_busy(self, chip_id: int, busy_ms: float) -> None:
        self.chip_busy_ms[chip_id] = \
            self.chip_busy_ms.get(chip_id, 0.0) + busy_ms

    def record_batch(self, batch_size: int) -> None:
        self.batch_sizes.append(batch_size)

    # ---- reductions ---------------------------------------------------
    @property
    def num_completed(self) -> int:
        return len(self.records)

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)

    @property
    def makespan_ms(self) -> float:
        """First arrival to last completion."""
        if not self.records:
            return 0.0
        first = min(r.arrival_ms for r in self.records)
        last = max(r.finish_ms for r in self.records)
        return last - first

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over completed requests (q in [0, 100])."""
        if not self.records:
            return float("nan")
        latencies = np.array([r.latency_ms for r in self.records])
        return float(np.percentile(latencies, q))

    def latency_percentiles(self) -> Dict[str, float]:
        return {"p50": self.latency_percentile(50.0),
                "p95": self.latency_percentile(95.0),
                "p99": self.latency_percentile(99.0)}

    def mean_latency_ms(self) -> float:
        if not self.records:
            return float("nan")
        return float(np.mean([r.latency_ms for r in self.records]))

    def throughput_fps(self) -> float:
        """Achieved completions/second over the whole run."""
        span = self.makespan_ms
        return self.num_completed / span * 1000.0 if span > 0 else 0.0

    def rolling_throughput(self, window_ms: float = 1000.0
                           ) -> List[Tuple[float, float]]:
        """Completions/second in consecutive ``window_ms`` buckets,
        returned as ``(bucket_end_ms, fps)`` pairs."""
        if not self.records or window_ms <= 0:
            return []
        finishes = sorted(r.finish_ms for r in self.records)
        start = min(r.arrival_ms for r in self.records)
        out: List[Tuple[float, float]] = []
        edge = start + window_ms
        count = 0
        i = 0
        while i < len(finishes):
            if finishes[i] <= edge:
                count += 1
                i += 1
            else:
                out.append((edge, count / window_ms * 1000.0))
                edge += window_ms
                count = 0
        out.append((edge, count / window_ms * 1000.0))
        return out

    def chip_utilization(self) -> Dict[int, float]:
        """Busy fraction per chip over the makespan (0 when idle run)."""
        span = self.makespan_ms
        if span <= 0:
            return {chip: 0.0 for chip in self.chip_busy_ms}
        return {chip: min(1.0, busy / span)
                for chip, busy in sorted(self.chip_busy_ms.items())}

    def mean_queue_depth(self) -> float:
        if not self.queue_samples:
            return 0.0
        return float(np.mean([d for _, d in self.queue_samples]))

    def max_queue_depth(self) -> int:
        if not self.queue_samples:
            return 0
        return max(d for _, d in self.queue_samples)

    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return float(np.mean(self.batch_sizes))

    # ---- presentation -------------------------------------------------
    def summary(self) -> Dict[str, Optional[float]]:
        """Flat metric dict (the JSON output of the serve CLI).

        Metrics undefined for the run (e.g. latency percentiles with zero
        completions) are ``None``, not NaN — the output must stay valid
        JSON for strict consumers (jq, JSON.parse).
        """
        pct = self.latency_percentiles()
        out = {
            "completed": float(self.num_completed),
            "rejected": float(self.num_rejected),
            "makespan_ms": self.makespan_ms,
            "throughput_fps": self.throughput_fps(),
            "latency_mean_ms": self.mean_latency_ms(),
            "latency_p50_ms": pct["p50"],
            "latency_p95_ms": pct["p95"],
            "latency_p99_ms": pct["p99"],
            "mean_batch_size": self.mean_batch_size(),
            "mean_queue_depth": self.mean_queue_depth(),
            "max_queue_depth": float(self.max_queue_depth()),
        }
        for chip, util in self.chip_utilization().items():
            out[f"chip{chip}_utilization"] = util
        return {key: None if isinstance(value, float) and np.isnan(value)
                else value
                for key, value in out.items()}

    def report(self) -> str:
        """Operator-facing text report (latency, throughput, chips)."""
        pct = self.latency_percentiles()
        latency = Table(["metric", "value"], title="request latency (ms)")
        latency.add_row("mean", self.mean_latency_ms())
        latency.add_row("p50", pct["p50"])
        latency.add_row("p95", pct["p95"])
        latency.add_row("p99", pct["p99"])

        load = Table(["metric", "value"], title="load")
        load.add_row("completed", self.num_completed)
        load.add_row("rejected", self.num_rejected)
        load.add_row("throughput (req/s)", self.throughput_fps())
        load.add_row("mean batch size", self.mean_batch_size())
        load.add_row("mean queue depth", self.mean_queue_depth())
        load.add_row("max queue depth", self.max_queue_depth())

        chips = Table(["chip", "busy_ms", "utilization"],
                      title="chip utilization")
        for chip, util in self.chip_utilization().items():
            chips.add_row(chip, self.chip_busy_ms.get(chip, 0.0), util)

        return "\n\n".join([latency.render(), load.render(), chips.render()])
