"""Serving telemetry: per-request latency percentiles, queue depth, chip
utilization and rolling throughput.

The collector is deliberately simulation-agnostic: the engine feeds it
completion records, queue-depth samples and per-chip busy time in simulated
milliseconds, and it reduces them into the metrics a serving operator
watches (p50/p95/p99 latency, achieved vs offered throughput, utilization).
``report()`` renders everything with :class:`repro.analysis.tables.Table`
so serving output visually matches the paper-artefact tables.

Two ingestion modes share one set of reductions:

- *record mode* — the scalar engine appends one :class:`RequestRecord`
  per completion and one ``(t, depth)`` tuple per event;
- *column mode* — the vectorized engine hands over whole NumPy columns
  at once (:meth:`TelemetryCollector.ingest_columns`), and the familiar
  ``records`` / ``queue_samples`` / ``batch_sizes`` views materialize
  lazily on first access.

Every reduction (``summary()``, percentiles, utilization) routes through
the same value accessors in both modes, performing the identical
floating-point operations on identical arrays — which is what lets the
engine-equivalence harness demand *byte-identical* summaries from the
two replay engines rather than "close enough" ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import Table
from ..obs.slo import SLO, SLOReport

__all__ = ["RequestRecord", "TelemetryCollector"]


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle of one completed request (simulated milliseconds)."""

    request_id: int
    arrival_ms: float
    start_ms: float
    finish_ms: float
    chip_ids: Tuple[int, ...]
    batch_size: int
    priority: int = 0
    model: str = ""

    @property
    def latency_ms(self) -> float:
        """End-to-end: arrival to completion (queue wait + service)."""
        return self.finish_ms - self.arrival_ms

    @property
    def wait_ms(self) -> float:
        return self.start_ms - self.arrival_ms

    @property
    def service_ms(self) -> float:
        return self.finish_ms - self.start_ms


class TelemetryCollector:
    """Accumulates serving events and reduces them to operator metrics."""

    def __init__(self, num_chips: int = 1):
        self.num_chips = num_chips
        self._records: Optional[List[RequestRecord]] = []
        self.rejected: List[int] = []
        self.failed: List[int] = []
        self.retried: List[int] = []
        self.fault_events: List[Dict] = []
        # Resilience bookkeeping: transition events (breaker open/close,
        # brownout enter/exit) for span synthesis, and the run's stats
        # dict attached by the engine when a ResilienceConfig was armed
        # (None otherwise, so summaries of plain runs are unchanged).
        self.resilience_events: List[Dict] = []
        self.resilience: Optional[Dict] = None
        self._queue_samples: Optional[List[Tuple[float, int]]] = []
        self.chip_busy_ms: Dict[int, float] = {c: 0.0 for c in range(num_chips)}
        self._batch_sizes: Optional[List[int]] = []
        # Column mode (ingest_columns): completion columns keyed by
        # field, plus event-time/queue-depth and batch-size columns.
        # None in record mode; the list views above are None exactly
        # when their columnar twin is the source of truth.
        self._completed: Optional[Dict] = None
        self._queue_cols: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._batch_col: Optional[np.ndarray] = None

    # ---- record/column views -----------------------------------------
    @property
    def records(self) -> List[RequestRecord]:
        """Completed-request records (materialized on demand from the
        completion columns after a vectorized replay)."""
        if self._records is None:
            self._records = self._materialize_records()
        return self._records

    @records.setter
    def records(self, value: List[RequestRecord]) -> None:
        # An external overwrite (drop_records retracting in-flight work)
        # makes the record list the only truth — drop the column backing
        # rather than let reductions read stale columns.
        self._records = list(value)
        self._completed = None

    @property
    def queue_samples(self) -> List[Tuple[float, int]]:
        if self._queue_samples is None:
            times, depths = self._queue_cols
            self._queue_samples = list(zip(times.tolist(), depths.tolist()))
        return self._queue_samples

    @property
    def batch_sizes(self) -> List[int]:
        if self._batch_sizes is None:
            self._batch_sizes = self._batch_col.tolist()
        return self._batch_sizes

    def _materialize_records(self) -> List[RequestRecord]:
        cols = self._completed
        if cols is None:
            return []
        groups: Tuple[Tuple[int, ...], ...] = cols["executor_chip_ids"]
        ids = cols["request_id"].tolist()
        arrivals = cols["arrival_ms"].tolist()
        starts = cols["start_ms"].tolist()
        finishes = cols["finish_ms"].tolist()
        sizes = cols["batch_size"].tolist()
        executors = cols["executor_index"].tolist()
        priorities = cols["priority"].tolist()
        models = cols["model"]
        return [RequestRecord(
                    request_id=ids[k], arrival_ms=arrivals[k],
                    start_ms=starts[k], finish_ms=finishes[k],
                    chip_ids=groups[executors[k]], batch_size=sizes[k],
                    priority=priorities[k],
                    model=models[k] if models is not None else "")
                for k in range(len(ids))]

    # ---- event ingestion ---------------------------------------------
    def record_completion(self, record: RequestRecord) -> None:
        self._records.append(record)

    def ingest_columns(self, *,
                       arrival_ms: np.ndarray,
                       start_ms: np.ndarray,
                       finish_ms: np.ndarray,
                       request_id: np.ndarray,
                       priority: np.ndarray,
                       batch_size: np.ndarray,
                       executor_index: np.ndarray,
                       executor_chip_ids: Tuple[Tuple[int, ...], ...],
                       model: Optional[Tuple[str, ...]] = None,
                       rejected_ids: Sequence[int] = (),
                       queue_times: Optional[np.ndarray] = None,
                       queue_depths: Optional[np.ndarray] = None,
                       batch_sizes: Optional[np.ndarray] = None,
                       chip_busy_ms: Optional[Dict[int, float]] = None
                       ) -> None:
        """Bulk ingestion of a whole replay (the vectorized engine's
        single call): completion columns ordered by dispatch, the
        per-event queue-depth series, per-batch sizes, and per-chip busy
        totals.  The ``records`` / ``queue_samples`` / ``batch_sizes``
        views materialize lazily from these columns, so a million-request
        replay only ever builds objects a consumer actually reads.
        """
        self._completed = {
            "arrival_ms": arrival_ms, "start_ms": start_ms,
            "finish_ms": finish_ms, "request_id": request_id,
            "priority": priority, "batch_size": batch_size,
            "executor_index": executor_index,
            "executor_chip_ids": executor_chip_ids, "model": model,
        }
        self._records = None
        self.rejected.extend(rejected_ids)
        if queue_times is not None:
            self._queue_cols = (queue_times, queue_depths)
            self._queue_samples = None
        if batch_sizes is not None:
            self._batch_col = batch_sizes
            self._batch_sizes = None
        if chip_busy_ms:
            for chip, busy in chip_busy_ms.items():
                self.chip_busy_ms[chip] = \
                    self.chip_busy_ms.get(chip, 0.0) + busy

    def record_rejection(self, request_id: int) -> None:
        """A request shed because the bounded queue was full."""
        self.rejected.append(request_id)

    def record_failure(self, request_id: int) -> None:
        """A request lost to a fault and not recoverable (already
        retried once, retry queue full, or the whole fleet is down) —
        counts against availability exactly like a shed request."""
        self.failed.append(request_id)

    def record_retry(self, request_id: int) -> None:
        """An in-flight request pulled off a failed replica and
        requeued onto the survivors (at most once per request)."""
        self.retried.append(request_id)

    def record_fault(self, event: Dict) -> None:
        """One applied fault event (kind, firing time, and its failover
        outcome — see :meth:`repro.serve.engine.ServingEngine.serve`)."""
        self.fault_events.append(event)

    def record_resilience(self, event: Dict) -> None:
        """One resilience state transition (``breaker-open`` /
        ``breaker-close`` / ``brownout-enter`` / ``brownout-exit``) —
        kept apart from ``fault_events`` so injected-fault accounting
        and the ``serve.faults.*`` cross-checks stay untouched."""
        self.resilience_events.append(event)

    def drop_records(self, records: List[RequestRecord]) -> None:
        """Retract completion records for requests that were in flight
        on a failed replica — their images never made it out."""
        doomed = {id(r) for r in records}
        self.records = [r for r in self.records if id(r) not in doomed]

    def record_queue_depth(self, now_ms: float, depth: int) -> None:
        self._queue_samples.append((now_ms, depth))

    def record_chip_busy(self, chip_id: int, busy_ms: float) -> None:
        self.chip_busy_ms[chip_id] = \
            self.chip_busy_ms.get(chip_id, 0.0) + busy_ms

    def record_batch(self, batch_size: int) -> None:
        self._batch_sizes.append(batch_size)

    # ---- value accessors ----------------------------------------------
    # Both ingestion modes answer through these, performing the same
    # floating-point operations on the same float64 values in the same
    # order — the bit-for-bit contract the equivalence harness pins.
    def latency_values(self) -> np.ndarray:
        """End-to-end latency per completed request (dispatch order)."""
        if self._completed is not None:
            return self._completed["finish_ms"] - self._completed["arrival_ms"]
        return np.array([r.latency_ms for r in self._records])

    def wait_values(self) -> np.ndarray:
        """Queueing delay per completed request (dispatch order)."""
        if self._completed is not None:
            return self._completed["start_ms"] - self._completed["arrival_ms"]
        return np.array([r.wait_ms for r in self._records])

    def service_values(self) -> np.ndarray:
        """Chip service time per completed request (dispatch order)."""
        if self._completed is not None:
            return self._completed["finish_ms"] - self._completed["start_ms"]
        return np.array([r.service_ms for r in self._records])

    def finish_values(self) -> np.ndarray:
        if self._completed is not None:
            return self._completed["finish_ms"]
        return np.array([r.finish_ms for r in self._records])

    def queue_depth_values(self) -> np.ndarray:
        if self._queue_samples is None:
            return self._queue_cols[1]
        return np.array([d for _, d in self._queue_samples], dtype=np.int64)

    def batch_size_values(self) -> np.ndarray:
        if self._batch_sizes is None:
            return self._batch_col
        return np.array(self._batch_sizes, dtype=np.int64)

    @property
    def num_batches(self) -> int:
        if self._batch_sizes is None:
            return int(self._batch_col.shape[0])
        return len(self._batch_sizes)

    @property
    def num_queue_samples(self) -> int:
        if self._queue_samples is None:
            return int(self._queue_cols[0].shape[0])
        return len(self._queue_samples)

    # ---- reductions ---------------------------------------------------
    @property
    def num_completed(self) -> int:
        if self._records is not None:
            return len(self._records)
        return int(self._completed["finish_ms"].shape[0])

    @property
    def num_rejected(self) -> int:
        return len(self.rejected)

    @property
    def num_failed(self) -> int:
        return len(self.failed)

    @property
    def num_retried(self) -> int:
        return len(self.retried)

    @property
    def num_failovers(self) -> int:
        """Chip-kill events survived by re-routing onto live replicas."""
        return sum(1 for e in self.fault_events
                   if e.get("kind") == "chip-kill" and e.get("failover"))

    @property
    def makespan_ms(self) -> float:
        """First arrival to last completion."""
        if not self.num_completed:
            return 0.0
        if self._completed is not None:
            first = float(self._completed["arrival_ms"].min())
            last = float(self._completed["finish_ms"].max())
        else:
            first = min(r.arrival_ms for r in self._records)
            last = max(r.finish_ms for r in self._records)
        return last - first

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over completed requests (q in [0, 100])."""
        if not self.num_completed:
            return float("nan")
        return float(np.percentile(self.latency_values(), q))

    def latency_percentiles(self) -> Dict[str, float]:
        return {"p50": self.latency_percentile(50.0),
                "p95": self.latency_percentile(95.0),
                "p99": self.latency_percentile(99.0)}

    def _component_percentiles(self, attr: str) -> Dict[str, float]:
        """p50/p95/p99/mean over one latency component (wait or service)."""
        if not self.num_completed:
            nan = float("nan")
            return {"p50": nan, "p95": nan, "p99": nan, "mean": nan}
        values = (self.wait_values() if attr == "wait_ms"
                  else self.service_values())
        p50, p95, p99 = np.percentile(values, [50.0, 95.0, 99.0])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99),
                "mean": float(np.mean(values))}

    def wait_percentiles(self) -> Dict[str, float]:
        """Queueing delay (arrival -> dispatch) percentiles + mean."""
        return self._component_percentiles("wait_ms")

    def service_percentiles(self) -> Dict[str, float]:
        """Chip time (dispatch -> completion) percentiles + mean."""
        return self._component_percentiles("service_ms")

    def mean_latency_ms(self) -> float:
        if not self.num_completed:
            return float("nan")
        return float(np.mean(self.latency_values()))

    def availability(self) -> float:
        """Fraction of offered requests that completed (shed *and*
        fault-lost requests count against it).

        An empty run is vacuously available (1.0): zero offered requests
        means zero were denied, and a NaN here would leak through
        ``summary()`` into SLO reports as a spurious miss (the SLO layer
        treats NaN observations as failed targets)."""
        offered = self.num_completed + self.num_rejected + self.num_failed
        if offered == 0:
            return 1.0
        return self.num_completed / offered

    def throughput_fps(self) -> float:
        """Achieved completions/second over the whole run."""
        span = self.makespan_ms
        return self.num_completed / span * 1000.0 if span > 0 else 0.0

    def rolling_throughput(self, window_ms: float = 1000.0
                           ) -> List[Tuple[float, float]]:
        """Completions/second in consecutive ``window_ms`` buckets,
        returned as ``(bucket_end_ms, fps)`` pairs.

        Buckets tile ``[first_arrival, last_finish]``; idle windows inside
        that span emit explicit zero buckets (a gap in the series would
        otherwise read as "no data" where the truth is "zero throughput").
        A finish landing exactly on a bucket edge belongs to the bucket
        *ending* there, and the series stops at the bucket containing the
        last finish — no trailing all-zero bucket.
        """
        if not self.num_completed or window_ms <= 0:
            return []
        finishes = self.finish_values()
        if self._completed is not None:
            start = float(self._completed["arrival_ms"].min())
        else:
            start = min(r.arrival_ms for r in self._records)
        # Bucket k covers (start + k*w, start + (k+1)*w]; ceil maps an
        # exact-edge finish into the bucket that ends there, and finishes
        # at (or numerically before) `start` clamp into bucket 0.
        index = np.ceil((finishes - start) / window_ms).astype(np.int64) - 1
        index = np.maximum(index, 0)
        counts = np.bincount(index)
        return [(start + (k + 1) * window_ms,
                 int(count) / window_ms * 1000.0)
                for k, count in enumerate(counts)]

    def chip_utilization(self) -> Dict[int, float]:
        """Raw busy fraction per chip over the makespan (0 when idle run).

        Deliberately *not* clamped at 1.0: a fraction above one means the
        busy-time accounting booked more chip-milliseconds than the run's
        makespan — a real signal (double-counted dispatches, overlapping
        busy intervals) that a clamp would silently mask.  ``report()``
        surfaces such chips with a ``saturated`` warning.
        """
        span = self.makespan_ms
        if span <= 0:
            return {chip: 0.0 for chip in self.chip_busy_ms}
        return {chip: busy / span
                for chip, busy in sorted(self.chip_busy_ms.items())}

    def saturated_chips(self, tolerance: float = 1e-9) -> List[int]:
        """Chips whose raw utilization exceeds 1.0 (accounting anomaly)."""
        return [chip for chip, util in self.chip_utilization().items()
                if util > 1.0 + tolerance]

    def mean_queue_depth(self) -> float:
        if not self.num_queue_samples:
            return 0.0
        return float(np.mean(self.queue_depth_values()))

    def max_queue_depth(self) -> int:
        if not self.num_queue_samples:
            return 0
        return int(self.queue_depth_values().max())

    def mean_batch_size(self) -> float:
        if not self.num_batches:
            return 0.0
        return float(np.mean(self.batch_size_values()))

    def slo_attainment(self, slo: SLO) -> SLOReport:
        """Evaluate an :class:`~repro.obs.slo.SLO` against this run
        (observed p99 latency and availability)."""
        return slo.evaluate(p99_ms=self.latency_percentile(99.0),
                            availability=self.availability())

    # ---- presentation -------------------------------------------------
    def summary(self, slo: Optional["SLO"] = None
                ) -> Dict[str, Optional[float]]:
        """Flat metric dict (the JSON output of the serve CLI).

        End-to-end latency is reported alongside its wait (queueing) and
        service (chip time) components, so an operator can tell a batching
        /queueing problem from a slow deployment straight from the JSON.
        With ``slo`` given, the dict gains the ``slo_*`` attainment keys
        of :meth:`repro.obs.slo.SLOReport.as_dict`.

        Metrics undefined for the run (e.g. latency percentiles with zero
        completions) are ``None``, not NaN — the output must stay valid
        JSON for strict consumers (jq, JSON.parse).
        """
        pct = self.latency_percentiles()
        wait = self.wait_percentiles()
        service = self.service_percentiles()
        out = {
            "completed": float(self.num_completed),
            "rejected": float(self.num_rejected),
            "failed": float(self.num_failed),
            "retries": float(self.num_retried),
            "failovers": float(self.num_failovers),
            "fault_events": float(len(self.fault_events)),
            "availability": self.availability(),
            "makespan_ms": self.makespan_ms,
            "throughput_fps": self.throughput_fps(),
            "latency_mean_ms": self.mean_latency_ms(),
            "latency_p50_ms": pct["p50"],
            "latency_p95_ms": pct["p95"],
            "latency_p99_ms": pct["p99"],
            "wait_mean_ms": wait["mean"],
            "wait_p50_ms": wait["p50"],
            "wait_p95_ms": wait["p95"],
            "wait_p99_ms": wait["p99"],
            "service_mean_ms": service["mean"],
            "service_p50_ms": service["p50"],
            "service_p95_ms": service["p95"],
            "service_p99_ms": service["p99"],
            "mean_batch_size": self.mean_batch_size(),
            "mean_queue_depth": self.mean_queue_depth(),
            "max_queue_depth": float(self.max_queue_depth()),
        }
        for chip, util in self.chip_utilization().items():
            out[f"chip{chip}_utilization"] = util
        if self.resilience is not None:
            # Only resilience-armed runs carry these keys — plain runs'
            # summaries stay byte-identical to previous releases (the
            # CI scenario matrix depends on that).
            for key, value in self.resilience.items():
                out[f"resilience_{key}"] = value
        if slo is not None:
            out.update(self.slo_attainment(slo).as_dict())
        return {key: None if isinstance(value, float) and np.isnan(value)
                else value
                for key, value in out.items()}

    def report(self, slo: Optional["SLO"] = None) -> str:
        """Operator-facing text report (latency, throughput, chips, and —
        with ``slo`` — attainment)."""
        pct = self.latency_percentiles()
        wait = self.wait_percentiles()
        service = self.service_percentiles()
        latency = Table(["metric", "total", "wait", "service"],
                        title="request latency (ms; total = wait + service)")
        latency.add_row("mean", self.mean_latency_ms(), wait["mean"],
                        service["mean"])
        latency.add_row("p50", pct["p50"], wait["p50"], service["p50"])
        latency.add_row("p95", pct["p95"], wait["p95"], service["p95"])
        latency.add_row("p99", pct["p99"], wait["p99"], service["p99"])

        load = Table(["metric", "value"], title="load")
        load.add_row("completed", self.num_completed)
        load.add_row("rejected", self.num_rejected)
        if self.fault_events or self.failed or self.retried:
            load.add_row("failed (faults)", self.num_failed)
            load.add_row("retried (failover)", self.num_retried)
        load.add_row("throughput (req/s)", self.throughput_fps())
        load.add_row("mean batch size", self.mean_batch_size())
        load.add_row("mean queue depth", self.mean_queue_depth())
        load.add_row("max queue depth", self.max_queue_depth())

        chips = Table(["chip", "busy_ms", "utilization"],
                      title="chip utilization")
        for chip, util in self.chip_utilization().items():
            chips.add_row(chip, self.chip_busy_ms.get(chip, 0.0), util)

        sections = [latency.render(), load.render(), chips.render()]
        if self.fault_events:
            faults = Table(["t_ms", "fault", "outcome"],
                           title="injected faults")
            for event in self.fault_events:
                faults.add_row(event.get("at_ms", float("nan")),
                               event.get("label", event.get("kind", "?")),
                               event.get("outcome", ""))
            sections.append(faults.render())
        if self.resilience is not None:
            res = Table(["metric", "value"], title="resilience")
            res.add_row("admission shed", self.resilience["admission_shed"])
            res.add_row("retry budget",
                        f"{self.resilience['retries_scheduled']:g} / "
                        f"{self.resilience['retry_budget']:g} used")
            res.add_row("breaker opens", self.resilience["breaker_opens"])
            res.add_row("brownout time (ms)", self.resilience["brownout_ms"])
            res.add_row("degraded completions",
                        self.resilience["degraded_completions"])
            sections.append(res.render())
        saturated = self.saturated_chips()
        if saturated:
            sections.append(
                f"WARNING: chip(s) {saturated} report utilization > 1.0 — "
                "busy-time accounting booked more chip-ms than the "
                "makespan; investigate double-counted dispatches")
        if slo is not None:
            attainment = self.slo_attainment(slo)
            table = Table(["target", "goal", "observed", "attained"],
                          title=f"SLO attainment ({attainment.name})")
            if slo.p99_ms is not None:
                table.add_row("p99 latency (ms)", slo.p99_ms,
                              attainment.p99_observed_ms,
                              "yes" if attainment.p99_attained else "NO")
            if slo.availability is not None:
                table.add_row("availability", slo.availability,
                              attainment.availability_observed,
                              "yes" if attainment.availability_attained
                              else "NO")
            sections.append(table.render())
        return "\n\n".join(sections)
