"""repro.nn — from-scratch numpy deep-learning framework.

This package substitutes for PyTorch in the EPIM reproduction: a
reverse-mode autograd tensor (:mod:`repro.nn.tensor`), fused NN operators
(:mod:`repro.nn.functional`), a module system (:mod:`repro.nn.modules`),
optimizers (:mod:`repro.nn.optim`) and data loading (:mod:`repro.nn.data`).
"""

from . import functional
from .data import ArrayDataset, DataLoader, Dataset
from .serialization import load_checkpoint, load_state, save_checkpoint
from .modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    GroupNorm,
    Identity,
    LayerNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    Sequential,
    SiLU,
)
from .optim import SGD, Adam, CosineSchedule, Optimizer, StepSchedule
from .tensor import Tensor, no_grad, ones, randn, tensor, zeros

__all__ = [
    "functional",
    "Tensor",
    "no_grad",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Identity",
    "ReLU",
    "LeakyReLU",
    "GELU",
    "SiLU",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "LayerNorm",
    "GroupNorm",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "Optimizer",
    "SGD",
    "Adam",
    "CosineSchedule",
    "StepSchedule",
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "save_checkpoint",
    "load_checkpoint",
    "load_state",
]
