"""Neural-network operators built on :class:`repro.nn.tensor.Tensor`.

These are the fused, performance-critical ops that would be cuDNN kernels in
the paper's PyTorch setup: im2col convolution, pooling, batch normalisation
and the classification loss.  Each op implements a custom backward closure
rather than being composed from primitive autograd ops, both for speed (the
experiments train real networks on CPU) and for numerical clarity.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor

__all__ = [
    "im2col",
    "col2im",
    "conv2d",
    "conv_output_size",
    "linear",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "batch_norm2d",
    "layer_norm",
    "group_norm",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "dropout",
    "concatenate",
    "stack",
    "leaky_relu",
    "gelu",
    "silu",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (value, value)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    return (size + 2 * padding - kernel) // stride + 1


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------

def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]) -> np.ndarray:
    """Unfold NCHW input into columns of shape ``(N, C*KH*KW, OH*OW)``.

    Uses ``as_strided`` to build the patch view without copying, then a single
    reshape-copy.  This is the standard lowering of convolution to matmul.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    sn, sc, sh_, sw_ = x.strides
    patches = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh_, sw_, sh_ * sh, sw_ * sw),
        writeable=False,
    )
    return patches.reshape(n, c * kh * kw, oh * ow)


def col2im(cols: np.ndarray, input_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: Tuple[int, int]) -> np.ndarray:
    """Fold columns back into an NCHW gradient (adjoint of :func:`im2col`)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    hp, wp = h + 2 * ph, w + 2 * pw
    oh = (hp - kh) // sh + 1
    ow = (wp - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    out = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            out[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j]
    if ph or pw:
        out = out[:, :, ph:hp - ph or None, pw:wp - pw or None]
    return out


# ----------------------------------------------------------------------
# Convolution / linear
# ----------------------------------------------------------------------

def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: IntPair = 1, padding: IntPair = 0) -> Tensor:
    """2-D convolution (cross-correlation) on NCHW input.

    ``weight`` has shape ``(C_out, C_in, KH, KW)``.  Both the standard
    :class:`~repro.nn.modules.Conv2d` and the epitome layer
    (:class:`repro.core.layers.EpitomeConv2d`, which first *reconstructs*
    its weight) route through this function, so their outputs are directly
    comparable.
    """
    stride_p = _pair(stride)
    padding_p = _pair(padding)
    co, ci, kh, kw = weight.shape
    n, c, h, w = x.shape
    if c != ci:
        raise ValueError(f"conv2d channel mismatch: input has {c}, weight expects {ci}")
    oh = conv_output_size(h, kh, stride_p[0], padding_p[0])
    ow = conv_output_size(w, kw, stride_p[1], padding_p[1])

    cols = im2col(x.data, (kh, kw), stride_p, padding_p)      # (N, CI*KH*KW, OH*OW)
    w_mat = weight.data.reshape(co, -1)                        # (CO, CI*KH*KW)
    out = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    out = out.reshape(n, co, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, co, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g: np.ndarray):
        g_mat = g.reshape(n, co, oh * ow)
        grad_w = np.einsum("nol,nfl->of", g_mat, cols, optimize=True).reshape(weight.shape)
        grad_cols = np.einsum("of,nol->nfl", w_mat, g_mat, optimize=True)
        grad_x = col2im(grad_cols, x.shape, (kh, kw), stride_p, padding_p)
        if bias is None:
            return grad_x, grad_w
        grad_b = g.sum(axis=(0, 2, 3))
        return grad_x, grad_w, grad_b

    return Tensor._make(out, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with weight shape ``(out, in)``."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    kernel_p = _pair(kernel)
    stride_p = _pair(stride) if stride is not None else kernel_p
    padding_p = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel_p
    oh = conv_output_size(h, kh, stride_p[0], padding_p[0])
    ow = conv_output_size(w, kw, stride_p[1], padding_p[1])

    x_data = x.data
    if padding_p != (0, 0):
        x_data = np.pad(x_data, ((0, 0), (0, 0),
                                 (padding_p[0], padding_p[0]),
                                 (padding_p[1], padding_p[1])),
                        constant_values=-np.inf)
    merged = x_data.reshape(n * c, 1, *x_data.shape[2:])
    cols = im2col(merged, kernel_p, stride_p, (0, 0))          # (N*C, KH*KW, OH*OW)
    arg = cols.argmax(axis=1)                                   # (N*C, OH*OW)
    out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
    out = out.reshape(n, c, oh, ow)

    def backward(g: np.ndarray):
        g_flat = g.reshape(n * c, oh * ow)
        grad_cols = np.zeros_like(cols)
        np.put_along_axis(grad_cols, arg[:, None, :], g_flat[:, None, :], axis=1)
        padded_shape = (n * c, 1, x_data.shape[2], x_data.shape[3])
        grad_padded = col2im(grad_cols, padded_shape, kernel_p, stride_p, (0, 0))
        grad_padded = grad_padded.reshape(n, c, *x_data.shape[2:])
        ph, pw = padding_p
        if ph or pw:
            grad_padded = grad_padded[:, :, ph:x_data.shape[2] - ph or None,
                                      pw:x_data.shape[3] - pw or None]
        return (grad_padded,)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None,
               padding: IntPair = 0) -> Tensor:
    kernel_p = _pair(kernel)
    stride_p = _pair(stride) if stride is not None else kernel_p
    padding_p = _pair(padding)
    n, c, h, w = x.shape
    kh, kw = kernel_p
    oh = conv_output_size(h, kh, stride_p[0], padding_p[0])
    ow = conv_output_size(w, kw, stride_p[1], padding_p[1])
    window = kh * kw

    merged = x.data.reshape(n * c, 1, h, w)
    cols = im2col(merged, kernel_p, stride_p, padding_p)
    out = cols.mean(axis=1).reshape(n, c, oh, ow)

    def backward(g: np.ndarray):
        g_flat = g.reshape(n * c, 1, oh * ow) / window
        grad_cols = np.broadcast_to(g_flat, (n * c, window, oh * ow)).copy()
        grad = col2im(grad_cols, (n * c, 1, h, w), kernel_p, stride_p, padding_p)
        return (grad.reshape(n, c, h, w),)

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pool to 1x1, returned as (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Batch normalisation
# ----------------------------------------------------------------------

def batch_norm2d(x: Tensor, gamma: Tensor, beta: Tensor,
                 running_mean: np.ndarray, running_var: np.ndarray,
                 training: bool, momentum: float = 0.1,
                 eps: float = 1e-5) -> Tensor:
    """Batch normalisation over (N, H, W) per channel, NCHW layout.

    ``running_mean``/``running_var`` are plain numpy buffers mutated in place
    during training (matching PyTorch's unbiased running-var update).
    """
    n, c, h, w = x.shape
    if training:
        axes = (0, 2, 3)
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = n * h * w
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean
        unbiased = var * count / max(count - 1, 1)
        running_var *= (1.0 - momentum)
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out = gamma.data[None, :, None, None] * x_hat + beta.data[None, :, None, None]

    def backward(g: np.ndarray):
        axes = (0, 2, 3)
        grad_gamma = (g * x_hat).sum(axis=axes)
        grad_beta = g.sum(axis=axes)
        if training:
            g_hat = g * gamma.data[None, :, None, None]
            term1 = g_hat
            term2 = g_hat.mean(axis=axes, keepdims=True)
            term3 = x_hat * (g_hat * x_hat).mean(axis=axes, keepdims=True)
            grad_x = inv_std[None, :, None, None] * (term1 - term2 - term3)
        else:
            grad_x = g * (gamma.data * inv_std)[None, :, None, None]
        return grad_x, grad_gamma, grad_beta

    return Tensor._make(out, (x, gamma, beta), backward)


# ----------------------------------------------------------------------
# Losses and activations on logits
# ----------------------------------------------------------------------

def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  label_smoothing: float = 0.0) -> Tensor:
    """Mean cross-entropy between logits ``(N, K)`` and integer targets ``(N,)``.

    Implemented as a fused op with the classic softmax-minus-onehot backward
    for numerical stability.
    """
    targets = np.asarray(targets)
    n, k = logits.shape
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=1, keepdims=True)
    log_probs = shifted - np.log(exps.sum(axis=1, keepdims=True))

    if label_smoothing > 0.0:
        smooth = label_smoothing / k
        target_dist = np.full((n, k), smooth, dtype=logits.dtype)
        target_dist[np.arange(n), targets] += 1.0 - label_smoothing
    else:
        target_dist = np.zeros((n, k), dtype=logits.dtype)
        target_dist[np.arange(n), targets] = 1.0

    loss_value = -(target_dist * log_probs).sum() / n

    def backward(g: np.ndarray):
        return ((probs - target_dist) * (g / n),)

    return Tensor._make(np.asarray(loss_value, dtype=logits.dtype), (logits,), backward)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    return -(picked.sum() / n)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean()


# Shared fallback stream for callers that pass no generator: seeded, so
# an un-threaded training loop is still run-to-run reproducible, and
# shared, so successive dropout() calls draw different masks.
_FALLBACK_RNG = np.random.default_rng(0)


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    generator = rng if rng is not None else _FALLBACK_RNG
    mask = (generator.random(x.shape) >= p) / (1.0 - p)
    mask = mask.astype(x.dtype)
    return Tensor._make(x.data * mask, (x,), lambda g: (g * mask,))


# ----------------------------------------------------------------------
# Structural ops
# ----------------------------------------------------------------------

def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (gradient splits back)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concatenate needs at least one tensor")
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray):
        return tuple(np.split(g, boundaries, axis=axis))

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack needs at least one tensor")

    def backward(g: np.ndarray):
        moved = np.moveaxis(g, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# Extra activations
# ----------------------------------------------------------------------

def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    mask = x.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    return Tensor._make(x.data * scale, (x,), lambda g: (g * scale,))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = math.sqrt(2.0 / math.pi)
    inner = c * (x.data + 0.044715 * x.data ** 3)
    tanh_inner = np.tanh(inner)
    out = 0.5 * x.data * (1.0 + tanh_inner)

    def backward(g: np.ndarray):
        d_inner = c * (1.0 + 3 * 0.044715 * x.data ** 2)
        sech2 = 1.0 - tanh_inner ** 2
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
        return (g * grad,)

    return Tensor._make(out, (x,), backward)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish: ``x * sigmoid(x)``."""
    sig = 1.0 / (1.0 + np.exp(-x.data))
    out = x.data * sig

    def backward(g: np.ndarray):
        return (g * (sig * (1.0 + x.data * (1.0 - sig))),)

    return Tensor._make(out, (x,), backward)


# ----------------------------------------------------------------------
# Extra normalisations
# ----------------------------------------------------------------------

def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Normalise over the last axis with learnable affine parameters."""
    mean = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean) * inv_std
    out = gamma.data * x_hat + beta.data
    n = x.data.shape[-1]

    def backward(g: np.ndarray):
        grad_gamma = (g * x_hat).reshape(-1, n).sum(axis=0).reshape(gamma.shape)
        grad_beta = g.reshape(-1, n).sum(axis=0).reshape(beta.shape)
        g_hat = g * gamma.data
        term2 = g_hat.mean(axis=-1, keepdims=True)
        term3 = x_hat * (g_hat * x_hat).mean(axis=-1, keepdims=True)
        grad_x = inv_std * (g_hat - term2 - term3)
        return grad_x, grad_gamma, grad_beta

    return Tensor._make(out, (x, gamma, beta), backward)


def group_norm(x: Tensor, gamma: Tensor, beta: Tensor, num_groups: int,
               eps: float = 1e-5) -> Tensor:
    """Group normalisation on NCHW input (per-sample, per-group stats)."""
    n, c, h, w = x.shape
    if c % num_groups:
        raise ValueError(f"channels {c} not divisible by groups {num_groups}")
    grouped = x.data.reshape(n, num_groups, -1)
    mean = grouped.mean(axis=2, keepdims=True)
    var = grouped.var(axis=2, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = ((grouped - mean) * inv_std).reshape(n, c, h, w)
    out = gamma.data[None, :, None, None] * x_hat \
        + beta.data[None, :, None, None]

    def backward(g: np.ndarray):
        grad_gamma = (g * x_hat).sum(axis=(0, 2, 3))
        grad_beta = g.sum(axis=(0, 2, 3))
        g_hat = (g * gamma.data[None, :, None, None]).reshape(n, num_groups, -1)
        x_hat_g = x_hat.reshape(n, num_groups, -1)
        term2 = g_hat.mean(axis=2, keepdims=True)
        term3 = x_hat_g * (g_hat * x_hat_g).mean(axis=2, keepdims=True)
        grad_x = (inv_std * (g_hat - term2 - term3)).reshape(n, c, h, w)
        return grad_x, grad_gamma, grad_beta

    return Tensor._make(out, (x, gamma, beta), backward)
