"""Dataset and DataLoader abstractions (the torch.utils.data stand-in).

Datasets yield ``(image, label)`` pairs as numpy arrays; the loader batches
and (optionally) shuffles with an explicit RNG for reproducibility.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["Dataset", "ArrayDataset", "DataLoader"]


class Dataset:
    """Minimal map-style dataset interface."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset backed by in-memory arrays ``images (N, C, H, W)``, ``labels (N,)``."""

    def __init__(self, images: np.ndarray, labels: np.ndarray):
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> Tuple[np.ndarray, int]:
        return self.images[index], int(self.labels[index])


class DataLoader:
    """Batched iteration over a dataset.

    Iterating yields ``(batch_images, batch_labels)`` numpy pairs.  Shuffling
    uses the provided generator so runs are reproducible; ``drop_last``
    matches PyTorch semantics.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False,
                 rng: Optional[np.random.Generator] = None):
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        limit = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, limit, self.batch_size):
            indices = order[start:start + self.batch_size]
            if isinstance(self.dataset, ArrayDataset):
                images = self.dataset.images[indices]
                labels = self.dataset.labels[indices]
            else:
                samples = [self.dataset[int(i)] for i in indices]
                images = np.stack([s[0] for s in samples])
                labels = np.asarray([s[1] for s in samples])
            yield images, labels
