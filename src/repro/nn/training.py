"""Training and evaluation loops for classification models.

The thin training harness every accuracy experiment shares: SGD/Adam with
cosine decay, cross-entropy, top-1 accuracy.  Deterministic given the
seeds passed to the loaders and model constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


from . import functional as F
from .data import DataLoader
from .modules import Module
from .optim import Adam, CosineSchedule, Optimizer, SGD
from .tensor import Tensor, no_grad

__all__ = ["TrainConfig", "TrainResult", "train_classifier", "evaluate_accuracy"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters of one training run."""

    epochs: int = 10
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    optimizer: str = "sgd"           # "sgd" | "adam"
    cosine: bool = True
    label_smoothing: float = 0.0
    log_every: int = 0               # batches between log lines; 0 = silent


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of a run."""

    train_losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracies) if self.val_accuracies else float("nan")


def _make_optimizer(model: Module, config: TrainConfig) -> Optimizer:
    if config.optimizer == "sgd":
        return SGD(model.parameters(), lr=config.lr,
                   momentum=config.momentum,
                   weight_decay=config.weight_decay)
    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.lr,
                    weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def train_classifier(model: Module, train_loader: DataLoader,
                     val_loader: Optional[DataLoader] = None,
                     config: TrainConfig = TrainConfig(),
                     epoch_callback: Optional[Callable[[int, "TrainResult"], None]] = None
                     ) -> TrainResult:
    """Train a classifier; returns the loss/accuracy trajectory.

    ``epoch_callback(epoch_index, partial_result)`` runs after each epoch —
    the QAT recipes use it to refresh quantization scales as weights drift.
    """
    optimizer = _make_optimizer(model, config)
    steps_per_epoch = len(train_loader)
    schedule = CosineSchedule(optimizer, config.epochs * steps_per_epoch) \
        if config.cosine else None
    result = TrainResult()

    for epoch in range(config.epochs):
        model.train()
        epoch_loss = 0.0
        correct = 0
        seen = 0
        for batch_index, (images, labels) in enumerate(train_loader):
            logits = model(Tensor(images))
            loss = F.cross_entropy(logits, labels,
                                   label_smoothing=config.label_smoothing)
            model.zero_grad()
            loss.backward()
            optimizer.step()
            if schedule is not None:
                schedule.step()

            batch = len(labels)
            epoch_loss += float(loss.data) * batch
            correct += int((logits.argmax(axis=1) == labels).sum())
            seen += batch
            if config.log_every and (batch_index + 1) % config.log_every == 0:
                print(f"epoch {epoch + 1} batch {batch_index + 1}/{steps_per_epoch} "
                      f"loss {float(loss.data):.4f}")

        result.train_losses.append(epoch_loss / max(seen, 1))
        result.train_accuracies.append(correct / max(seen, 1))
        if val_loader is not None:
            result.val_accuracies.append(evaluate_accuracy(model, val_loader))
        if epoch_callback is not None:
            epoch_callback(epoch, result)
    return result


def evaluate_accuracy(model: Module, loader: DataLoader) -> float:
    """Top-1 accuracy over a loader (eval mode, no grad)."""
    model.eval()
    correct = 0
    seen = 0
    with no_grad():
        for images, labels in loader:
            logits = model(Tensor(images))
            correct += int((logits.argmax(axis=1) == labels).sum())
            seen += len(labels)
    model.train()
    return correct / max(seen, 1)
