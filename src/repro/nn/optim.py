"""Optimizers and learning-rate schedules for :mod:`repro.nn`.

The EPIM training recipes (epitome training, quantization-aware fine-tuning,
pruning fine-tuning) use SGD with momentum + cosine decay, matching the
common ImageNet recipe the paper builds on; Adam is provided for the smaller
ablation runs.
"""

from __future__ import annotations

import math
from typing import Iterable, List

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "CosineSchedule", "StepSchedule"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with momentum and decoupled weight decay.

    ``weight_decay`` is applied as L2 on the gradient (classic SGD-WD), and
    ``nesterov`` enables the look-ahead update.
    """

    def __init__(self, params: Iterable[Parameter], lr: float = 0.1,
                 momentum: float = 0.9, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine learning-rate decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int,
                 min_lr: float = 0.0, warmup_steps: int = 0):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = max(total_steps, 1)
        self.min_lr = min_lr
        self.warmup_steps = warmup_steps
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self.warmup_steps and self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            progress = min(1.0, (self._step - self.warmup_steps)
                           / max(1, self.total_steps - self.warmup_steps))
            lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
                1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = lr
        return lr


class StepSchedule:
    """Multiply the LR by ``gamma`` every ``step_size`` calls."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr
